(* Tests for Fom_exec: deterministic ordering and work-stealing
   jobs-independence (the --jobs 1 reproducibility contract), per-task
   exception capture as diagnostics, pool survival after failures, the
   explicit per-task seed split through Fom_trace, exactly-once Memo
   futures under concurrent demand, and the on-disk Cache's
   corrupt/stale handling.

   Concurrency tests pass [~domains] to the pool to force true
   multi-domain execution: without it a single-core machine caps the
   pool at one domain and the races under test never happen. *)

module Pool = Fom_exec.Pool
module Memo = Fom_exec.Memo
module Cache = Fom_exec.Cache
module Checker = Fom_check.Checker
module Diagnostic = Fom_check.Diagnostic
module Rng = Fom_util.Rng
module Iw_curve = Fom_analysis.Iw_curve
module Source = Fom_trace.Source

let gzip = lazy (Fom_trace.Program.generate (Fom_workloads.Spec2000.find "gzip"))

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let items = List.init 100 (fun i -> i) in
      let got = Pool.map pool ~f:(fun x -> (2 * x) + 1) items in
      Alcotest.(check (list int)) "ordered" (List.map (fun x -> (2 * x) + 1) items) got)

let test_map_empty_and_single () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool ~f:(fun x -> x) []);
      Alcotest.(check (list int)) "single" [ 7 ] (Pool.map pool ~f:(fun x -> x + 4) [ 3 ]))

let test_jobs_invariance_iw_curve () =
  (* The acceptance contract: a --jobs 1 run reproduces the parallel
     run bit for bit. The IW curve is the hot path the pool serves, so
     compare every point and the fit across worker counts, with exact
     float equality. *)
  let program = Lazy.force gzip in
  let windows = [ 4; 16; 64 ] in
  let measure pool = Iw_curve.measure ?pool ~windows ~n:4000 program in
  let sequential = measure None in
  let check_points (parallel : Iw_curve.t) =
    List.iter2
      (fun (a : Iw_curve.point) (b : Iw_curve.point) ->
        Alcotest.(check int) "window" a.Iw_curve.window b.Iw_curve.window;
        Alcotest.(check (float 0.0)) "ipc bit-identical" a.Iw_curve.ipc b.Iw_curve.ipc)
      sequential.Iw_curve.points parallel.Iw_curve.points;
    Alcotest.(check (float 0.0))
      "alpha bit-identical" (Iw_curve.alpha sequential) (Iw_curve.alpha parallel);
    Alcotest.(check (float 0.0))
      "beta bit-identical" (Iw_curve.beta sequential) (Iw_curve.beta parallel)
  in
  Pool.with_pool ~jobs:1 (fun pool -> check_points (measure (Some pool)));
  Pool.with_pool ~jobs:2 ~domains:2 (fun pool -> check_points (measure (Some pool)));
  Pool.with_pool ~jobs:4 ~domains:4 (fun pool -> check_points (measure (Some pool)))

let test_exception_becomes_diagnostic () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.map pool ~f:(fun x -> if x = 13 then failwith "boom" else x) (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected Invalid"
      | exception Checker.Invalid ds ->
          Alcotest.(check int) "one diagnostic" 1 (List.length ds);
          let d = List.hd ds in
          Alcotest.(check string) "code" "FOM-E002" d.Diagnostic.code;
          Alcotest.(check string) "path names the task" "exec.task[13]" d.Diagnostic.path);
      (* The pool survives the failure: the next batch runs normally. *)
      let got = Pool.map pool ~f:(fun x -> x * x) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool alive after failure" [ 1; 4; 9 ] got)

let test_task_diagnostics_rerooted () =
  (* A task raising Checker.Invalid keeps its own code; the path gains
     the task index. Every failing task is reported, not just the
     first. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.map pool
          ~f:(fun x ->
            Checker.ensure ~code:"FOM-P001" ~path:"params.width" (x mod 2 = 0) "odd";
            x)
          [ 0; 1; 2; 3 ]
      with
      | _ -> Alcotest.fail "expected Invalid"
      | exception Checker.Invalid ds ->
          Alcotest.(check int) "both failures reported" 2 (List.length ds);
          List.iter
            (fun (d : Diagnostic.t) ->
              Alcotest.(check string) "original code kept" "FOM-P001" d.Diagnostic.code)
            ds;
          Alcotest.(check (list string))
            "paths rerooted under task indices"
            [ "exec.task[1].params.width"; "exec.task[3].params.width" ]
            (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.path) ds))

let test_try_map_partial () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let results =
        Pool.try_map pool ~f:(fun x -> if x < 0 then failwith "neg" else x) [ 1; -1; 2 ]
      in
      match results with
      | [ Ok 1; Error [ d ]; Ok 2 ] ->
          Alcotest.(check string) "code" "FOM-E002" d.Diagnostic.code
      | _ -> Alcotest.fail "unexpected result shape")

let test_map_reduce_order () =
  (* The reduction is a fold in task order, so a non-commutative
     reduce gives the sequential answer. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let items = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
      let got =
        Pool.map_reduce pool ~f:String.uppercase_ascii ~reduce:( ^ ) ~init:"" items
      in
      Alcotest.(check string) "concatenation in order" "ABCDEFGHIJKLMNOPQRSTUVWXYZ" got)

let test_nested_map () =
  (* A task may map on the same pool; the waiting caller helps drain
     the queue, so this terminates even with a single worker. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let got =
        Pool.map pool
          ~f:(fun row -> Pool.map_reduce pool ~f:(fun x -> row * x) ~reduce:( + ) ~init:0 [ 1; 2; 3 ])
          [ 1; 2 ]
      in
      Alcotest.(check (list int)) "nested" [ 6; 12 ] got)

let test_shutdown_rejects_use () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.map pool ~f:(fun x -> x) [ 1; 2 ] with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Checker.Invalid [ d ] ->
      Alcotest.(check string) "code" "FOM-E003" d.Diagnostic.code
  | exception Checker.Invalid _ -> Alcotest.fail "expected one diagnostic"

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_split_seeds_deterministic () =
  let a = Rng.split_seeds (Rng.create 42) 8 in
  let b = Rng.split_seeds (Rng.create 42) 8 in
  Alcotest.(check (array int)) "same root, same seeds" a b;
  let c = Rng.split_seeds (Rng.create 43) 8 in
  Alcotest.(check bool) "different root differs" true (a <> c);
  let distinct = List.sort_uniq compare (Array.to_list a) in
  Alcotest.(check int) "seeds distinct" 8 (List.length distinct);
  Array.iter (fun s -> Alcotest.(check bool) "non-negative" true (s >= 0)) a

let test_split_n_matches_split () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let streams = Rng.split_n a 3 in
  let manual = Array.init 3 (fun _ -> Rng.split b) in
  Array.iteri
    (fun i s ->
      Alcotest.(check int64) "same stream" (Rng.bits64 manual.(i)) (Rng.bits64 s))
    streams

let test_source_seed_override () =
  (* The per-task seed split through lib/trace: an explicit seed
     reproduces exactly, and differs from the config's default
     stream. *)
  let program = Lazy.force gzip in
  let record seed = Source.record (Source.of_program ?seed program) ~n:500 in
  let a = record (Some 1234) and b = record (Some 1234) in
  Alcotest.(check bool) "explicit seed reproduces" true (a = b);
  let default = record None in
  Alcotest.(check bool) "override perturbs the stream" true (a <> default)

let test_resolve_jobs () =
  let recommended = Pool.recommended_domain_count () in
  (* No request: the default (FOM_JOBS or the recommended count), and
     never a warning — on a single-core machine this is the sequential
     default the harnesses rely on. *)
  let jobs, warnings = Pool.resolve_jobs () in
  Alcotest.(check int) "default" (Pool.default_jobs ()) jobs;
  Alcotest.(check int) "no warning by default" 0 (List.length warnings);
  (* An explicit in-budget request passes through silently. *)
  let jobs, warnings = Pool.resolve_jobs ~requested:1 () in
  Alcotest.(check int) "explicit 1" 1 jobs;
  Alcotest.(check int) "no warning in budget" 0 (List.length warnings);
  (* Oversubscription is honored but flagged FOM-E004 as a warning
     (never an error: determinism is unaffected). *)
  let jobs, warnings = Pool.resolve_jobs ~requested:(recommended + 7) () in
  Alcotest.(check int) "oversubscribed count honored" (recommended + 7) jobs;
  (match warnings with
  | [ d ] ->
      Alcotest.(check string) "code" "FOM-E004" d.Diagnostic.code;
      Alcotest.(check bool) "warning severity" true
        (d.Diagnostic.severity = Diagnostic.Warning)
  | ds -> Alcotest.fail (Printf.sprintf "expected one FOM-E004, got %d" (List.length ds)));
  (* A non-positive request comes back as a FOM-E001 *error*
     diagnostic with a sequential fallback — never an exception, so
     harnesses report it through their own channel and abort. *)
  let check_invalid label (jobs, diags) =
    Alcotest.(check int) (label ^ ": sequential fallback") 1 jobs;
    match diags with
    | [ d ] ->
        Alcotest.(check string) (label ^ ": code") "FOM-E001" d.Diagnostic.code;
        Alcotest.(check bool) (label ^ ": error severity") true (Diagnostic.is_error d)
    | ds -> Alcotest.fail (Printf.sprintf "%s: expected one FOM-E001, got %d" label (List.length ds))
  in
  check_invalid "requested 0" (Pool.resolve_jobs ~requested:0 ());
  check_invalid "requested -2" (Pool.resolve_jobs ~requested:(-2) ())

let test_resolve_jobs_env () =
  (* FOM_JOBS gets the same validation as --jobs: malformed or
     non-positive values are a FOM-E001 error with a sequential
     fallback, not a silent fall-through; blank means unset. *)
  let original = Sys.getenv_opt "FOM_JOBS" in
  let set v = Unix.putenv "FOM_JOBS" v in
  Fun.protect
    ~finally:(fun () -> set (Option.value original ~default:""))
    (fun () ->
      let invalid label v =
        set v;
        match Pool.resolve_jobs () with
        | 1, [ d ] ->
            Alcotest.(check string) (label ^ ": code") "FOM-E001" d.Diagnostic.code;
            Alcotest.(check bool) (label ^ ": error severity") true (Diagnostic.is_error d)
        | jobs, ds ->
            Alcotest.fail
              (Printf.sprintf "%s: expected (1, [FOM-E001]), got (%d, %d diags)" label jobs
                 (List.length ds))
      in
      invalid "malformed" "abc";
      invalid "zero" "0";
      invalid "negative" "-3";
      set "1";
      let jobs, diags = Pool.resolve_jobs () in
      Alcotest.(check int) "FOM_JOBS=1 honored" 1 jobs;
      Alcotest.(check int) "FOM_JOBS=1 silent" 0 (List.length diags);
      set "   ";
      let jobs, diags = Pool.resolve_jobs () in
      Alcotest.(check int) "blank means unset" (Pool.recommended_domain_count ()) jobs;
      Alcotest.(check int) "blank is silent" 0 (List.length diags);
      (* An explicit request wins over the environment, even an
         invalid environment. *)
      set "abc";
      let jobs, diags = Pool.resolve_jobs ~requested:1 () in
      Alcotest.(check int) "request beats env" 1 jobs;
      Alcotest.(check int) "request beats invalid env" 0 (List.length diags))

(* ---- work stealing ---- *)

(* A deliberately uneven task cost so steals actually happen: task
   costs vary by three orders of magnitude within one batch. *)
let busy x =
  let rounds = (x mod 7 * 3000) + 10 in
  let acc = ref x in
  for _ = 1 to rounds do
    acc := ((!acc * 31) + 1) mod 1_000_003
  done;
  !acc

let test_steal_determinism () =
  (* Bit-identical results across jobs 1/2/4 and across repeated runs
     at the same job count, on a batch uneven enough to force
     stealing. *)
  let items = List.init 200 (fun i -> i) in
  let expected = List.map busy items in
  List.iter
    (fun domains ->
      Pool.with_pool ~jobs:domains ~domains (fun pool ->
          let a = Pool.map pool ~f:busy items in
          let b = Pool.map pool ~f:busy items in
          Alcotest.(check (list int))
            (Printf.sprintf "domains=%d matches sequential" domains)
            expected a;
          Alcotest.(check (list int))
            (Printf.sprintf "domains=%d repeat identical" domains)
            expected b))
    [ 1; 2; 4 ]

let test_nested_map_deep () =
  (* Three levels of nesting on two real domains: every waiting caller
     must drive the deques for this to terminate. *)
  Pool.with_pool ~jobs:2 ~domains:2 (fun pool ->
      let got =
        Pool.map pool
          ~f:(fun a ->
            Pool.map_reduce pool
              ~f:(fun b ->
                Pool.map_reduce pool ~f:(fun c -> a * b * c) ~reduce:( + ) ~init:0 [ 1; 2 ])
              ~reduce:( + ) ~init:0 [ 1; 2; 3 ])
          [ 1; 2 ]
      in
      (* sum over b in 1..3, c in 1..2 of a*b*c = a * 6 * 3 = 18a *)
      Alcotest.(check (list int)) "nested three deep" [ 18; 36 ] got)

let test_help_empty () =
  Pool.with_pool ~jobs:2 ~domains:2 (fun pool ->
      Alcotest.(check bool) "nothing runnable" false (Pool.help pool))

(* ---- memo futures ---- *)

let test_memo_exactly_once () =
  (* 32 concurrent demands spread over 4 keys on 4 real domains: each
     key's computation runs exactly once, and every demander gets the
     one result. The sleep widens the in-flight window so demanders
     genuinely race. *)
  Pool.with_pool ~jobs:4 ~domains:4 (fun pool ->
      let memo = Memo.create ~pool () in
      let computed = Atomic.make 0 in
      let got =
        Pool.map pool
          ~f:(fun i ->
            let key = i mod 4 in
            Memo.get memo key (fun () ->
                Atomic.incr computed;
                Unix.sleepf 0.005;
                key * 10))
          (List.init 32 (fun i -> i))
      in
      Alcotest.(check (list int))
        "every demander sees the one result"
        (List.init 32 (fun i -> i mod 4 * 10))
        got;
      Alcotest.(check int) "exactly one compute per key" 4 (Atomic.get computed);
      Alcotest.(check int) "compute_count agrees" 4 (Memo.compute_count memo);
      Alcotest.(check int) "four cells" 4 (Memo.length memo))

let test_memo_single_key_contention () =
  (* The fig14 regression in miniature: a whole batch demanding one
     heavy key must cost one computation, not jobs computations. *)
  Pool.with_pool ~jobs:4 ~domains:4 (fun pool ->
      let memo = Memo.create ~pool () in
      let computed = Atomic.make 0 in
      let got =
        Pool.map pool
          ~f:(fun _ ->
            Memo.get memo "only" (fun () ->
                Atomic.incr computed;
                Unix.sleepf 0.01;
                42))
          (List.init 16 (fun i -> i))
      in
      Alcotest.(check (list int)) "all 42" (List.init 16 (fun _ -> 42)) got;
      Alcotest.(check int) "computed once" 1 (Atomic.get computed))

let test_memo_failure_cached () =
  let memo = Memo.create () in
  let computed = ref 0 in
  let demand () =
    Memo.get memo "k" (fun () ->
        incr computed;
        failwith "boom")
  in
  (match demand () with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "owner's exception" "boom" m);
  (* A second demand re-raises the published failure without
     recomputing. *)
  (match demand () with
  | _ -> Alcotest.fail "expected cached Failure"
  | exception Failure m -> Alcotest.(check string) "same exception" "boom" m);
  Alcotest.(check int) "computed once despite two demands" 1 !computed;
  Alcotest.(check int) "compute_count counts the one start" 1 (Memo.compute_count memo)

let test_memo_reentrant_detected () =
  let memo = Memo.create () in
  match Memo.get memo "k" (fun () -> Memo.get memo "k" (fun () -> 1)) with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Checker.Invalid (d :: _) ->
      Alcotest.(check string) "re-entrant demand flagged" "FOM-E005" d.Diagnostic.code
  | exception Checker.Invalid [] -> Alcotest.fail "empty diagnostics"

let test_memo_find_opt () =
  let memo = Memo.create () in
  Alcotest.(check (option int)) "absent" None (Memo.find_opt memo "k");
  Alcotest.(check int) "computes" 9 (Memo.get memo "k" (fun () -> 9));
  Alcotest.(check (option int)) "present" (Some 9) (Memo.find_opt memo "k")

(* ---- on-disk cache ---- *)

let with_cache_dir f =
  let dir = Filename.temp_file "fom-cache" ".d" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_cache_roundtrip () =
  with_cache_dir (fun dir ->
      let key = Cache.digest [ "test"; Cache.part (1, "x"); "5" ] in
      let computed = ref 0 in
      let compute () =
        incr computed;
        [ 1.5; 2.5 ]
      in
      let cache = Cache.create ~dir in
      Alcotest.(check (list (float 0.0))) "computed" [ 1.5; 2.5 ] (Cache.get cache ~key compute);
      Alcotest.(check (pair int int)) "one miss" (0, 1) (Cache.stats cache);
      (* A fresh handle on the same directory — a separate process —
         hits the persisted entry. *)
      let cache2 = Cache.create ~dir in
      Alcotest.(check (list (float 0.0))) "hit" [ 1.5; 2.5 ] (Cache.get cache2 ~key compute);
      Alcotest.(check (pair int int)) "one hit" (1, 0) (Cache.stats cache2);
      Alcotest.(check int) "computed exactly once across runs" 1 !computed;
      Alcotest.(check int) "clean runs report nothing" 0
        (List.length (Cache.drain_diagnostics cache2)))

let test_cache_corrupt_entry () =
  with_cache_dir (fun dir ->
      let cache = Cache.create ~dir in
      let key = Cache.digest [ "test"; "corrupt" ] in
      let oc = open_out_bin (Cache.entry_path cache ~key) in
      output_string oc "this is not a marshaled entry";
      close_out oc;
      Alcotest.(check int) "recomputed" 7 (Cache.get cache ~key (fun () -> 7));
      (match Cache.drain_diagnostics cache with
      | [ d ] ->
          Alcotest.(check string) "corrupt flagged" "FOM-E006" d.Diagnostic.code;
          Alcotest.(check bool) "warning, not error" true
            (d.Diagnostic.severity = Diagnostic.Warning)
      | ds -> Alcotest.fail (Printf.sprintf "expected one FOM-E006, got %d" (List.length ds)));
      (* The damaged file was deleted and replaced by the recomputed
         entry, so the next demand is a clean hit. *)
      Alcotest.(check int) "clean hit after repair" 7 (Cache.get cache ~key (fun () -> 8));
      Alcotest.(check int) "no further diagnostics" 0
        (List.length (Cache.drain_diagnostics cache)))

let test_cache_stale_entry () =
  with_cache_dir (fun dir ->
      let cache = Cache.create ~dir in
      let key = Cache.digest [ "test"; "stale" ] in
      (* Forge an entry written by "another code version": a valid
         marshaled (header, value) pair whose header cannot match. *)
      let oc = open_out_bin (Cache.entry_path cache ~key) in
      Marshal.to_channel oc ("fom-cache/0:obsolete:" ^ key, 999) [];
      close_out oc;
      Alcotest.(check int) "stale entry recomputed, not trusted" 7
        (Cache.get cache ~key (fun () -> 7));
      match Cache.drain_diagnostics cache with
      | [ d ] -> Alcotest.(check string) "stale flagged" "FOM-E007" d.Diagnostic.code
      | ds -> Alcotest.fail (Printf.sprintf "expected one FOM-E007, got %d" (List.length ds)))

let test_cache_digest_separates () =
  let base = [ "sim"; Cache.part (1, 2); "100" ] in
  Alcotest.(check string) "stable" (Cache.digest base) (Cache.digest base);
  Alcotest.(check bool) "parts change the key" true
    (Cache.digest base <> Cache.digest [ "sim"; Cache.part (1, 3); "100" ]);
  Alcotest.(check bool) "kind tag changes the key" true
    (Cache.digest base <> Cache.digest [ "characterization"; Cache.part (1, 2); "100" ])

let test_cache_dir_not_creatable () =
  let file = Filename.temp_file "fom-cache" ".file" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      match Cache.create ~dir:file with
      | _ -> Alcotest.fail "expected Invalid"
      | exception Checker.Invalid (d :: _) ->
          Alcotest.(check string) "E006" "FOM-E006" d.Diagnostic.code
      | exception Checker.Invalid [] -> Alcotest.fail "empty diagnostics")

let prop_map_agrees_with_list_map =
  QCheck.Test.make ~name:"pool map agrees with List.map and preserves order" ~count:50
    QCheck.(list small_int)
    (fun items ->
      Pool.with_pool ~jobs:4 (fun pool ->
          Pool.map pool ~f:(fun x -> (x * 31) + 7) items
          = List.map (fun x -> (x * 31) + 7) items))

let suite =
  ( "exec",
    [
      Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
      Alcotest.test_case "map empty and single" `Quick test_map_empty_and_single;
      Alcotest.test_case "jobs-invariant IW curve" `Quick test_jobs_invariance_iw_curve;
      Alcotest.test_case "exception becomes diagnostic" `Quick test_exception_becomes_diagnostic;
      Alcotest.test_case "task diagnostics rerooted" `Quick test_task_diagnostics_rerooted;
      Alcotest.test_case "try_map partial results" `Quick test_try_map_partial;
      Alcotest.test_case "map_reduce folds in order" `Quick test_map_reduce_order;
      Alcotest.test_case "nested map on one pool" `Quick test_nested_map;
      Alcotest.test_case "steal determinism" `Quick test_steal_determinism;
      Alcotest.test_case "nested map three deep" `Quick test_nested_map_deep;
      Alcotest.test_case "help with empty deques" `Quick test_help_empty;
      Alcotest.test_case "memo exactly once" `Quick test_memo_exactly_once;
      Alcotest.test_case "memo single-key contention" `Quick test_memo_single_key_contention;
      Alcotest.test_case "memo failure cached" `Quick test_memo_failure_cached;
      Alcotest.test_case "memo re-entrant demand" `Quick test_memo_reentrant_detected;
      Alcotest.test_case "memo find_opt" `Quick test_memo_find_opt;
      Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
      Alcotest.test_case "cache corrupt entry" `Quick test_cache_corrupt_entry;
      Alcotest.test_case "cache stale entry" `Quick test_cache_stale_entry;
      Alcotest.test_case "cache digest separates" `Quick test_cache_digest_separates;
      Alcotest.test_case "cache dir not creatable" `Quick test_cache_dir_not_creatable;
      Alcotest.test_case "shutdown rejects use" `Quick test_shutdown_rejects_use;
      Alcotest.test_case "default jobs positive" `Quick test_default_jobs_positive;
      Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
      Alcotest.test_case "resolve_jobs FOM_JOBS validation" `Quick test_resolve_jobs_env;
      Alcotest.test_case "split_seeds deterministic" `Quick test_split_seeds_deterministic;
      Alcotest.test_case "split_n matches split" `Quick test_split_n_matches_split;
      Alcotest.test_case "source seed override" `Quick test_source_seed_override;
      QCheck_alcotest.to_alcotest prop_map_agrees_with_list_map;
    ] )
