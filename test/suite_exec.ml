(* Tests for Fom_exec.Pool: deterministic ordering, jobs-independence
   of results (the --jobs 1 reproducibility contract), per-task
   exception capture as diagnostics, pool survival after failures,
   and the explicit per-task seed split through Fom_trace. *)

module Pool = Fom_exec.Pool
module Checker = Fom_check.Checker
module Diagnostic = Fom_check.Diagnostic
module Rng = Fom_util.Rng
module Iw_curve = Fom_analysis.Iw_curve
module Source = Fom_trace.Source

let gzip = lazy (Fom_trace.Program.generate (Fom_workloads.Spec2000.find "gzip"))

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let items = List.init 100 (fun i -> i) in
      let got = Pool.map pool ~f:(fun x -> (2 * x) + 1) items in
      Alcotest.(check (list int)) "ordered" (List.map (fun x -> (2 * x) + 1) items) got)

let test_map_empty_and_single () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool ~f:(fun x -> x) []);
      Alcotest.(check (list int)) "single" [ 7 ] (Pool.map pool ~f:(fun x -> x + 4) [ 3 ]))

let test_jobs_invariance_iw_curve () =
  (* The acceptance contract: a --jobs 1 run reproduces the parallel
     run bit for bit. The IW curve is the hot path the pool serves, so
     compare every point and the fit across worker counts, with exact
     float equality. *)
  let program = Lazy.force gzip in
  let windows = [ 4; 16; 64 ] in
  let measure pool = Iw_curve.measure ?pool ~windows ~n:4000 program in
  let sequential = measure None in
  Pool.with_pool ~jobs:1 (fun pool1 ->
      Pool.with_pool ~jobs:4 (fun pool4 ->
          let one = measure (Some pool1) in
          let four = measure (Some pool4) in
          List.iter2
            (fun (a : Iw_curve.point) (b : Iw_curve.point) ->
              Alcotest.(check int) "window" a.Iw_curve.window b.Iw_curve.window;
              Alcotest.(check (float 0.0)) "ipc bit-identical" a.Iw_curve.ipc b.Iw_curve.ipc)
            sequential.Iw_curve.points one.Iw_curve.points;
          List.iter2
            (fun (a : Iw_curve.point) (b : Iw_curve.point) ->
              Alcotest.(check (float 0.0)) "ipc bit-identical" a.Iw_curve.ipc b.Iw_curve.ipc)
            sequential.Iw_curve.points four.Iw_curve.points;
          Alcotest.(check (float 0.0))
            "alpha bit-identical" (Iw_curve.alpha sequential) (Iw_curve.alpha four);
          Alcotest.(check (float 0.0))
            "beta bit-identical" (Iw_curve.beta sequential) (Iw_curve.beta four)))

let test_exception_becomes_diagnostic () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.map pool ~f:(fun x -> if x = 13 then failwith "boom" else x) (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected Invalid"
      | exception Checker.Invalid ds ->
          Alcotest.(check int) "one diagnostic" 1 (List.length ds);
          let d = List.hd ds in
          Alcotest.(check string) "code" "FOM-E002" d.Diagnostic.code;
          Alcotest.(check string) "path names the task" "exec.task[13]" d.Diagnostic.path);
      (* The pool survives the failure: the next batch runs normally. *)
      let got = Pool.map pool ~f:(fun x -> x * x) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool alive after failure" [ 1; 4; 9 ] got)

let test_task_diagnostics_rerooted () =
  (* A task raising Checker.Invalid keeps its own code; the path gains
     the task index. Every failing task is reported, not just the
     first. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.map pool
          ~f:(fun x ->
            Checker.ensure ~code:"FOM-P001" ~path:"params.width" (x mod 2 = 0) "odd";
            x)
          [ 0; 1; 2; 3 ]
      with
      | _ -> Alcotest.fail "expected Invalid"
      | exception Checker.Invalid ds ->
          Alcotest.(check int) "both failures reported" 2 (List.length ds);
          List.iter
            (fun (d : Diagnostic.t) ->
              Alcotest.(check string) "original code kept" "FOM-P001" d.Diagnostic.code)
            ds;
          Alcotest.(check (list string))
            "paths rerooted under task indices"
            [ "exec.task[1].params.width"; "exec.task[3].params.width" ]
            (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.path) ds))

let test_try_map_partial () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let results =
        Pool.try_map pool ~f:(fun x -> if x < 0 then failwith "neg" else x) [ 1; -1; 2 ]
      in
      match results with
      | [ Ok 1; Error [ d ]; Ok 2 ] ->
          Alcotest.(check string) "code" "FOM-E002" d.Diagnostic.code
      | _ -> Alcotest.fail "unexpected result shape")

let test_map_reduce_order () =
  (* The reduction is a fold in task order, so a non-commutative
     reduce gives the sequential answer. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let items = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
      let got =
        Pool.map_reduce pool ~f:String.uppercase_ascii ~reduce:( ^ ) ~init:"" items
      in
      Alcotest.(check string) "concatenation in order" "ABCDEFGHIJKLMNOPQRSTUVWXYZ" got)

let test_nested_map () =
  (* A task may map on the same pool; the waiting caller helps drain
     the queue, so this terminates even with a single worker. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let got =
        Pool.map pool
          ~f:(fun row -> Pool.map_reduce pool ~f:(fun x -> row * x) ~reduce:( + ) ~init:0 [ 1; 2; 3 ])
          [ 1; 2 ]
      in
      Alcotest.(check (list int)) "nested" [ 6; 12 ] got)

let test_shutdown_rejects_use () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.map pool ~f:(fun x -> x) [ 1; 2 ] with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Checker.Invalid [ d ] ->
      Alcotest.(check string) "code" "FOM-E003" d.Diagnostic.code
  | exception Checker.Invalid _ -> Alcotest.fail "expected one diagnostic"

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_split_seeds_deterministic () =
  let a = Rng.split_seeds (Rng.create 42) 8 in
  let b = Rng.split_seeds (Rng.create 42) 8 in
  Alcotest.(check (array int)) "same root, same seeds" a b;
  let c = Rng.split_seeds (Rng.create 43) 8 in
  Alcotest.(check bool) "different root differs" true (a <> c);
  let distinct = List.sort_uniq compare (Array.to_list a) in
  Alcotest.(check int) "seeds distinct" 8 (List.length distinct);
  Array.iter (fun s -> Alcotest.(check bool) "non-negative" true (s >= 0)) a

let test_split_n_matches_split () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let streams = Rng.split_n a 3 in
  let manual = Array.init 3 (fun _ -> Rng.split b) in
  Array.iteri
    (fun i s ->
      Alcotest.(check int64) "same stream" (Rng.bits64 manual.(i)) (Rng.bits64 s))
    streams

let test_source_seed_override () =
  (* The per-task seed split through lib/trace: an explicit seed
     reproduces exactly, and differs from the config's default
     stream. *)
  let program = Lazy.force gzip in
  let record seed = Source.record (Source.of_program ?seed program) ~n:500 in
  let a = record (Some 1234) and b = record (Some 1234) in
  Alcotest.(check bool) "explicit seed reproduces" true (a = b);
  let default = record None in
  Alcotest.(check bool) "override perturbs the stream" true (a <> default)

let test_resolve_jobs () =
  let recommended = Pool.recommended_domain_count () in
  (* No request: the default (FOM_JOBS or the recommended count), and
     never a warning — on a single-core machine this is the sequential
     default the harnesses rely on. *)
  let jobs, warnings = Pool.resolve_jobs () in
  Alcotest.(check int) "default" (Pool.default_jobs ()) jobs;
  Alcotest.(check int) "no warning by default" 0 (List.length warnings);
  (* An explicit in-budget request passes through silently. *)
  let jobs, warnings = Pool.resolve_jobs ~requested:1 () in
  Alcotest.(check int) "explicit 1" 1 jobs;
  Alcotest.(check int) "no warning in budget" 0 (List.length warnings);
  (* Oversubscription is honored but flagged FOM-E004 as a warning
     (never an error: determinism is unaffected). *)
  let jobs, warnings = Pool.resolve_jobs ~requested:(recommended + 7) () in
  Alcotest.(check int) "oversubscribed count honored" (recommended + 7) jobs;
  (match warnings with
  | [ d ] ->
      Alcotest.(check string) "code" "FOM-E004" d.Diagnostic.code;
      Alcotest.(check bool) "warning severity" true
        (d.Diagnostic.severity = Diagnostic.Warning)
  | ds -> Alcotest.fail (Printf.sprintf "expected one FOM-E004, got %d" (List.length ds)));
  (* A non-positive request is rejected outright. *)
  match Pool.resolve_jobs ~requested:0 () with
  | exception Checker.Invalid [ d ] ->
      Alcotest.(check string) "E001" "FOM-E001" d.Diagnostic.code
  | exception Checker.Invalid _ -> Alcotest.fail "expected one diagnostic"
  | _ -> Alcotest.fail "accepted jobs = 0"

let prop_map_agrees_with_list_map =
  QCheck.Test.make ~name:"pool map agrees with List.map and preserves order" ~count:50
    QCheck.(list small_int)
    (fun items ->
      Pool.with_pool ~jobs:4 (fun pool ->
          Pool.map pool ~f:(fun x -> (x * 31) + 7) items
          = List.map (fun x -> (x * 31) + 7) items))

let suite =
  ( "exec",
    [
      Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
      Alcotest.test_case "map empty and single" `Quick test_map_empty_and_single;
      Alcotest.test_case "jobs-invariant IW curve" `Quick test_jobs_invariance_iw_curve;
      Alcotest.test_case "exception becomes diagnostic" `Quick test_exception_becomes_diagnostic;
      Alcotest.test_case "task diagnostics rerooted" `Quick test_task_diagnostics_rerooted;
      Alcotest.test_case "try_map partial results" `Quick test_try_map_partial;
      Alcotest.test_case "map_reduce folds in order" `Quick test_map_reduce_order;
      Alcotest.test_case "nested map on one pool" `Quick test_nested_map;
      Alcotest.test_case "shutdown rejects use" `Quick test_shutdown_rejects_use;
      Alcotest.test_case "default jobs positive" `Quick test_default_jobs_positive;
      Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
      Alcotest.test_case "split_seeds deterministic" `Quick test_split_seeds_deterministic;
      Alcotest.test_case "split_n matches split" `Quick test_split_n_matches_split;
      Alcotest.test_case "source seed override" `Quick test_source_seed_override;
      QCheck_alcotest.to_alcotest prop_map_agrees_with_list_map;
    ] )
