(* Tests for Fom_obs: span nesting through the per-domain ring
   buffers, histogram bucketing, the no-op default sink, the Chrome
   trace exporter's structural guarantees (balanced, parseable by the
   repository's own JSON reader), a Json roundtrip property for the
   exporter's serializer, and the end-to-end determinism contract —
   enabling observability must not change a single computed value.

   Every test that enables the sink disables it on the way out
   (Fun.protect): the sink is global state shared with every other
   suite in this binary, and those suites assert against the quiet
   default. *)

module Span = Fom_obs.Span
module Metrics = Fom_obs.Metrics
module Sink = Fom_obs.Sink
module Export = Fom_obs.Export
module Json = Fom_util.Json
module Pool = Fom_exec.Pool
module Memo = Fom_exec.Memo
module Cache = Fom_exec.Cache
module Iw_curve = Fom_analysis.Iw_curve

let with_sink ?span_capacity f =
  Sink.enable ?span_capacity ();
  Fun.protect ~finally:Sink.disable f

let counter_value name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %S is not registered" name

let test_span_nesting () =
  with_sink (fun () ->
      let outer = Span.id "test.outer" in
      let inner = Span.id "test.inner" in
      Span.with_ outer (fun () ->
          Span.with_ inner ignore;
          Span.with_ inner ignore);
      let mine =
        List.filter
          (fun (e : Span.event) -> e.Span.domain = (Domain.self () :> int))
          (Span.events ())
      in
      let shape =
        List.map
          (fun (e : Span.event) ->
            (e.Span.name, match e.Span.phase with Span.Begin -> "B" | Span.End -> "E"))
          mine
      in
      Alcotest.(check (list (pair string string)))
        "begin/end nesting"
        [
          ("test.outer", "B");
          ("test.inner", "B");
          ("test.inner", "E");
          ("test.inner", "B");
          ("test.inner", "E");
          ("test.outer", "E");
        ]
        shape;
      (* Timestamps are non-decreasing within the domain. *)
      ignore
        (List.fold_left
           (fun prev (e : Span.event) ->
             Alcotest.(check bool) "monotonic ts" true (e.Span.ts_ns >= prev);
             e.Span.ts_ns)
           min_int mine))

let test_span_end_on_raise () =
  with_sink (fun () ->
      let s = Span.id "test.raiser" in
      (try Span.with_ s (fun () -> failwith "boom") with Failure _ -> ());
      let phases =
        List.filter_map
          (fun (e : Span.event) ->
            if String.equal e.Span.name "test.raiser" then Some e.Span.phase else None)
          (Span.events ())
      in
      Alcotest.(check int) "begin and end both recorded" 2 (List.length phases))

let test_span_capacity_drops () =
  (* A deliberately tiny buffer: overflow is counted, not crashed on,
     and the exporter still balances what survived. *)
  with_sink ~span_capacity:4 (fun () ->
      let s = Span.id "test.flood" in
      for _ = 1 to 100 do
        Span.with_ s ignore
      done;
      Alcotest.(check bool) "events dropped" true (Span.dropped () > 0);
      Alcotest.(check bool)
        "buffer bounded" true
        (List.length (Span.events ()) <= 4))

let test_histogram_buckets () =
  with_sink (fun () ->
      let h = Metrics.histogram "test.hist" in
      List.iter (Metrics.observe h) [ 0; 1; 1; 2; 3; 7; 8; 1000; -5 ];
      let snap = List.assoc "test.hist" (Metrics.snapshot ()).Metrics.histograms in
      Alcotest.(check int) "count" 9 snap.Metrics.count;
      Alcotest.(check int) "sum" (0 + 1 + 1 + 2 + 3 + 7 + 8 + 1000 + 0) snap.Metrics.sum;
      (* Power-of-two buckets by inclusive upper bound: zeros (and the
         clamped negative) land in le=0, 1s in le=1, 2..3 in le=3,
         4..7 in le=7, 8..15 in le=15, 1000 in le=1023. *)
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (0, 2); (1, 2); (3, 2); (7, 1); (15, 1); (1023, 1) ]
        snap.Metrics.buckets)

let test_metric_kind_clash () =
  let name = "test.clash" in
  ignore (Metrics.counter name);
  match Metrics.gauge name with
  | _ -> Alcotest.fail "expected FOM-O001"
  | exception Fom_check.Checker.Invalid ds ->
      Alcotest.(check string)
        "code" "FOM-O001"
        (match ds with d :: _ -> d.Fom_check.Diagnostic.code | [] -> "")

let test_disabled_is_noop () =
  Sink.disable ();
  let c = Metrics.counter "test.quiet" in
  let s = Span.id "test.quiet" in
  Metrics.incr c;
  Span.with_ s ignore;
  Sink.enable ();
  Fun.protect ~finally:Sink.disable (fun () ->
      (* enable reset everything; the pre-enable updates left no trace
         and post-enable the counter reads zero. *)
      Alcotest.(check int) "counter untouched" 0 (counter_value "test.quiet");
      Alcotest.(check int) "no span events" 0 (List.length (Span.events ())))

let test_chrome_trace_balances () =
  with_sink (fun () ->
      let a = Span.id "test.trace_a" in
      let b = Span.id "test.trace_b" in
      Span.with_ a (fun () -> Span.with_ b ignore);
      Span.enter a;
      (* left open on purpose: the exporter must close it *)
      let doc = Json.of_string (Json.to_string (Export.chrome_trace ())) in
      let events =
        match Json.member "traceEvents" doc with
        | Some (Json.List l) -> l
        | Some _ | None -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "nonempty" true (events <> []);
      let depth = ref 0 in
      List.iter
        (fun ev ->
          match Json.member "ph" ev with
          | Some (Json.String "B") -> incr depth
          | Some (Json.String "E") ->
              decr depth;
              Alcotest.(check bool) "never negative" true (!depth >= 0)
          | Some (Json.String "M") -> ()
          | Some _ | None -> Alcotest.fail "event without ph")
        events;
      Alcotest.(check int) "balanced after synthetic closes" 0 !depth)

(* Json values without floats roundtrip exactly; with floats the
   printer's %.12g representation must at least reach a fixpoint after
   one trip. Object keys and strings exercise the escaper (quotes,
   backslashes, control characters, high ASCII). *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (oneof [ small_signed_int; return max_int; return min_int ]);
        map (fun s -> Json.String s) (string_size ~gen:(char_range '\000' '\127') (0 -- 12));
      ]
  in
  let key = string_size ~gen:(char_range '\000' '\127') (0 -- 8) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (0 -- 4) (pair key (self (depth - 1)))) );
          ])
    3

let prop_json_roundtrip_exact =
  QCheck.Test.make ~name:"Json roundtrip (float-free values, exact)" ~count:500
    (QCheck.make json_gen)
    (fun v -> Json.of_string (Json.to_string v) = v)

let prop_json_float_fixpoint =
  QCheck.Test.make ~name:"Json float printing reaches a fixpoint" ~count:200
    QCheck.(list (pair small_string float))
    (fun kvs ->
      let v = Json.Obj (List.map (fun (k, f) -> (k, Json.Float f)) kvs) in
      let once = Json.to_string (Json.of_string (Json.to_string v)) in
      let twice = Json.to_string (Json.of_string once) in
      String.equal once twice)

let test_determinism_with_sink () =
  (* The acceptance contract: enabling observability changes no
     computed value. Compare an IW characterization — points and
     power-law fit — bit for bit across sink states. *)
  let program = Fom_trace.Program.generate (Fom_workloads.Spec2000.find "gzip") in
  let measure () = Iw_curve.measure ~windows:[ 4; 16; 64 ] ~n:4000 program in
  Sink.disable ();
  let quiet = measure () in
  let observed = with_sink measure in
  List.iter2
    (fun (a : Iw_curve.point) (b : Iw_curve.point) ->
      Alcotest.(check int) "window" a.Iw_curve.window b.Iw_curve.window;
      Alcotest.(check (float 0.0)) "ipc bit-identical" a.Iw_curve.ipc b.Iw_curve.ipc)
    quiet.Iw_curve.points observed.Iw_curve.points;
  Alcotest.(check (float 0.0)) "alpha" (Iw_curve.alpha quiet) (Iw_curve.alpha observed);
  Alcotest.(check (float 0.0)) "beta" (Iw_curve.beta quiet) (Iw_curve.beta observed)

let test_pool_metrics () =
  with_sink (fun () ->
      Pool.with_pool ~jobs:2 ~domains:2 (fun pool ->
          ignore (Pool.map pool ~f:(fun x -> x * x) (List.init 64 Fun.id)));
      Alcotest.(check int) "every task counted" 64 (counter_value "pool.tasks");
      let task_spans =
        List.filter
          (fun (e : Span.event) -> String.equal e.Span.name "pool.task")
          (Span.events ())
      in
      Alcotest.(check int) "a span per task boundary" (2 * 64) (List.length task_spans))

let test_memo_metrics () =
  with_sink (fun () ->
      let memo = Memo.create () in
      Alcotest.(check int) "computed" 9 (Memo.get memo "k" (fun () -> 9));
      Alcotest.(check int) "joined" 9 (Memo.get memo "k" (fun () -> 10));
      Alcotest.(check int) "one compute" 1 (counter_value "memo.computes");
      Alcotest.(check int) "one join" 1 (counter_value "memo.joins"))

let test_cache_metrics () =
  with_sink (fun () ->
      let dir = Filename.temp_file "fom_obs_cache" "" in
      Sys.remove dir;
      let cache = Cache.create ~dir in
      let key = Cache.digest [ "obs-test" ] in
      Alcotest.(check int) "miss computes" 5 (Cache.get cache ~key (fun () -> 5));
      Alcotest.(check int) "hit reads" 5 (Cache.get cache ~key (fun () -> 6));
      Alcotest.(check int) "one hit" 1 (counter_value "cache.hits");
      Alcotest.(check int) "one miss" 1 (counter_value "cache.misses");
      Alcotest.(check bool) "bytes written" true (counter_value "cache.bytes_written" > 0);
      Alcotest.(check bool) "bytes read" true (counter_value "cache.bytes_read" > 0))

let suite =
  ( "obs",
    [
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span end recorded on raise" `Quick test_span_end_on_raise;
      Alcotest.test_case "span buffer overflow drops, not crashes" `Quick
        test_span_capacity_drops;
      Alcotest.test_case "histogram power-of-two buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "metric kind clash is FOM-O001" `Quick test_metric_kind_clash;
      Alcotest.test_case "disabled sink records nothing" `Quick test_disabled_is_noop;
      Alcotest.test_case "chrome trace parses and balances" `Quick test_chrome_trace_balances;
      QCheck_alcotest.to_alcotest prop_json_roundtrip_exact;
      QCheck_alcotest.to_alcotest prop_json_float_fixpoint;
      Alcotest.test_case "results bit-identical with sink on" `Quick
        test_determinism_with_sink;
      Alcotest.test_case "pool metrics and spans" `Quick test_pool_metrics;
      Alcotest.test_case "memo metrics" `Quick test_memo_metrics;
      Alcotest.test_case "cache metrics" `Quick test_cache_metrics;
    ] )
