(* Tests for Fom_trace.Source: replayability, wrapping, and the trace
   file format round-trip. *)

module Source = Fom_trace.Source
module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg

let gzip = lazy (Fom_trace.Program.generate (Fom_workloads.Spec2000.find "gzip"))

let same_instr (a : Instr.t) (b : Instr.t) =
  a.Instr.index = b.Instr.index && a.Instr.pc = b.Instr.pc
  && Opclass.equal a.Instr.opclass b.Instr.opclass
  && a.Instr.deps = b.Instr.deps && a.Instr.mem = b.Instr.mem
  &&
  match (a.Instr.ctrl, b.Instr.ctrl) with
  | None, None -> true
  | Some x, Some y -> x.Instr.taken = y.Instr.taken && x.Instr.target = y.Instr.target
  | _ -> false

let check_same label a b =
  Array.iteri
    (fun i x -> if not (same_instr x b.(i)) then Alcotest.failf "%s: differ at %d" label i)
    a

let test_of_program_replayable () =
  let source = Source.of_program (Lazy.force gzip) in
  let a = Source.record source ~n:500 in
  let b = Source.record source ~n:500 in
  check_same "two fresh passes" a b

let test_of_instrs_replay () =
  let base = Source.record (Source.of_program (Lazy.force gzip)) ~n:300 in
  let replay = Source.record (Source.of_instrs base) ~n:300 in
  check_same "array replay" base replay

let test_of_instrs_wraps_with_rebased_indices () =
  let base = Source.record (Source.of_program (Lazy.force gzip)) ~n:100 in
  let wrapped = Source.record (Source.of_instrs base) ~n:350 in
  Array.iteri
    (fun i (ins : Instr.t) ->
      Alcotest.(check int) "indices stay sequential" i ins.Instr.index;
      Array.iter
        (fun d ->
          if not (d >= 0 && d < i) then Alcotest.failf "dep %d at wrapped instr %d" d i)
        ins.Instr.deps)
    wrapped;
  (* The wrapped copy repeats the original pcs. *)
  Alcotest.(check int) "pc repeats" base.(17).Instr.pc wrapped.(217).Instr.pc

let test_file_roundtrip () =
  let path = Filename.temp_file "fom" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let source = Source.of_program (Lazy.force gzip) in
      Source.save ~path source ~n:400;
      let loaded = Source.load ~path in
      let original = Source.record source ~n:400 in
      let reread = Source.record loaded ~n:400 in
      (* Register names are re-assigned on load; everything the model
         consumes must round-trip exactly. *)
      check_same "roundtrip" original reread;
      Alcotest.(check string) "label is the path" path (Source.label loaded))

let test_file_roundtrip_preserves_model_inputs () =
  let path = Filename.temp_file "fom" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let source = Source.of_program (Lazy.force gzip) in
      let n = 20000 in
      Source.save ~path source ~n;
      let loaded = Source.load ~path in
      let params = Fom_model.Params.baseline in
      let from_program =
        Fom_analysis.Characterize.inputs_of_source ~iw_instructions:5000 ~params source ~n
      in
      let from_file =
        Fom_analysis.Characterize.inputs_of_source ~iw_instructions:5000 ~params loaded ~n
      in
      Alcotest.(check (float 1e-9)) "same alpha" from_program.Fom_model.Inputs.alpha
        from_file.Fom_model.Inputs.alpha;
      Alcotest.(check (float 1e-9)) "same misprediction rate"
        from_program.Fom_model.Inputs.mispredictions_per_instr
        from_file.Fom_model.Inputs.mispredictions_per_instr;
      Alcotest.(check (float 1e-9)) "same long-miss rate"
        from_program.Fom_model.Inputs.long_misses_per_instr
        from_file.Fom_model.Inputs.long_misses_per_instr)

let test_simulator_on_loaded_trace () =
  let path = Filename.temp_file "fom" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let source = Source.of_program (Lazy.force gzip) in
      Source.save ~path source ~n:20000;
      let loaded = Source.load ~path in
      let a = Fom_uarch.Simulate.run_source Fom_uarch.Config.baseline source ~n:20000 in
      let b = Fom_uarch.Simulate.run_source Fom_uarch.Config.baseline loaded ~n:20000 in
      Alcotest.(check int) "same cycles" a.Fom_uarch.Stats.cycles b.Fom_uarch.Stats.cycles)

let test_load_rejects_garbage () =
  let path = Filename.temp_file "fom" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      match Source.load ~path with
      | _ -> Alcotest.fail "accepted garbage"
      | exception Fom_check.Checker.Invalid [ d ] ->
          Alcotest.(check string) "code" "FOM-T101" d.Fom_check.Diagnostic.code;
          Alcotest.(check string) "path has line 1" (path ^ ":1")
            d.Fom_check.Diagnostic.path)

let test_load_rejects_bad_dependence () =
  let path = Filename.temp_file "fom" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "fom-trace 1\nalu 400000 - - - 7\n";
      close_out oc;
      match Source.load ~path with
      | _ -> Alcotest.fail "accepted forward dependence"
      | exception Fom_check.Checker.Invalid [ d ] ->
          Alcotest.(check string) "code" "FOM-T105" d.Fom_check.Diagnostic.code;
          Alcotest.(check string) "path has line 2" (path ^ ":2")
            d.Fom_check.Diagnostic.path)

let suite =
  ( "source",
    [
      Alcotest.test_case "program source replayable" `Quick test_of_program_replayable;
      Alcotest.test_case "array replay" `Quick test_of_instrs_replay;
      Alcotest.test_case "wrapped replay rebases" `Quick test_of_instrs_wraps_with_rebased_indices;
      Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
      Alcotest.test_case "roundtrip preserves model inputs" `Quick
        test_file_roundtrip_preserves_model_inputs;
      Alcotest.test_case "simulator on loaded trace" `Quick test_simulator_on_loaded_trace;
      Alcotest.test_case "rejects garbage" `Quick test_load_rejects_garbage;
      Alcotest.test_case "rejects forward dependence" `Quick test_load_rejects_bad_dependence;
    ] )
