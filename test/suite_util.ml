(* Unit and property tests for Fom_util: RNG, statistics, fitting,
   distributions, tables. *)

module Rng = Fom_util.Rng
module Stats = Fom_util.Stats
module Fit = Fom_util.Fit
module Distribution = Fom_util.Distribution
module Table = Fom_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let x = Rng.bits64 child in
  let y = Rng.bits64 parent in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_range () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_rng_bernoulli_mean () =
  let r = Rng.create 5 in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  check_close 0.02 "bernoulli mean" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_geometric_mean () =
  let r = Rng.create 6 in
  let acc = Stats.Acc.create () in
  for _ = 1 to 20000 do
    Stats.Acc.add acc (float_of_int (Rng.geometric r 0.25))
  done;
  (* Mean of geometric (failures before success) is (1-p)/p = 3. *)
  check_close 0.15 "geometric mean" 3.0 (Stats.Acc.mean acc)

let test_rng_categorical () =
  let r = Rng.create 8 in
  let counts = Array.make 3 0 in
  let n = 30000 in
  for _ = 1 to n do
    let i = Rng.categorical r [| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close 0.02 "weight 2 bin" 0.5 (float_of_int counts.(1) /. float_of_int n)

let test_stats_basics () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "sum" 10.0 (Stats.sum a);
  check_float "min" 1.0 (Stats.min a);
  check_float "max" 4.0 (Stats.max a);
  check_float "variance" 1.25 (Stats.variance a)

let test_stats_empty () =
  check_float "empty mean" 0.0 (Stats.mean [||]);
  check_float "empty variance" 0.0 (Stats.variance [||])

let test_stats_percentile () =
  let a = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.percentile a 50.0);
  check_float "p0" 1.0 (Stats.percentile a 0.0);
  check_float "p100" 4.0 (Stats.percentile a 100.0)

let test_stats_weighted_mean () =
  check_float "weighted" 3.0 (Stats.weighted_mean [| (1.0, 1.0); (4.0, 2.0) |]);
  check_float "zero weight" 0.0 (Stats.weighted_mean [| (1.0, 0.0) |])

let test_stats_errors () =
  let reference = [| 2.0; 4.0 |] and candidate = [| 2.2; 3.6 |] in
  check_close 1e-9 "mean err" 0.1 (Stats.mean_abs_error reference candidate);
  check_close 1e-9 "max err" 0.1 (Stats.max_abs_error reference candidate)

let test_stats_acc_matches_batch () =
  let a = Array.init 100 (fun i -> float_of_int (i * i) /. 7.0) in
  let acc = Stats.Acc.create () in
  Array.iter (Stats.Acc.add acc) a;
  check_close 1e-6 "acc mean" (Stats.mean a) (Stats.Acc.mean acc);
  check_close 1e-3 "acc variance" (Stats.variance a) (Stats.Acc.variance acc);
  Alcotest.(check int) "acc count" 100 (Stats.Acc.count acc)

let test_fit_exact_line () =
  let points = Array.init 10 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  let l = Fit.line points in
  check_close 1e-9 "slope" 2.0 l.Fit.slope;
  check_close 1e-9 "intercept" 1.0 l.Fit.intercept;
  check_close 1e-9 "r2" 1.0 l.Fit.r2

let test_fit_power_law_recovers () =
  let alpha = 1.3 and beta = 0.5 in
  let points =
    Array.map (fun w -> (w, alpha *. Float.pow w beta)) [| 4.0; 8.0; 16.0; 32.0; 64.0 |]
  in
  let p = Fit.power_law points in
  check_close 1e-6 "alpha" alpha p.Fit.alpha;
  check_close 1e-6 "beta" beta p.Fit.beta

let test_fit_eval () =
  let p = { Fit.alpha = 2.0; beta = 0.5; r2 = 1.0 } in
  check_close 1e-9 "eval" 8.0 (Fit.eval_power_law p 16.0)

let test_distribution_basic () =
  let d = Distribution.of_list [ (1, 3); (2, 1) ] in
  Alcotest.(check int) "total" 4 (Distribution.total d);
  check_float "p(1)" 0.75 (Distribution.probability d 1);
  check_float "mean" 1.25 (Distribution.mean d);
  Alcotest.(check (list int)) "support" [ 1; 2 ] (Distribution.support d)

let test_distribution_expect () =
  (* The eq. 8 overlap factor: sum f(i)/i. *)
  let d = Distribution.of_list [ (1, 1); (2, 1) ] in
  check_float "overlap factor" 0.75 (Distribution.expect d (fun i -> 1.0 /. float_of_int i))

let test_distribution_empty () =
  let d = Distribution.create () in
  check_float "empty expect" 0.0 (Distribution.expect d float_of_int);
  check_float "empty probability" 0.0 (Distribution.probability d 0)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines)

let test_table_float_cell () =
  Alcotest.(check string) "format" "1.50" (Table.float_cell ~decimals:2 1.5)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Fom_util.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Fom_util.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Fom_util.Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Fom_util.Csv.escape "a\nb")

let test_csv_render () =
  let s = Fom_util.Csv.render ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "a,b" ] ] in
  Alcotest.(check string) "full document" "x,y\n1,2\n3,\"a,b\"\n" s

let test_csv_roundtrip_file () =
  let path = Filename.temp_file "fom" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fom_util.Csv.write_file ~path ~header:[ "a" ] [ [ "1" ]; [ "2" ] ];
      let ic = open_in path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Alcotest.(check string) "written" "a\n1\n2\n" contents)

let test_json_roundtrip () =
  let module J = Fom_util.Json in
  let v =
    J.Obj
      [
        ("schema", J.String "fom-bench/1");
        ("scale", J.Float 0.2);
        ("jobs", J.Int 4);
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ( "exhibits",
          J.List
            [
              J.Obj [ ("name", J.String "fig2"); ("seconds", J.Float 13.9153580666) ];
              J.Obj [ ("name", J.String "with \"quotes\"\n"); ("seconds", J.Int 3) ];
            ] );
        ("empty_list", J.List []);
        ("empty_obj", J.Obj []);
      ]
  in
  Alcotest.(check bool) "pretty round-trips" true (J.of_string (J.to_string v) = v);
  Alcotest.(check bool)
    "compact round-trips" true
    (J.of_string (J.to_string ~indent:0 v) = v);
  (* The accessors the bench baseline gate is built from. *)
  (match J.member "exhibits" v with
  | Some (J.List (first :: _)) ->
      Alcotest.(check (option string))
        "member name" (Some "fig2")
        (match J.member "name" first with Some (J.String s) -> Some s | _ -> None);
      Alcotest.(check (option (float 1e-9)))
        "number" (Some 13.9153580666)
        (Option.bind (J.member "seconds" first) J.number)
  | _ -> Alcotest.fail "exhibits missing");
  Alcotest.(check (option (float 0.0))) "int as number" (Some 4.0)
    (Option.bind (J.member "jobs" v) J.number)

let prop_csv_field_count_preserved =
  QCheck.Test.make ~name:"csv rows keep their field count" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 5) (string_gen_of_size (Gen.int_range 0 10) Gen.printable))
    (fun fields ->
      let line = Fom_util.Csv.line fields in
      (* Quoted fields may contain commas; strip them by parsing
         naively only when no field needed quoting. *)
      if List.for_all (fun f -> not (String.contains f ',') && not (String.contains f '"')
                                && not (String.contains f '\n')) fields
      then
        List.length (String.split_on_char ',' (String.trim line)) = List.length fields
      else true)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let x = Rng.int r n in
      x >= 0 && x < n)

let prop_fit_power_law_roundtrip =
  QCheck.Test.make ~name:"power-law fit recovers exact parameters" ~count:100
    QCheck.(pair (float_range 0.5 4.0) (float_range 0.1 0.9))
    (fun (alpha, beta) ->
      let points =
        Array.map (fun w -> (w, alpha *. Float.pow w beta)) [| 2.0; 4.0; 8.0; 16.0 |]
      in
      let p = Fit.power_law points in
      Float.abs (p.Fit.alpha -. alpha) < 1e-6 && Float.abs (p.Fit.beta -. beta) < 1e-6)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let a = Array.of_list l in
      Stats.percentile a 25.0 <= Stats.percentile a 75.0)

let prop_distribution_probabilities_sum =
  QCheck.Test.make ~name:"distribution probabilities sum to 1" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (pair (int_range 0 10) (int_range 1 5)))
    (fun pairs ->
      let d = Distribution.of_list pairs in
      let total =
        List.fold_left (fun acc k -> acc +. Distribution.probability d k) 0.0
          (Distribution.support d)
      in
      Float.abs (total -. 1.0) < 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_rng_int_bounds;
      prop_fit_power_law_roundtrip;
      prop_percentile_monotone;
      prop_distribution_probabilities_sum;
    ]

let suite =
  ( "util",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
      Alcotest.test_case "rng copy" `Quick test_rng_copy;
      Alcotest.test_case "rng int range" `Quick test_rng_int_range;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng bernoulli mean" `Quick test_rng_bernoulli_mean;
      Alcotest.test_case "rng geometric mean" `Quick test_rng_geometric_mean;
      Alcotest.test_case "rng categorical" `Quick test_rng_categorical;
      Alcotest.test_case "stats basics" `Quick test_stats_basics;
      Alcotest.test_case "stats empty" `Quick test_stats_empty;
      Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
      Alcotest.test_case "stats weighted mean" `Quick test_stats_weighted_mean;
      Alcotest.test_case "stats relative errors" `Quick test_stats_errors;
      Alcotest.test_case "stats streaming accumulator" `Quick test_stats_acc_matches_batch;
      Alcotest.test_case "fit exact line" `Quick test_fit_exact_line;
      Alcotest.test_case "fit power law" `Quick test_fit_power_law_recovers;
      Alcotest.test_case "fit eval" `Quick test_fit_eval;
      Alcotest.test_case "distribution basics" `Quick test_distribution_basic;
      Alcotest.test_case "distribution expectation" `Quick test_distribution_expect;
      Alcotest.test_case "distribution empty" `Quick test_distribution_empty;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table float cell" `Quick test_table_float_cell;
      Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
      Alcotest.test_case "csv render" `Quick test_csv_render;
      Alcotest.test_case "csv file roundtrip" `Quick test_csv_roundtrip_file;
      Alcotest.test_case "json parse roundtrip" `Quick test_json_roundtrip;
      QCheck_alcotest.to_alcotest prop_csv_field_count_preserved;
    ]
    @ qcheck_cases )
