(* Tests for Fom_analysis: the idealized IW simulation, curve fitting,
   functional profiling and input assembly. *)

module Iw_sim = Fom_analysis.Iw_sim
module Iw_curve = Fom_analysis.Iw_curve
module Profile = Fom_analysis.Profile
module Characterize = Fom_analysis.Characterize
module Params = Fom_model.Params
module Inputs = Fom_model.Inputs
module Distribution = Fom_util.Distribution
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor

let program name = Fom_trace.Program.generate (Fom_workloads.Spec2000.find name)
let gzip = lazy (program "gzip")
let mcf = lazy (program "mcf")
let vpr = lazy (program "vpr")
let vortex = lazy (program "vortex")

let test_iw_sim_monotone_in_window () =
  let p = Lazy.force gzip in
  let i4 = Iw_sim.ipc p ~window:4 ~n:20000 in
  let i32 = Iw_sim.ipc p ~window:32 ~n:20000 in
  let i256 = Iw_sim.ipc p ~window:256 ~n:20000 in
  Alcotest.(check bool) "4 < 32" true (i4 < i32);
  Alcotest.(check bool) "32 < 256" true (i32 < i256)

let test_iw_sim_window_one () =
  (* A one-entry window is strictly in-order scalar issue: IPC 1 under
     unit latency. *)
  let ipc = Iw_sim.ipc (Lazy.force gzip) ~window:1 ~n:5000 in
  Alcotest.(check (float 0.01)) "ipc 1" 1.0 ipc

let test_iw_sim_issue_limit_caps () =
  let p = Lazy.force gzip in
  let unlimited = Iw_sim.ipc p ~window:128 ~n:20000 in
  let limited = Iw_sim.ipc p ~window:128 ~n:20000 ~issue_limit:2 in
  Alcotest.(check bool) "capped at 2" true (limited <= 2.0 +. 1e-9);
  Alcotest.(check bool) "unlimited higher" true (unlimited > limited)

let test_iw_sim_latency_littles_law () =
  (* Doubling every latency should roughly halve the issue rate at a
     fixed window (the paper's Little's-law argument). *)
  let p = Lazy.force gzip in
  let unit = Iw_sim.ipc p ~window:64 ~n:20000 in
  let doubled =
    Iw_sim.ipc p ~window:64 ~n:20000
      ~latencies:(Fom_isa.Latency.make ~alu:2 ~mul:2 ~div:2 ~load:2 ~store:2 ~branch:2 ~jump:2 ())
  in
  (* Little's law is a first-order approximation; allow 15% slack. *)
  let ratio = doubled /. (unit /. 2.0) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f within 15%% of 1" ratio)
    true
    (ratio > 0.85 && ratio < 1.15)

let test_iw_curve_power_law_quality () =
  (* The paper's Figure 4: the measured points lie close to a power
     law on log-log axes. *)
  List.iter
    (fun p ->
      let curve = Iw_curve.measure ~n:20000 (Lazy.force p) in
      Alcotest.(check bool) "good fit" true (curve.Iw_curve.fit.Fom_util.Fit.r2 > 0.93);
      Alcotest.(check bool) "alpha in range" true
        (Iw_curve.alpha curve > 0.5 && Iw_curve.alpha curve < 3.0);
      Alcotest.(check bool) "beta in range" true
        (Iw_curve.beta curve > 0.1 && Iw_curve.beta curve < 1.0))
    [ gzip; mcf; vortex ]

let test_iw_curve_benchmark_ordering () =
  (* vpr is the paper's low-ILP extreme and vortex the high-ILP one;
     the synthetic counterparts keep that ordering. *)
  let beta_of p = Iw_curve.beta (Iw_curve.measure ~n:20000 (Lazy.force p)) in
  Alcotest.(check bool) "vpr below vortex" true (beta_of vpr < beta_of vortex)

let test_iw_curve_points_sorted () =
  let curve = Iw_curve.measure ~n:5000 ~windows:[ 16; 4; 64 ] (Lazy.force gzip) in
  let windows = List.map (fun pt -> pt.Iw_curve.window) curve.Iw_curve.points in
  Alcotest.(check (list int)) "sorted unique" [ 4; 16; 64 ] windows

let test_profile_counts_consistent () =
  let prof = Profile.run (Lazy.force gzip) ~n:50000 in
  Alcotest.(check int) "instructions" 50000 prof.Profile.instructions;
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 prof.Profile.class_counts in
  Alcotest.(check int) "class counts add up" 50000 total;
  Alcotest.(check bool) "mispredictions at most branches" true
    (prof.Profile.mispredictions <= prof.Profile.branches)

let test_profile_avg_latency_bounds () =
  let prof = Profile.run (Lazy.force vpr) ~n:50000 in
  Alcotest.(check bool) "at least 1" true (prof.Profile.avg_latency >= 1.0);
  Alcotest.(check bool) "below max class latency" true (prof.Profile.avg_latency < 12.0)

let test_profile_ideal_cache_no_misses () =
  let prof = Profile.run ~cache:Hierarchy.all_ideal (Lazy.force mcf) ~n:30000 in
  Alcotest.(check int) "no long misses" 0 prof.Profile.long_misses;
  Alcotest.(check int) "no short misses" 0 prof.Profile.short_misses;
  Alcotest.(check int) "no l1i misses" 0 prof.Profile.l1i_misses

let test_profile_ideal_predictor_no_mispredictions () =
  let prof = Profile.run ~predictor:Predictor.Ideal (Lazy.force gzip) ~n:30000 in
  Alcotest.(check int) "none" 0 prof.Profile.mispredictions

let test_profile_matches_machine_events () =
  (* The functional profile and the detailed simulator replay the same
     predictor and cache state over the same trace, so the event
     counts must agree closely (fetch-path details differ slightly). *)
  let p = Lazy.force gzip in
  let n = 50000 in
  let prof = Profile.run p ~n in
  let sim = Fom_uarch.Simulate.run Fom_uarch.Config.baseline p ~n in
  let close a b label =
    let a = float_of_int a and b = float_of_int b in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %g vs %g" label a b)
      true
      (Float.abs (a -. b) <= 0.1 *. Float.max 1.0 (Float.max a b))
  in
  close prof.Profile.mispredictions sim.Fom_uarch.Stats.branch_mispredictions "mispredictions";
  close prof.Profile.long_misses sim.Fom_uarch.Stats.long_data_misses "long misses";
  close prof.Profile.short_misses sim.Fom_uarch.Stats.short_data_misses "short misses"

let test_burst_members_match_mispredictions () =
  let prof = Profile.run (Lazy.force gzip) ~n:50000 in
  let members =
    List.fold_left
      (fun acc (size, count) -> acc + (size * count))
      0
      (Distribution.to_list prof.Profile.mispred_bursts)
  in
  Alcotest.(check int) "every misprediction in exactly one burst" prof.Profile.mispredictions
    members

let test_stats_pp_smoke () =
  let stats = Fom_uarch.Simulate.run Fom_uarch.Config.baseline (Lazy.force gzip) ~n:5000 in
  let s = Format.asprintf "%a" Fom_uarch.Stats.pp stats in
  Alcotest.(check bool) "mentions IPC" true
    (String.length s > 0
    &&
    let re_found = ref false in
    String.iteri (fun i c -> if c = 'I' && i + 2 < String.length s && s.[i+1] = 'P' && s.[i+2] = 'C' then re_found := true) s;
    !re_found)

let test_profile_grouping_modes () =
  let p = Lazy.force mcf in
  let aware = Profile.run ~grouping:Profile.Dependence_aware p ~n:50000 in
  let naive = Profile.run ~grouping:Profile.Paper_naive p ~n:50000 in
  Alcotest.(check int) "same misses" aware.Profile.long_misses naive.Profile.long_misses;
  (* Chains split dependence-aware groups, so there are at least as
     many groups (i.e. smaller mean size). *)
  Alcotest.(check bool) "aware has more groups" true
    (Distribution.total aware.Profile.long_miss_groups
    >= Distribution.total naive.Profile.long_miss_groups)

let test_profile_group_members_match_misses () =
  let prof = Profile.run (Lazy.force mcf) ~n:50000 in
  let members =
    List.fold_left
      (fun acc (size, count) -> acc + (size * count))
      0
      (Distribution.to_list prof.Profile.long_miss_groups)
  in
  Alcotest.(check int) "every miss in exactly one group" prof.Profile.long_misses members

let test_iw_sim_agrees_with_machine () =
  (* Two independent implementations of the idealized window-limited
     machine: the lean dataflow simulation and the full cycle-level
     simulator configured to the same idealization (unit latencies,
     unbounded issue, instant-ish front end, huge ROB). Their IPCs
     must agree closely. *)
  let p = Lazy.force gzip in
  List.iter
    (fun window ->
      let lean = Iw_sim.ipc p ~window ~n:20000 in
      let config =
        {
          (Fom_uarch.Config.ideal Fom_uarch.Config.baseline) with
          Fom_uarch.Config.width = 512;
          pipeline_depth = 1;
          window_size = window;
          rob_size = 65536;
          unbounded_issue = true;
          latencies = Fom_isa.Latency.unit;
        }
      in
      let machine = Fom_uarch.Stats.ipc (Fom_uarch.Simulate.run config p ~n:20000) in
      let ratio = machine /. lean in
      Alcotest.(check bool)
        (Printf.sprintf "window %d: machine %.2f vs lean %.2f" window machine lean)
        true
        (ratio > 0.92 && ratio < 1.08))
    [ 8; 32; 128 ]

let prop_packed_kernel_bit_identical =
  (* The tentpole equivalence claim: the event-driven packed kernel
     computes *bit-identical* IPC (exact float equality) to the
     reference window-rescanning kernel, across randomized workloads,
     stream seeds, window sizes, latency tables and issue limits. *)
  QCheck.Test.make ~name:"packed kernel IPC bit-identical to reference" ~count:60
    QCheck.(quad (int_range 0 11) (int_range 1 280) (int_bound 100_000) (int_range 0 4))
    (fun (workload, window, seed, limit_sel) ->
      let config = List.nth Fom_workloads.Spec2000.all workload in
      let source = Fom_trace.Source.of_program ~seed (Fom_trace.Program.generate config) in
      let latencies =
        let pick k = 1 + ((seed / (k + 1)) mod 11) in
        Fom_isa.Latency.make ~alu:(pick 1) ~mul:(pick 2) ~div:(pick 3) ~load:(pick 4)
          ~store:(pick 5) ~branch:(pick 6) ~jump:(pick 7) ()
      in
      let issue_limit = match limit_sel with 0 -> None | k -> Some (1 lsl (k - 1)) in
      let n = 2000 in
      let reference = Iw_sim.ipc_of_source ~latencies ?issue_limit source ~window ~n in
      let packed = Fom_trace.Packed.of_source source ~n:(n + window) in
      let event = Iw_sim.ipc_of_packed ~latencies ?issue_limit packed ~window ~n in
      Float.equal reference event)

let test_packed_round_trip () =
  (* Packed decode must replay instruction-for-instruction what the
     source replays, including re-based indices and dependences in the
     wrapped region past the packed length. *)
  let len = 500 in
  let total = (2 * len) + 37 in
  let source = Fom_trace.Source.of_program (Lazy.force gzip) in
  let packed = Fom_trace.Packed.of_source source ~n:len in
  Alcotest.(check int) "length" len (Fom_trace.Packed.length packed);
  Alcotest.(check string) "label" (Fom_trace.Source.label source)
    (Fom_trace.Packed.label packed);
  let expect =
    Fom_trace.Source.record
      (Fom_trace.Source.of_instrs (Fom_trace.Source.record source ~n:len))
      ~n:total
  in
  let next = Fom_trace.Source.fresh (Fom_trace.Packed.to_source packed) in
  Array.iteri
    (fun i ins ->
      Alcotest.(check bool)
        (Printf.sprintf "decoded instr %d" i)
        true
        (Fom_trace.Packed.instr packed i = ins);
      Alcotest.(check bool) (Printf.sprintf "replayed instr %d" i) true (next () = ins))
    expect

let test_packed_no_wrap_overrun () =
  let packed =
    Fom_trace.Packed.of_source (Fom_trace.Source.of_program (Lazy.force gzip)) ~n:100
  in
  let next = Fom_trace.Source.fresh (Fom_trace.Packed.to_source ~wrap:false packed) in
  for _ = 1 to 100 do
    ignore (next ())
  done;
  match next () with
  | exception Fom_check.Checker.Invalid ds ->
      Alcotest.(check bool) "FOM-T132" true
        (List.exists (fun d -> d.Fom_check.Diagnostic.code = "FOM-T132") ds)
  | _ -> Alcotest.fail "reading past a non-wrapping packed trace must raise"

let test_iw_sim_rejects_window_beyond_ring () =
  let source = Fom_trace.Source.of_program (Lazy.force gzip) in
  let expect_code code thunk =
    match thunk () with
    | exception Fom_check.Checker.Invalid ds ->
        Alcotest.(check bool) code true
          (List.exists (fun d -> d.Fom_check.Diagnostic.code = code) ds)
    | (_ : float) -> Alcotest.fail (Printf.sprintf "expected %s" code)
  in
  expect_code "FOM-I031" (fun () ->
      Iw_sim.ipc_of_source source ~window:(Iw_sim.ring_size + 1) ~n:10);
  let packed = Fom_trace.Packed.of_source source ~n:64 in
  expect_code "FOM-I031" (fun () ->
      Iw_sim.ipc_of_packed packed ~window:(Iw_sim.ring_size + 1) ~n:10);
  (* The packed kernel also refuses traces too short for the run. *)
  expect_code "FOM-I033" (fun () -> Iw_sim.ipc_of_packed packed ~window:32 ~n:64)

let test_characterize_assembles_inputs () =
  let inputs = Characterize.inputs ~params:Params.baseline (Lazy.force gzip) ~n:50000 in
  Inputs.validate inputs;
  Alcotest.(check string) "name" "gzip" inputs.Inputs.name;
  Alcotest.(check bool) "rates populated" true (inputs.Inputs.mispredictions_per_instr > 0.0)

let test_characterize_model_tracks_simulation () =
  (* The end-to-end claim (paper Figure 15): model CPI within ~15% of
     detailed simulation. The full 12-benchmark check runs in the
     bench harness; here three representative workloads gate
     regressions. *)
  List.iter
    (fun p ->
      let p = Lazy.force p in
      let n = 100000 in
      let inputs = Characterize.inputs ~params:Params.baseline p ~n in
      let model = Fom_model.Cpi.total (Fom_model.Cpi.evaluate Params.baseline inputs) in
      let sim = Fom_uarch.Stats.cpi (Fom_uarch.Simulate.run Fom_uarch.Config.baseline p ~n) in
      let err = Float.abs (model -. sim) /. sim in
      Alcotest.(check bool)
        (Printf.sprintf "%s: model %.3f sim %.3f err %.1f%%" p.Fom_trace.Program.config.Fom_trace.Config.name model sim
           (100. *. err))
        true (err < 0.15))
    [ gzip; mcf; vortex ]

let suite =
  ( "analysis",
    [
      Alcotest.test_case "iw sim monotone in window" `Quick test_iw_sim_monotone_in_window;
      Alcotest.test_case "iw sim window one" `Quick test_iw_sim_window_one;
      Alcotest.test_case "iw sim issue limit" `Quick test_iw_sim_issue_limit_caps;
      Alcotest.test_case "iw sim little's law" `Quick test_iw_sim_latency_littles_law;
      Alcotest.test_case "iw curves are power laws" `Quick test_iw_curve_power_law_quality;
      Alcotest.test_case "iw curve benchmark ordering" `Quick test_iw_curve_benchmark_ordering;
      Alcotest.test_case "iw curve points sorted" `Quick test_iw_curve_points_sorted;
      Alcotest.test_case "profile counts consistent" `Quick test_profile_counts_consistent;
      Alcotest.test_case "profile latency bounds" `Quick test_profile_avg_latency_bounds;
      Alcotest.test_case "profile ideal cache" `Quick test_profile_ideal_cache_no_misses;
      Alcotest.test_case "profile ideal predictor" `Quick
        test_profile_ideal_predictor_no_mispredictions;
      Alcotest.test_case "profile matches machine events" `Quick
        test_profile_matches_machine_events;
      Alcotest.test_case "bursts partition mispredictions" `Quick
        test_burst_members_match_mispredictions;
      Alcotest.test_case "stats pp smoke" `Quick test_stats_pp_smoke;
      Alcotest.test_case "profile grouping modes" `Quick test_profile_grouping_modes;
      Alcotest.test_case "group members match misses" `Quick
        test_profile_group_members_match_misses;
      Alcotest.test_case "iw sim agrees with machine" `Quick test_iw_sim_agrees_with_machine;
      QCheck_alcotest.to_alcotest prop_packed_kernel_bit_identical;
      Alcotest.test_case "packed round trip" `Quick test_packed_round_trip;
      Alcotest.test_case "packed no-wrap overrun" `Quick test_packed_no_wrap_overrun;
      Alcotest.test_case "iw sim ring guards" `Quick test_iw_sim_rejects_window_beyond_ring;
      Alcotest.test_case "characterize assembles inputs" `Quick test_characterize_assembles_inputs;
      Alcotest.test_case "model tracks simulation" `Slow test_characterize_model_tracks_simulation;
    ] )
