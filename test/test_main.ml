let () =
  Alcotest.run "fom"
    [
      Suite_check.suite;
      Suite_exec.suite;
      Suite_obs.suite;
      Suite_util.suite;
      Suite_isa.suite;
      Suite_trace.suite;
      Suite_source.suite;
      Suite_phases.suite;
      Suite_cache.suite;
      Suite_branch.suite;
      Suite_uarch.suite;
      Suite_machine_exactness.suite;
      Suite_model.suite;
      Suite_analysis.suite;
      Suite_extensions.suite;
      Suite_workloads.suite;
    ]
