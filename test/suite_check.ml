(* The diagnostics engine: combinators, every runtime diagnostic code,
   and the guarantee that the shipped baselines are diagnostic-free. *)

module C = Fom_check.Checker
module D = Fom_check.Diagnostic

let has_code code rule = List.exists (fun d -> d.D.code = code) rule

let check_code name code rule =
  Alcotest.(check bool) (name ^ " reports " ^ code) true (has_code code rule)

let check_clean name rule =
  Alcotest.(check (list string))
    (name ^ " is diagnostic-free") []
    (List.map D.to_string rule)

let expect_invalid name code f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid")
  | exception C.Invalid ds -> check_code name code ds

(* --- combinators ----------------------------------------------------- *)

let test_combinators () =
  check_clean "ok" C.ok;
  check_clean "passing all" (C.all [ C.min_int ~code:"X" ~path:"p" ~min:1 3; C.ok ]);
  check_code "min_int" "X" (C.min_int ~code:"X" ~path:"p" ~min:1 0);
  check_code "min_float" "X" (C.min_float ~code:"X" ~path:"p" ~min:1.0 0.5);
  check_code "positive_float" "X" (C.positive_float ~code:"X" ~path:"p" 0.0);
  check_code "fraction above" "X" (C.fraction ~code:"X" ~path:"p" 1.5);
  check_code "fraction nan" "X" (C.fraction ~code:"X" ~path:"p" Float.nan);
  check_clean "fraction zero" (C.fraction ~code:"X" ~path:"p" 0.0);
  check_code "positive_fraction zero" "X" (C.positive_fraction ~code:"X" ~path:"p" 0.0);
  check_code "sum_to_one" "X"
    (C.sum_to_one ~code:"X" ~path:"p" [ ("a", 0.5); ("b", 0.4) ]);
  check_clean "sum_to_one exact"
    (C.sum_to_one ~code:"X" ~path:"p" [ ("a", 0.5); ("b", 0.5) ])

let test_severities () =
  let rule =
    C.all
      [
        C.fail ~code:"E1" ~path:"p" "an error";
        C.fail ~severity:D.Warning ~code:"W1" ~path:"p" "a warning";
        C.fail ~severity:D.Hint ~code:"H1" ~path:"p" "a hint";
      ]
  in
  Alcotest.(check int) "three diagnostics" 3 (List.length rule);
  Alcotest.(check int) "one error" 1 (List.length (C.errors rule));
  Alcotest.(check int) "one warning" 1 (List.length (C.warnings rule));
  Alcotest.(check bool) "has_errors" true (C.has_errors rule);
  Alcotest.(check string) "summary" "1 error, 1 warning, 1 hint" (C.summary rule);
  (* run_exn carries only the errors. *)
  (match C.run_exn rule with
  | () -> Alcotest.fail "run_exn accepted errors"
  | exception C.Invalid ds ->
      Alcotest.(check (list string)) "errors only" [ "E1" ] (List.map (fun d -> d.D.code) ds));
  C.run_exn (C.fail ~severity:D.Warning ~code:"W1" ~path:"p" "warnings do not raise")

let test_ensure_and_capture () =
  C.ensure ~code:"X" ~path:"p" true "fine";
  expect_invalid "ensure" "X" (fun () -> C.ensure ~code:"X" ~path:"p" false "bad");
  check_clean "capture of clean thunk" (C.capture (fun () -> ()));
  check_code "capture" "X"
    (C.capture (fun () -> C.ensure ~code:"X" ~path:"p" false "bad"));
  expect_invalid "internal_error" "FOM-X001" (fun () -> C.internal_error "broken invariant")

(* --- model parameters (FOM-P) ---------------------------------------- *)

let p = Fom_model.Params.baseline

let test_params_codes () =
  let module P = Fom_model.Params in
  check_clean "baseline params" (P.check p);
  check_code "P001" "FOM-P001" (P.check { p with P.width = 0 });
  check_code "P002" "FOM-P002" (P.check { p with P.pipeline_depth = 0 });
  check_code "P003" "FOM-P003" (P.check { p with P.window_size = 0 });
  check_code "P004" "FOM-P004" (P.check { p with P.window_size = 256; rob_size = 128 });
  check_code "P005" "FOM-P005" (P.check { p with P.short_delay = 0 });
  check_code "P006" "FOM-P006" (P.check { p with P.long_delay = 4 });
  check_code "P007" "FOM-P007" (P.check { p with P.dtlb_walk = -1 });
  check_code "P008" "FOM-P008" (P.check { p with P.fetch_buffer = -1 })

let test_params_p004_path () =
  match
    List.find_opt
      (fun d -> d.D.code = "FOM-P004")
      (Fom_model.Params.check { p with Fom_model.Params.window_size = 256; rob_size = 128 })
  with
  | Some d -> Alcotest.(check string) "P004 path" "params.window_size" d.D.path
  | None -> Alcotest.fail "no FOM-P004"

(* --- model inputs (FOM-I) -------------------------------------------- *)

let good_inputs =
  {
    Fom_model.Inputs.name = "test";
    instructions = 1_000;
    alpha = 1.5;
    beta = 0.5;
    fit_r2 = 0.99;
    avg_latency = 1.2;
    mispredictions_per_instr = 0.01;
    mispred_bursts = Fom_util.Distribution.of_list [ (1, 10) ];
    l1i_misses_per_instr = 0.002;
    l2i_misses_per_instr = 0.001;
    short_misses_per_instr = 0.01;
    long_misses_per_instr = 0.005;
    long_miss_groups = Fom_util.Distribution.of_list [ (1, 5) ];
    dtlb_misses_per_instr = 0.0;
    dtlb_groups = Fom_util.Distribution.create ();
  }

let test_inputs_codes () =
  let module I = Fom_model.Inputs in
  let i = good_inputs in
  check_clean "good inputs" (I.check i);
  check_code "I001" "FOM-I001" (I.check { i with I.instructions = 0 });
  check_code "I002" "FOM-I002" (I.check { i with I.alpha = 0.0 });
  check_code "I003" "FOM-I003" (I.check { i with I.beta = 1.5 });
  check_code "I004" "FOM-I004" (I.check { i with I.avg_latency = 0.5 });
  check_code "I005" "FOM-I005" (I.check { i with I.mispredictions_per_instr = -0.1 });
  check_code "I006" "FOM-I006"
    (I.check { i with I.l1i_misses_per_instr = 0.001; l2i_misses_per_instr = 0.002 });
  check_code "I007" "FOM-I007" (I.check { i with I.fit_r2 = 0.0 });
  check_code "I008" "FOM-I008"
    (I.check { i with I.long_miss_groups = Fom_util.Distribution.create () });
  check_code "I009" "FOM-I009"
    (I.check { i with I.long_miss_groups = Fom_util.Distribution.of_list [ (0, 3) ] });
  check_code "I010" "FOM-I010"
    (I.check { i with I.short_misses_per_instr = 0.6; long_misses_per_instr = 0.6 });
  check_code "I011" "FOM-I011" (I.check { i with I.fit_r2 = 0.3 });
  (* I006/I008/I011 are advisory, not errors. *)
  Alcotest.(check bool)
    "I006 is a warning" false
    (C.has_errors
       (I.check { i with I.l1i_misses_per_instr = 0.001; l2i_misses_per_instr = 0.002 }))

(* --- workload configs (FOM-T) ---------------------------------------- *)

let gzip = Fom_workloads.Spec2000.find "gzip"

let test_trace_config_codes () =
  let module T = Fom_trace.Config in
  let g = gzip in
  check_clean "gzip config" (T.check g);
  check_code "T001" "FOM-T001" (T.check { g with T.mix = { g.T.mix with T.load = -0.1 } });
  check_code "T002" "FOM-T002"
    (T.check { g with T.mix = { g.T.mix with T.load = 0.9; store = 0.9 } });
  check_code "T003" "FOM-T003"
    (T.check { g with T.mix = { g.T.mix with T.branch = 0.0; jump = 0.0 } });
  check_code "T004" "FOM-T004"
    (T.check { g with T.control = { g.T.control with T.regions = 0 } });
  check_code "T005" "FOM-T005" (T.check { g with T.deps = { g.T.deps with T.nsrc_weights = [||] } });
  check_code "T006" "FOM-T006"
    (T.check { g with T.memory = { g.T.memory with T.stream_stride = 7 } });
  check_code "T007" "FOM-T007"
    (T.check
       { g with T.control = { g.T.control with T.chaotic_low = 0.8; chaotic_high = 0.2 } });
  check_code "T008" "FOM-T008"
    (T.check
       { g with T.control = { g.T.control with T.chaotic_frac = 0.7; pattern_frac = 0.7 } });
  check_code "T010" "FOM-T010"
    (T.check { g with T.memory = { g.T.memory with T.local_frac = 0.9; random_frac = 0.9 } });
  (* Paths are rooted at the workload name. *)
  match T.check { g with T.mix = { g.T.mix with T.load = -0.1 } } with
  | d :: _ -> Alcotest.(check string) "rooted path" "workload.gzip.mix.load" d.D.path
  | [] -> Alcotest.fail "no diagnostic"

let test_branch_behavior_codes () =
  let module B = Fom_trace.Branch_behavior in
  expect_invalid "T030" "FOM-T030" (fun () -> B.create (B.Biased 1.5));
  expect_invalid "T031" "FOM-T031" (fun () -> B.create (B.Loop 0));
  expect_invalid "T032" "FOM-T032" (fun () -> B.create (B.Pattern [||]));
  ignore (B.create (B.Chaotic 0.5))

let test_address_gen_codes () =
  let module A = Fom_trace.Address_gen in
  expect_invalid "T050 region" "FOM-T050" (fun () ->
      A.create A.Random { A.base = 0; size = 12 });
  expect_invalid "T050 stride" "FOM-T050" (fun () ->
      A.create (A.Stride { stride = 3 }) { A.base = 0; size = 4096 })

let test_phases_codes () =
  let module P = Fom_trace.Phases in
  check_code "T040" "FOM-T040" (P.check []);
  check_code "T041" "FOM-T041" (P.check [ { P.config = gzip; instructions = 0 } ]);
  check_clean "valid schedule" (P.check [ { P.config = gzip; instructions = 100 } ])

(* --- trace files (FOM-T1xx) ------------------------------------------ *)

let with_trace_file contents f =
  let path = Filename.temp_file "fom_check" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let expect_parse_error name code ~line contents =
  with_trace_file contents (fun path ->
      match Fom_trace.Source.load ~path with
      | _ -> Alcotest.fail (name ^ ": accepted bad trace")
      | exception C.Invalid [ d ] ->
          Alcotest.(check string) (name ^ " code") code d.D.code;
          Alcotest.(check string)
            (name ^ " path")
            (Printf.sprintf "%s:%d" path line)
            d.D.path
      | exception C.Invalid _ -> Alcotest.fail (name ^ ": expected one diagnostic"))

let test_parse_codes () =
  expect_parse_error "T101 header" "FOM-T101" ~line:1 "not a trace\n";
  expect_parse_error "T102 empty" "FOM-T102" ~line:1 "";
  expect_parse_error "T103 class" "FOM-T103" ~line:2 "fom-trace 1\nbogus 400000 - - -\n";
  expect_parse_error "T104 hex" "FOM-T104" ~line:2 "fom-trace 1\nalu zz - - -\n";
  expect_parse_error "T105 dep" "FOM-T105" ~line:2 "fom-trace 1\nalu 400000 - - - 7\n";
  expect_parse_error "T106 malformed" "FOM-T106" ~line:2 "fom-trace 1\nalu 400000\n";
  expect_parse_error "T107 no instrs" "FOM-T107" ~line:1 "fom-trace 1\n";
  (* Blank lines shift the reported line number, not the index. *)
  expect_parse_error "T105 line 4" "FOM-T105" ~line:4
    "fom-trace 1\nalu 400000 - - -\n\nalu 400004 - - - 9\n"

let test_of_instrs_codes () =
  expect_invalid "T110 empty" "FOM-T110" (fun () -> Fom_trace.Source.of_instrs [||]);
  let i0 =
    Fom_isa.Instr.make ~index:1 ~pc:0x1000 ~opclass:Fom_isa.Opclass.Alu ()
  in
  expect_invalid "T110 order" "FOM-T110" (fun () -> Fom_trace.Source.of_instrs [| i0 |])

(* --- instruction structure (FOM-T12x, FOM-U) ------------------------- *)

let test_instr_codes () =
  expect_invalid "T120 index" "FOM-T120" (fun () ->
      Fom_isa.Instr.make ~index:(-1) ~pc:0 ~opclass:Fom_isa.Opclass.Alu ());
  expect_invalid "T120 load without mem" "FOM-T120" (fun () ->
      Fom_isa.Instr.make ~index:0 ~pc:0 ~opclass:Fom_isa.Opclass.Load ());
  expect_invalid "T120 forward dep" "FOM-T120" (fun () ->
      Fom_isa.Instr.make ~index:3 ~pc:0 ~opclass:Fom_isa.Opclass.Alu ~deps:[| 3 |] ());
  expect_invalid "T121 reg" "FOM-T121" (fun () -> Fom_isa.Reg.of_int (-2));
  let alu = Fom_isa.Instr.make ~index:0 ~pc:0 ~opclass:Fom_isa.Opclass.Alu () in
  expect_invalid "mem_exn internal" "FOM-X001" (fun () -> Fom_isa.Instr.mem_exn alu);
  expect_invalid "ctrl_exn internal" "FOM-X001" (fun () -> Fom_isa.Instr.ctrl_exn alu)

let test_util_codes () =
  expect_invalid "U001 rng" "FOM-U001" (fun () ->
      Fom_util.Rng.int (Fom_util.Rng.create 1) 0);
  expect_invalid "U001 distribution" "FOM-U001" (fun () ->
      Fom_util.Distribution.add_many (Fom_util.Distribution.create ()) (-1) 2);
  expect_invalid "U002 int_buffer" "FOM-U002" (fun () ->
      Fom_util.Int_buffer.create ~capacity:0 ());
  expect_invalid "U003 int_buffer get" "FOM-U003" (fun () ->
      Fom_util.Int_buffer.get (Fom_util.Int_buffer.create ()) 0);
  expect_invalid "U004 json" "FOM-U004" (fun () ->
      Fom_util.Json.of_string "{\"unterminated\": [1, 2")

(* --- machine configuration (FOM-M) ----------------------------------- *)

let m = Fom_uarch.Config.baseline

let test_machine_codes () =
  let module M = Fom_uarch.Config in
  check_clean "baseline machine" (M.check m);
  check_code "M001" "FOM-M001" (M.check { m with M.width = 0 });
  check_code "M002" "FOM-M002" (M.check { m with M.pipeline_depth = 0 });
  check_code "M003" "FOM-M003" (M.check { m with M.window_size = 0 });
  check_code "M004" "FOM-M004" (M.check { m with M.window_size = 256; rob_size = 128 });
  check_code "M005" "FOM-M005" (M.check { m with M.fetch_buffer = -1 });
  check_code "M006" "FOM-M006" (M.check { m with M.clusters = 0 });
  check_code "M007" "FOM-M007" (M.check { m with M.clusters = 3 });
  check_code "M008" "FOM-M008" (M.check { m with M.window_size = 47; clusters = 2 })

(* --- ring-capacity guards (FOM-I03x) --------------------------------- *)

let test_ring_guard_codes () =
  let module M = Fom_uarch.Config in
  (* FOM-I032: an in-flight span beyond the largest completion ring
     would silently alias completion slots; config validation rejects
     it instead. *)
  check_code "I032" "FOM-I032" (M.check { m with M.rob_size = 1 lsl M.max_comp_ring_bits });
  (* Below the cap the ring is sized to cover the span, so large-ROB
     studies (e.g. the IW-agreement machine) remain valid. *)
  let big = { m with M.rob_size = 65536; M.window_size = 48 } in
  check_clean "large rob valid" (M.check big);
  Alcotest.(check bool) "ring covers span" true (M.comp_ring_size big > M.inflight_span big);
  (* FOM-I031: the window-limited IW simulator rejects windows beyond
     its own completion ring rather than aliasing. *)
  let program = Fom_trace.Program.generate (List.hd Fom_workloads.Micro.all) in
  expect_invalid "I031 window beyond ring" "FOM-I031" (fun () ->
      ignore (Fom_analysis.Iw_sim.ipc program ~window:(Fom_analysis.Iw_sim.ring_size + 1) ~n:64))

let test_component_codes () =
  expect_invalid "M010 geometry" "FOM-M010" (fun () ->
      Fom_cache.Geometry.make ~size:100 ~assoc:3 ~line:7);
  check_code "M011 tlb" "FOM-M011"
    (Fom_cache.Tlb.diagnostics { Fom_cache.Tlb.default_spec with Fom_cache.Tlb.entries = 3 });
  expect_invalid "M012 latency" "FOM-M012" (fun () -> Fom_isa.Latency.make ~alu:0 ());
  expect_invalid "M013 fu_set" "FOM-M013" (fun () -> Fom_isa.Fu_set.make ~mul:0 ());
  check_code "M014 predictor" "FOM-M014"
    (Fom_branch.Predictor.diagnostics (Fom_branch.Predictor.Gshare 0));
  let cache = Fom_cache.Hierarchy.baseline in
  check_code "M015 hierarchy" "FOM-M015"
    (Fom_cache.Hierarchy.diagnostics
       {
         cache with
         Fom_cache.Hierarchy.latencies =
           { Fom_cache.Hierarchy.l1 = 2; l2 = 8; memory = 4 };
       });
  check_clean "baseline hierarchy" (Fom_cache.Hierarchy.diagnostics cache)

(* --- shipped baselines are diagnostic-free --------------------------- *)

let test_baselines_clean () =
  check_clean "params baseline" (Fom_model.Params.check Fom_model.Params.baseline);
  check_clean "machine baseline" (Fom_uarch.Config.check Fom_uarch.Config.baseline);
  List.iter
    (fun config ->
      check_clean
        ("workload " ^ config.Fom_trace.Config.name)
        (Fom_trace.Config.check config))
    (Fom_workloads.Spec2000.all @ Fom_workloads.Micro.all)

(* --- report rendering ------------------------------------------------ *)

let test_report () =
  let rule =
    C.all
      [
        C.fail ~code:"FOM-P001" ~path:"params.width" "width must be at least 1";
        C.fail ~severity:D.Warning ~code:"FOM-I006" ~path:"inputs.l2i" "suspicious";
      ]
  in
  let report = Format.asprintf "%a" C.pp_report rule in
  let contains needle =
    let n = String.length needle and m = String.length report in
    let rec scan k = k + n <= m && (String.sub report k n = needle || scan (k + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions code" true (contains "FOM-P001");
  Alcotest.(check bool) "mentions path" true (contains "params.width");
  Alcotest.(check bool) "mentions summary" true (contains "1 error, 1 warning")

let suite =
  ( "check",
    [
      Alcotest.test_case "combinators" `Quick test_combinators;
      Alcotest.test_case "severities" `Quick test_severities;
      Alcotest.test_case "ensure and capture" `Quick test_ensure_and_capture;
      Alcotest.test_case "params codes" `Quick test_params_codes;
      Alcotest.test_case "params P004 path" `Quick test_params_p004_path;
      Alcotest.test_case "inputs codes" `Quick test_inputs_codes;
      Alcotest.test_case "trace config codes" `Quick test_trace_config_codes;
      Alcotest.test_case "branch behavior codes" `Quick test_branch_behavior_codes;
      Alcotest.test_case "address gen codes" `Quick test_address_gen_codes;
      Alcotest.test_case "phases codes" `Quick test_phases_codes;
      Alcotest.test_case "trace parse codes" `Quick test_parse_codes;
      Alcotest.test_case "of_instrs codes" `Quick test_of_instrs_codes;
      Alcotest.test_case "instr codes" `Quick test_instr_codes;
      Alcotest.test_case "util codes" `Quick test_util_codes;
      Alcotest.test_case "machine codes" `Quick test_machine_codes;
      Alcotest.test_case "ring guard codes" `Quick test_ring_guard_codes;
      Alcotest.test_case "component codes" `Quick test_component_codes;
      Alcotest.test_case "baselines clean" `Quick test_baselines_clean;
      Alcotest.test_case "report rendering" `Quick test_report;
    ] )
