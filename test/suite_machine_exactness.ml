(* Exactness tests: hand-built traces through the detailed simulator,
   checking cycle-accurate behaviour of each mechanism in isolation. *)

module Config = Fom_uarch.Config
module Machine = Fom_uarch.Machine
module Stats = Fom_uarch.Stats
module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor

let ideal = Config.ideal Config.baseline

(* Build a thunk over a generator function from index to instruction. *)
let trace_of gen =
  let counter = ref 0 in
  fun () ->
    let index = !counter in
    incr counter;
    gen index

let alu ?pc ?(deps = [||]) index =
  let pc = Option.value pc ~default:(0x400000 + (4 * index)) in
  Instr.make ~index ~pc ~opclass:Opclass.Alu ~dst:(Reg.of_int ((index mod 31) + 1)) ~deps ()

let run_cycles config gen ~n =
  let machine = Machine.create config (trace_of gen) in
  (Machine.run machine ~n).Stats.cycles

let test_pipeline_fill_latency () =
  (* The very first instruction retires after fetch (cycle 0), the
     front-end depth, dispatch, issue, execute (1 cycle) and retire:
     total depth + 3 cycles for the machine as modeled. Check by
     running exactly width instructions. *)
  let c5 = run_cycles (Config.with_depth 5 ideal) alu ~n:4 in
  let c9 = run_cycles (Config.with_depth 9 ideal) alu ~n:4 in
  Alcotest.(check int) "depth shifts start exactly" 4 (c9 - c5)

let test_width_throughput_exact () =
  (* 4000 independent instructions at width 4: pipeline fill plus
     1000 cycles of full-width retirement, within a couple cycles. *)
  let cycles = run_cycles ideal alu ~n:4000 in
  Alcotest.(check bool) (Printf.sprintf "cycles %d in [1000, 1012]" cycles) true
    (cycles >= 1000 && cycles <= 1012)

let test_serial_chain_exact () =
  (* A dependence chain retires one instruction per cycle. *)
  let gen index = alu ~deps:(if index = 0 then [||] else [| index - 1 |]) index in
  let c1000 = run_cycles ideal gen ~n:1000 in
  let c2000 = run_cycles ideal gen ~n:2000 in
  Alcotest.(check int) "one cycle per instruction" 1000 (c2000 - c1000)

let test_mul_chain_exact () =
  (* A multiply chain pays the 3-cycle latency per link. *)
  let gen index =
    Instr.make ~index ~pc:0x400000 ~opclass:Opclass.Mul ~dst:(Reg.of_int 1)
      ~deps:(if index = 0 then [||] else [| index - 1 |])
      ()
  in
  let c100 = run_cycles ideal gen ~n:100 in
  let c200 = run_cycles ideal gen ~n:200 in
  Alcotest.(check int) "three cycles per link" 300 (c200 - c100)

let test_branch_mispredict_penalty_exact () =
  (* One mispredicted branch in independent work: the penalty is the
     resolution wait plus the front-end refill. With an Always_taken
     predictor and one not-taken branch, exactly one misprediction. *)
  let branch_at = 2000 in
  let gen index =
    if index = branch_at then
      Instr.make ~index ~pc:0x400100 ~opclass:Opclass.Branch
        ~ctrl:{ Instr.target = 0x400000; taken = false }
        ()
    else alu index
  in
  let config = Config.with_predictor Predictor.Always_taken ideal in
  let with_misp =
    let machine = Machine.create config (trace_of gen) in
    Machine.run machine ~n:6000
  in
  Alcotest.(check int) "exactly one misprediction" 1 with_misp.Stats.branch_mispredictions;
  let base = run_cycles ideal alu ~n:6000 in
  let penalty = with_misp.Stats.cycles - base in
  (* Independent work: the window drains at full width (short drain),
     the branch resolves quickly once issued, then a depth-5 refill.
     Expect a penalty within the model's [depth, depth + drain + ramp]
     bracket. *)
  Alcotest.(check bool)
    (Printf.sprintf "penalty %d in [5, 13]" penalty)
    true
    (penalty >= 5 && penalty <= 13)

let test_icache_miss_stall_exact () =
  (* With a never-hitting I-cache line pattern the fetch stalls the
     fill delay once per line. Two lines of instructions: one cold
     miss each. *)
  let config = Config.with_cache Hierarchy.ideal_except_l1i ideal in
  let machine = Machine.create config (trace_of alu) in
  let stats = Machine.run machine ~n:64 in
  (* 64 sequential instructions, 4 bytes each = 2 lines of 128B: two
     cold misses stall the fetch of retired work (fetch-ahead may
     touch the third line without delaying retirement). *)
  Alcotest.(check bool) "two or three line misses" true
    (stats.Stats.l1i_misses >= 2 && stats.Stats.l1i_misses <= 3);
  let base = run_cycles ideal alu ~n:64 in
  Alcotest.(check int) "16 stall cycles" 16 (stats.Stats.cycles - base)

let test_long_miss_blocks_retirement () =
  (* A long-miss load at the ROB head gates every younger
     instruction: nothing retires during the memory wait. *)
  let gen index =
    if index = 0 then
      Instr.make ~index ~pc:0x400000 ~opclass:Opclass.Load ~dst:(Reg.of_int 1)
        ~mem:0xA000000 ()
    else alu index
  in
  let config = Config.with_cache Hierarchy.fig14 ideal in
  let machine = Machine.create config (trace_of gen) in
  let stats = Machine.run machine ~n:128 in
  (* The load issues early and waits 200 cycles; the 127 younger
     instructions fill the ROB and retire only after it. *)
  Alcotest.(check int) "one long miss" 1 stats.Stats.long_data_misses;
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d slightly beyond the memory latency" stats.Stats.cycles)
    true
    (stats.Stats.cycles >= 200 && stats.Stats.cycles <= 240)

let test_store_misses_do_not_block () =
  (* The same address stream through stores must cost nothing: write
     buffering absorbs store misses. *)
  let gen kind index =
    if index mod 10 = 0 then
      Instr.make ~index ~pc:0x400000 ~opclass:kind
        ?dst:(if kind = Opclass.Load then Some (Reg.of_int 1) else None)
        ~mem:(0xA000000 + (index * 0x100000))
        ()
    else alu index
  in
  let config = Config.with_cache Hierarchy.fig14 ideal in
  let loads = run_cycles config (gen Opclass.Load) ~n:2000 in
  let stores = run_cycles config (gen Opclass.Store) ~n:2000 in
  let base = run_cycles ideal alu ~n:2000 in
  Alcotest.(check bool) "load misses cost" true (loads > base + 100);
  Alcotest.(check bool) "store misses free" true (stores < base + 20)

let test_window_stat_bounded () =
  let machine = Machine.create Config.baseline (trace_of alu) in
  let stats = Machine.run machine ~n:10000 in
  Alcotest.(check bool) "window occupancy within size" true
    (stats.Stats.mean_window_occupancy <= 48.0);
  Alcotest.(check bool) "rob occupancy within size" true
    (stats.Stats.mean_rob_occupancy <= 128.0)

let prop_event_kernel_matches_scan =
  (* The event-driven issue stage must be indistinguishable from the
     reference window scan: identical full statistics (cycle counts,
     miss events, occupancy means — exact float equality) on the same
     trace, across randomized workloads, machine shapes and feature
     sets (clusters, FU limits, TLB, fetch buffer, unbounded issue). *)
  QCheck.Test.make ~name:"event issue kernel matches scan kernel exactly" ~count:40
    QCheck.(quad (int_range 0 11) (int_bound 10_000) (int_range 0 5) (int_bound 10_000))
    (fun (workload, seed, variant, shape) ->
      let spec =
        Fom_workloads.Spec2000.with_seed seed
          (List.nth Fom_workloads.Spec2000.all workload)
      in
      let program = Fom_trace.Program.generate spec in
      let base =
        {
          Config.baseline with
          Config.width = [| 2; 4; 8 |].(shape mod 3);
          pipeline_depth = 3 + (shape mod 4);
          window_size = [| 16; 32; 48 |].(shape mod 3);
          rob_size = 96 + (32 * (shape mod 3));
        }
      in
      let config =
        match variant with
        | 0 -> Config.ideal base
        | 1 -> base
        | 2 -> Config.with_clusters 2 base
        | 3 -> Config.with_fu_limits (Fom_isa.Fu_set.make ~alu:2 ~load:1 ~mul:1 ()) base
        | 4 ->
            Config.with_fetch_buffer 16
              (Config.with_dtlb
                 { Fom_cache.Tlb.entries = 16; page_bits = 13; walk_latency = 30 }
                 base)
        | _ -> { (Config.ideal base) with Config.unbounded_issue = true }
      in
      let n = 3000 in
      let run kernel = Fom_uarch.Simulate.run ~kernel config program ~n in
      run Machine.Scan = run Machine.Event)

let prop_packed_feed_matches_thunk =
  (* The packed feed decodes the same field values the thunk feed
     does, so a packed-fed machine must produce bit-identical full
     statistics — both kernels, real and ideal features. *)
  QCheck.Test.make ~name:"packed feed matches thunk feed exactly" ~count:25
    QCheck.(triple (int_range 0 11) (int_bound 10_000) (int_range 0 3))
    (fun (workload, seed, variant) ->
      let spec =
        Fom_workloads.Spec2000.with_seed seed
          (List.nth Fom_workloads.Spec2000.all workload)
      in
      let program = Fom_trace.Program.generate spec in
      let config =
        match variant with
        | 0 -> ideal
        | 1 -> Config.baseline
        | 2 -> Config.with_clusters 2 Config.baseline
        | _ -> Config.with_fetch_buffer 16 ideal
      in
      let n = 3000 in
      let packed =
        Fom_trace.Packed.of_source
          (Fom_trace.Source.of_program program)
          ~n:(n + Config.inflight_span config)
      in
      let check kernel =
        Fom_uarch.Simulate.run ~kernel config program ~n
        = Fom_uarch.Simulate.run_packed ~kernel config packed ~n
      in
      check Machine.Event && check Machine.Scan)

let test_resumable_runs_compose () =
  (* Two runs of n/2 equal one run of n on the same machine. *)
  let m1 = Machine.create ideal (trace_of alu) in
  let _ = Machine.run m1 ~n:500 in
  let second = Machine.run m1 ~n:500 in
  let m2 = Machine.create ideal (trace_of alu) in
  let full = Machine.run m2 ~n:1000 in
  Alcotest.(check int) "same total cycles" full.Stats.cycles second.Stats.cycles;
  Alcotest.(check bool) "at least 1000 retired" true (second.Stats.instructions >= 1000)

let suite =
  ( "machine-exactness",
    [
      Alcotest.test_case "pipeline fill latency" `Quick test_pipeline_fill_latency;
      Alcotest.test_case "width throughput" `Quick test_width_throughput_exact;
      Alcotest.test_case "serial chain" `Quick test_serial_chain_exact;
      Alcotest.test_case "mul chain" `Quick test_mul_chain_exact;
      Alcotest.test_case "mispredict penalty bracket" `Quick
        test_branch_mispredict_penalty_exact;
      Alcotest.test_case "icache stall" `Quick test_icache_miss_stall_exact;
      Alcotest.test_case "long miss blocks retirement" `Quick test_long_miss_blocks_retirement;
      Alcotest.test_case "store misses do not block" `Quick test_store_misses_do_not_block;
      Alcotest.test_case "occupancy stats bounded" `Quick test_window_stat_bounded;
      Alcotest.test_case "resumable runs compose" `Quick test_resumable_runs_compose;
      QCheck_alcotest.to_alcotest prop_event_kernel_matches_scan;
      QCheck_alcotest.to_alcotest prop_packed_feed_matches_thunk;
    ] )
