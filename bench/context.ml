(* Shared state for the experiment harness: workload programs, scale
   settings, the domain pool, and memoized simulation/characterization
   results so that exhibits sharing a configuration (e.g. the
   all-ideal baseline) pay for it once.

   Memoization is through Fom_exec.Memo future cells: the first
   demander of a key computes, concurrent demanders wait for that one
   result (helping drain the pool while they do) — each sim and each
   characterization runs exactly once per process regardless of
   --jobs. With --cache-dir, results additionally persist across
   processes through Fom_exec.Cache, keyed by a content digest of the
   workload + machine configuration and instruction counts. *)

module Config = Fom_uarch.Config
module Stats = Fom_uarch.Stats
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor
module Params = Fom_model.Params
module Pool = Fom_exec.Pool
module Memo = Fom_exec.Memo
module Cache = Fom_exec.Cache

type t = {
  n_sim : int;  (** instructions per detailed simulation *)
  n_profile : int;  (** instructions per functional profile *)
  n_iw : int;  (** instructions per IW-curve point *)
  csv_dir : string option;  (** where to mirror tables as CSV files *)
  pool : Pool.t;  (** worker domains shared by every exhibit *)
  disk : Cache.t option;  (** optional cross-process result cache *)
  programs : (string * (Fom_trace.Config.t * Fom_trace.Program.t)) list;
  packs : (string, Fom_trace.Packed.t) Memo.t;
  sims : (string, Stats.t) Memo.t;
  inputs :
    (string, Fom_analysis.Iw_curve.t * Fom_analysis.Profile.t * Fom_model.Inputs.t) Memo.t;
}

let create ?csv_dir ?cache_dir ?jobs ~scale () =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"bench.scale" (scale > 0.0)
    "scale factor must be positive";
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  let s x = int_of_float (float_of_int x *. scale) in
  let pool = Pool.create ?jobs () in
  {
    n_sim = s 200_000;
    n_profile = s 200_000;
    n_iw = s 30_000;
    csv_dir;
    pool;
    disk = Option.map (fun dir -> Cache.create ~dir) cache_dir;
    programs =
      List.map
        (fun config ->
          (config.Fom_trace.Config.name, (config, Fom_trace.Program.generate config)))
        Fom_workloads.Spec2000.all;
    packs = Memo.create ~pool ();
    sims = Memo.create ~pool ();
    inputs = Memo.create ~pool ();
  }

let shutdown t = Pool.shutdown t.pool
let pool t = t.pool
let jobs t = Pool.jobs t.pool

let names t = List.map fst t.programs
let program t name = snd (List.assoc name t.programs)
let workload_config t name = fst (List.assoc name t.programs)

let disk_stats t = Option.map Cache.stats t.disk

let disk_diagnostics t =
  match t.disk with Some cache -> Cache.drain_diagnostics cache | None -> []

(* Persist through the on-disk cache when one is configured. [parts]
   must capture everything the result depends on (the kind tag keeps
   result types apart). *)
let on_disk t ~kind ~parts compute =
  match t.disk with
  | None -> compute ()
  | Some cache -> Cache.get cache ~key:(Cache.digest (kind :: parts)) compute

(* Machine variants used across exhibits. *)
let ideal = Config.ideal Config.baseline
let real = Config.baseline
let bp_only = Config.with_predictor Predictor.default_spec ideal
let icache_only = Config.with_cache Hierarchy.ideal_except_l1i ideal
let dcache_only = Config.with_cache Hierarchy.ideal_except_data ideal
let fig14_machine = Config.with_cache Hierarchy.fig14 ideal

(* One packed trace per benchmark, shared by every simulation variant
   and the characterization passes. The margin past the longest pass
   covers the machine's fetch-ahead (bounded by the in-flight span)
   and the IW sweep's window overhang. Packing is cheap relative to
   what replays it, so it is memoized in-process but never written to
   disk. *)
let packed_margin = 8192

let packed t name =
  Memo.get t.packs name (fun () ->
      let n =
        Stdlib.max (Stdlib.max t.n_sim t.n_profile) (t.n_iw + 512) + packed_margin
      in
      Fom_trace.Packed.of_source (Fom_trace.Source.of_program (program t name)) ~n)

let sim t ~variant ~config name =
  let key = Printf.sprintf "%s/%s/%d" variant name t.n_sim in
  Memo.get t.sims key (fun () ->
      on_disk t ~kind:"sim"
        ~parts:
          [
            Cache.part (workload_config t name);
            Cache.part config;
            string_of_int t.n_sim;
          ]
        (fun () ->
          (* Replay the packed columns instead of re-generating the
             stream; identical instructions, so identical statistics.
             Configs whose fetch-ahead could outrun the packed margin
             (none of the stock variants) fall back to generation. *)
          if Config.inflight_span config <= packed_margin then
            Fom_uarch.Simulate.run_packed config (packed t name) ~n:t.n_sim
          else Fom_uarch.Simulate.run config (program t name) ~n:t.n_sim))

(* Characterize [name] under an optional non-baseline cache hierarchy
   and model parameters (Figure 14 profiles against its own 128K-L1D /
   200-cycle machine). [tag] keys the in-process memo; the on-disk
   digest is content-based, so two tags describing identical
   configurations share a disk entry. *)
let characterization_for ?(grouping = Fom_analysis.Profile.Dependence_aware) ?cache ~tag
    ~params t name =
  let key =
    Printf.sprintf "%s/%s/%s" tag name
      (match grouping with
      | Fom_analysis.Profile.Dependence_aware -> "aware"
      | Fom_analysis.Profile.Paper_naive -> "naive")
  in
  Memo.get t.inputs key (fun () ->
      on_disk t ~kind:"characterization"
        ~parts:
          [
            Cache.part (workload_config t name);
            Cache.part (grouping, cache, params);
            string_of_int t.n_profile;
            string_of_int t.n_iw;
          ]
        (fun () ->
          (* The pool is passed down so the IW-curve points parallelize
             across windows as well as benchmarks; nested maps are safe
             because a waiting caller drives the deques itself. *)
          Fom_analysis.Characterize.curve_and_inputs_of_packed ~pool:t.pool
            ~iw_instructions:t.n_iw ?cache ~grouping ~params (packed t name)
            ~n:t.n_profile))

let characterization ?grouping t name =
  characterization_for ?grouping ~tag:"base" ~params:Params.baseline t name

(* Run independent thunks on the pool; exhibits use this to warm the
   memo caches in parallel before printing rows in their fixed
   sequential order. Thanks to the memo futures, overlapping warm
   lists (or a warm racing a direct demand) never duplicate work. *)
let parallel t thunks = ignore (Pool.map t.pool ~f:(fun thunk -> thunk ()) thunks)

let warm_sims t specs =
  parallel t
    (List.map (fun (variant, config, name) () -> ignore (sim t ~variant ~config name)) specs)

let warm_characterizations ?grouping t names =
  parallel t (List.map (fun name () -> ignore (characterization ?grouping t name)) names)

let heading title = print_string (Fom_util.Table.heading title)

let note fmt = Printf.printf (fmt ^^ "\n")

(* Print a table and, when --csv is active, mirror it to
   <csv_dir>/<name>.csv. *)
let table t ~name ~header rows =
  Fom_util.Table.print ~header rows;
  Option.iter
    (fun dir ->
      Fom_util.Csv.write_file ~path:(Filename.concat dir (name ^ ".csv")) ~header rows)
    t.csv_dir
