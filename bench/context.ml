(* Shared state for the experiment harness: workload programs, scale
   settings, the domain pool, and memoized simulation/characterization
   results so that exhibits sharing a configuration (e.g. the
   all-ideal baseline) pay for it once.

   The memo tables are guarded by a mutex so exhibits can warm them
   from pool tasks ([warm_sims] / [warm_characterizations]); values
   are computed outside the lock (a racing duplicate computation is
   deterministic, so whichever result lands first is the one kept). *)

module Config = Fom_uarch.Config
module Stats = Fom_uarch.Stats
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor
module Params = Fom_model.Params
module Pool = Fom_exec.Pool

type t = {
  n_sim : int;  (** instructions per detailed simulation *)
  n_profile : int;  (** instructions per functional profile *)
  n_iw : int;  (** instructions per IW-curve point *)
  csv_dir : string option;  (** where to mirror tables as CSV files *)
  pool : Pool.t;  (** worker domains shared by every exhibit *)
  programs : (string * Fom_trace.Program.t) list;
  lock : Mutex.t;
  packs : (string, Fom_trace.Packed.t) Hashtbl.t;
  sims : (string, Stats.t) Hashtbl.t;
  inputs : (string, Fom_analysis.Iw_curve.t * Fom_analysis.Profile.t * Fom_model.Inputs.t) Hashtbl.t;
}

let create ?csv_dir ?jobs ~scale () =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"bench.scale" (scale > 0.0)
    "scale factor must be positive";
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  let s x = int_of_float (float_of_int x *. scale) in
  {
    n_sim = s 200_000;
    n_profile = s 200_000;
    n_iw = s 30_000;
    csv_dir;
    pool = Pool.create ?jobs ();
    programs =
      List.map
        (fun config -> (config.Fom_trace.Config.name, Fom_trace.Program.generate config))
        Fom_workloads.Spec2000.all;
    lock = Mutex.create ();
    packs = Hashtbl.create 16;
    sims = Hashtbl.create 64;
    inputs = Hashtbl.create 16;
  }

let shutdown t = Pool.shutdown t.pool
let pool t = t.pool
let jobs t = Pool.jobs t.pool

let names t = List.map fst t.programs
let program t name = List.assoc name t.programs

(* Machine variants used across exhibits. *)
let ideal = Config.ideal Config.baseline
let real = Config.baseline
let bp_only = Config.with_predictor Predictor.default_spec ideal
let icache_only = Config.with_cache Hierarchy.ideal_except_l1i ideal
let dcache_only = Config.with_cache Hierarchy.ideal_except_data ideal
let fig14_machine = Config.with_cache Hierarchy.fig14 ideal

(* Double-checked memoization: look up under the lock, compute outside
   it, and keep whichever value was inserted first. *)
let memo t tbl key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt tbl key with
  | Some v ->
      Mutex.unlock t.lock;
      v
  | None ->
      Mutex.unlock t.lock;
      let v = compute () in
      Mutex.lock t.lock;
      let kept =
        match Hashtbl.find_opt tbl key with
        | Some winner -> winner
        | None ->
            Hashtbl.add tbl key v;
            v
      in
      Mutex.unlock t.lock;
      kept

(* One packed trace per benchmark, shared by every simulation variant
   and the characterization passes. The margin past the longest pass
   covers the machine's fetch-ahead (bounded by the in-flight span)
   and the IW sweep's window overhang. *)
let packed_margin = 8192

let packed t name =
  memo t t.packs name (fun () ->
      let n =
        Stdlib.max (Stdlib.max t.n_sim t.n_profile) (t.n_iw + 512) + packed_margin
      in
      Fom_trace.Packed.of_source (Fom_trace.Source.of_program (program t name)) ~n)

let sim t ~variant ~config name =
  let key = Printf.sprintf "%s/%s/%d" variant name t.n_sim in
  memo t t.sims key (fun () ->
      (* Replay the packed columns instead of re-generating the stream;
         identical instructions, so identical statistics. Configs whose
         fetch-ahead could outrun the packed margin (none of the stock
         variants) fall back to generation. *)
      if Config.inflight_span config <= packed_margin then
        Fom_uarch.Simulate.run_packed config (packed t name) ~n:t.n_sim
      else Fom_uarch.Simulate.run config (program t name) ~n:t.n_sim)

let characterization ?(grouping = Fom_analysis.Profile.Dependence_aware) t name =
  let key =
    Printf.sprintf "%s/%s" name
      (match grouping with
      | Fom_analysis.Profile.Dependence_aware -> "aware"
      | Fom_analysis.Profile.Paper_naive -> "naive")
  in
  memo t t.inputs key (fun () ->
      (* The pool is passed down so the IW-curve points parallelize
         across windows as well as benchmarks; nested maps are safe
         because a waiting caller helps drain the shared queue. *)
      Fom_analysis.Characterize.curve_and_inputs_of_packed ~pool:t.pool
        ~iw_instructions:t.n_iw ~grouping ~params:Params.baseline (packed t name)
        ~n:t.n_profile)

(* Run independent thunks on the pool; exhibits use this to warm the
   memo caches in parallel before printing rows in their fixed
   sequential order. *)
let parallel t thunks = ignore (Pool.map t.pool ~f:(fun thunk -> thunk ()) thunks)

let warm_sims t specs =
  parallel t
    (List.map (fun (variant, config, name) () -> ignore (sim t ~variant ~config name)) specs)

let warm_characterizations ?grouping t names =
  parallel t (List.map (fun name () -> ignore (characterization ?grouping t name)) names)

let heading title = print_string (Fom_util.Table.heading title)

let note fmt = Printf.printf (fmt ^^ "\n")

(* Print a table and, when --csv is active, mirror it to
   <csv_dir>/<name>.csv. *)
let table t ~name ~header rows =
  Fom_util.Table.print ~header rows;
  Option.iter
    (fun dir ->
      Fom_util.Csv.write_file ~path:(Filename.concat dir (name ^ ".csv")) ~header rows)
    t.csv_dir
