(* Figures 15 and 16: overall model accuracy and the CPI stack. *)

module Table = Fom_util.Table
module Stats = Fom_uarch.Stats
module Params = Fom_model.Params
module Cpi = Fom_model.Cpi

(* Figure 15: model CPI vs detailed simulation on the baseline
   machine. Paper: 5.8% average error, 13% worst case. *)
let fig15 ctx =
  (* Sims and characterizations for every benchmark are independent;
     warm both caches in one parallel batch before the rows print. *)
  Context.parallel ctx
    (List.concat_map
       (fun name ->
         [
           (fun () -> ignore (Context.sim ctx ~variant:"real" ~config:Context.real name));
           (fun () -> ignore (Context.characterization ctx name));
         ])
       (Context.names ctx));
  Context.heading "Figure 15: first-order model vs detailed simulation (CPI)";
  let errs = ref [] and paper_errs = ref [] in
  let rows =
    List.map
      (fun name ->
        let sim = Stats.cpi (Context.sim ctx ~variant:"real" ~config:Context.real name) in
        let _, _, inputs = Context.characterization ctx name in
        let model = Cpi.total (Cpi.evaluate Params.baseline inputs) in
        let paper_mode =
          Cpi.total
            (Cpi.evaluate ~branch_mode:Cpi.Paper_constant ~dcache_mode:Cpi.Paper_delay
               Params.baseline inputs)
        in
        let err = (model -. sim) /. sim *. 100.0 in
        let paper_err = (paper_mode -. sim) /. sim *. 100.0 in
        errs := Float.abs err :: !errs;
        paper_errs := Float.abs paper_err :: !paper_errs;
        [
          name;
          Table.float_cell sim;
          Table.float_cell model;
          Table.float_cell ~decimals:1 err;
          Table.float_cell paper_mode;
          Table.float_cell ~decimals:1 paper_err;
        ])
      (Context.names ctx)
  in
  Context.table ctx ~name:"fig15"
    ~header:[ "benchmark"; "sim CPI"; "model CPI"; "err%"; "paper-mode CPI"; "err%" ]
    rows;
  let mean l = Fom_util.Stats.mean (Array.of_list l) in
  let max l = Fom_util.Stats.max (Array.of_list l) in
  Context.note
    "refined model: mean |err| %.1f%%, max %.1f%%; paper-mode (7.5-cycle branch, eq.8 delay): mean %.1f%%, max %.1f%%"
    (mean !errs) (max !errs) (mean !paper_errs) (max !paper_errs);
  Context.note "paper reports 5.8%% average and 13%% worst case on its SPECint runs"

(* Figure 16: the stacked CPI decomposition. *)
let fig16 ctx =
  Context.warm_characterizations ctx (Context.names ctx);
  Context.heading "Figure 16: CPI stack (model components)";
  let header = [ "benchmark"; "ideal"; "L1 I$"; "L2 I$"; "L2 D$"; "branch"; "total" ] in
  let rows =
    List.map
      (fun name ->
        let _, _, inputs = Context.characterization ctx name in
        let b = Cpi.evaluate Params.baseline inputs in
        [
          name;
          Table.float_cell b.Cpi.steady;
          Table.float_cell b.Cpi.l1i;
          Table.float_cell b.Cpi.l2i;
          Table.float_cell b.Cpi.dcache;
          Table.float_cell b.Cpi.branch;
          Table.float_cell (Cpi.total b);
        ])
      (Context.names ctx)
  in
  Context.table ctx ~name:"fig16" ~header rows;
  List.iter
    (fun name ->
      let _, _, inputs = Context.characterization ctx name in
      let b = Cpi.evaluate Params.baseline inputs in
      let share = b.Cpi.dcache /. Cpi.total b *. 100.0 in
      Context.note "%s: long D-misses are %.0f%% of CPI" name share)
    [ "mcf"; "twolf" ];
  Context.note "(paper: about 70%% for mcf and 60%% for twolf)"
