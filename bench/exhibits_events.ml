(* Figures 2, 9, 11, 14: miss-event independence and per-event
   penalties from the differencing methodology. *)

module Table = Fom_util.Table
module Stats = Fom_uarch.Stats
module Config = Fom_uarch.Config
module Params = Fom_model.Params
module Cpi = Fom_model.Cpi
module Penalties = Fom_model.Penalties
module Inputs = Fom_model.Inputs

(* Figure 2: miss-event penalties add independently. Five simulations
   per benchmark: all-real, all-ideal, and each structure real in
   isolation; the sum of isolated penalties approximates the real
   machine, and compensating branch/I-miss events that overlap a long
   D-miss improves it slightly. *)
let fig2 ctx =
  Context.warm_sims ctx
    (List.concat_map
       (fun name ->
         [
           ("ideal", Context.ideal, name);
           ("real", Context.real, name);
           ("bp-only", Context.bp_only, name);
           ("ic-only", Context.icache_only, name);
           ("dc-only", Context.dcache_only, name);
         ])
       (Context.names ctx));
  Context.heading "Figure 2: independence of miss-event penalties (IPC)";
  let header = [ "benchmark"; "combined"; "independent"; "err%"; "compensated"; "err%" ] in
  let ind_errs = ref [] and comp_errs = ref [] in
  let rows =
    List.map
      (fun name ->
        let ideal = Context.sim ctx ~variant:"ideal" ~config:Context.ideal name in
        let real = Context.sim ctx ~variant:"real" ~config:Context.real name in
        let bp = Context.sim ctx ~variant:"bp-only" ~config:Context.bp_only name in
        let ic = Context.sim ctx ~variant:"ic-only" ~config:Context.icache_only name in
        let dc = Context.sim ctx ~variant:"dc-only" ~config:Context.dcache_only name in
        let cycles (s : Stats.t) = float_of_int s.Stats.cycles in
        let bp_penalty = cycles bp -. cycles ideal in
        let ic_penalty = cycles ic -. cycles ideal in
        let dc_penalty = cycles dc -. cycles ideal in
        let independent = cycles ideal +. bp_penalty +. ic_penalty +. dc_penalty in
        (* Compensation: drop the penalty share of branch and I-cache
           events that the real run saw under an outstanding long
           D-miss. *)
        let frac num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
        let br_overlap =
          frac real.Stats.mispredictions_under_long_miss real.Stats.branch_mispredictions
        in
        let ic_overlap =
          frac real.Stats.imisses_under_long_miss
            (real.Stats.l1i_misses + real.Stats.l2i_misses)
        in
        let compensated =
          independent -. (br_overlap *. bp_penalty) -. (ic_overlap *. ic_penalty)
        in
        let insns = float_of_int real.Stats.instructions in
        let real_ipc = Stats.ipc real in
        let ind_ipc = insns /. independent in
        let comp_ipc = insns /. compensated in
        let err x = (x -. real_ipc) /. real_ipc *. 100.0 in
        ind_errs := Float.abs (err ind_ipc) :: !ind_errs;
        comp_errs := Float.abs (err comp_ipc) :: !comp_errs;
        [
          name;
          Table.float_cell real_ipc;
          Table.float_cell ind_ipc;
          Table.float_cell ~decimals:1 (err ind_ipc);
          Table.float_cell comp_ipc;
          Table.float_cell ~decimals:1 (err comp_ipc);
        ])
      (Context.names ctx)
  in
  Context.table ctx ~name:"fig2" ~header rows;
  let mean l = Fom_util.Stats.mean (Array.of_list l) in
  Context.note "mean |error|: independent %.1f%% (paper 5%%), compensated %.1f%% (paper 4%%)"
    (mean !ind_errs) (mean !comp_errs);
  if mean !comp_errs > mean !ind_errs then
    Context.note
      "note: full compensation overshoots here — the synthetic memory-bound traces spend more \
       time under outstanding long misses than the paper's SPEC runs, and overlapped events \
       are only partially free. The final model follows the paper and does not compensate."

(* Figure 9: measured penalty per branch misprediction for 5- and
   9-stage front ends. The paper: typically 6.4 to 10 cycles at depth
   5 (vpr 14.7) — more than the pipeline depth. *)
let fig9 ctx =
  Context.parallel ctx
    (List.concat_map
       (fun name ->
         (fun () -> ignore (Context.characterization ctx name))
         :: List.concat_map
              (fun depth ->
                let variant tag = Printf.sprintf "%s-d%d" tag depth in
                [
                  (fun () ->
                    ignore
                      (Context.sim ctx ~variant:(variant "bp-only")
                         ~config:(Config.with_depth depth Context.bp_only) name));
                  (fun () ->
                    ignore
                      (Context.sim ctx ~variant:(variant "ideal")
                         ~config:(Config.with_depth depth Context.ideal) name));
                ])
              [ 5; 9 ])
       (Context.names ctx));
  Context.heading "Figure 9: penalty per branch misprediction, 5 vs 9 front-end stages";
  let penalty name depth =
    let bp = Config.with_depth depth Context.bp_only in
    let ideal = Config.with_depth depth Context.ideal in
    let variant tag = Printf.sprintf "%s-d%d" tag depth in
    let with_bp = Context.sim ctx ~variant:(variant "bp-only") ~config:bp name in
    let base = Context.sim ctx ~variant:(variant "ideal") ~config:ideal name in
    let events = with_bp.Stats.branch_mispredictions in
    if events = 0 then 0.0
    else float_of_int (with_bp.Stats.cycles - base.Stats.cycles) /. float_of_int events
  in
  let rows =
    List.map
      (fun name ->
        let p5 = penalty name 5 and p9 = penalty name 9 in
        let _, _, inputs = Context.characterization ctx name in
        let iw = Cpi.characteristic Params.baseline inputs in
        let model5 =
          Penalties.branch_misprediction iw Params.baseline
            ~burst:(Inputs.mispred_burst_mean inputs)
        in
        [
          name;
          Table.float_cell ~decimals:1 p5;
          Table.float_cell ~decimals:1 p9;
          Table.float_cell ~decimals:1 model5;
        ])
      (Context.names ctx)
  in
  Context.table ctx ~name:"fig9"
    ~header:[ "benchmark"; "sim depth 5"; "sim depth 9"; "model depth 5" ] rows;
  Context.note "The penalty exceeds the front-end depth (paper observation 1)."

(* Figure 11: the I-cache miss penalty is about the fill delay and
   independent of the front-end depth. *)
let fig11 ctx =
  Context.parallel ctx
    (List.concat_map
       (fun name ->
         List.concat_map
           (fun depth ->
             let variant tag = Printf.sprintf "%s-d%d" tag depth in
             [
               (fun () ->
                 ignore
                   (Context.sim ctx ~variant:(variant "ic-only")
                      ~config:(Config.with_depth depth Context.icache_only) name));
               (fun () ->
                 ignore
                   (Context.sim ctx ~variant:(variant "ideal")
                      ~config:(Config.with_depth depth Context.ideal) name));
             ])
           [ 5; 9 ])
       (Context.names ctx));
  Context.heading "Figure 11: penalty per L1 I-cache miss, 5 vs 9 front-end stages (delay 8)";
  let penalty name depth =
    let ic = Config.with_depth depth Context.icache_only in
    let ideal = Config.with_depth depth Context.ideal in
    let variant tag = Printf.sprintf "%s-d%d" tag depth in
    let with_ic = Context.sim ctx ~variant:(variant "ic-only") ~config:ic name in
    let base = Context.sim ctx ~variant:(variant "ideal") ~config:ideal name in
    let events = with_ic.Stats.l1i_misses + with_ic.Stats.l2i_misses in
    if events < 20 then None
    else Some (float_of_int (with_ic.Stats.cycles - base.Stats.cycles) /. float_of_int events)
  in
  let skipped = ref [] in
  let rows =
    List.filter_map
      (fun name ->
        match (penalty name 5, penalty name 9) with
        | Some p5, Some p9 ->
            Some [ name; Table.float_cell ~decimals:1 p5; Table.float_cell ~decimals:1 p9 ]
        | _ ->
            skipped := name :: !skipped;
            None)
      (Context.names ctx)
  in
  Context.table ctx ~name:"fig11" ~header:[ "benchmark"; "sim depth 5"; "sim depth 9" ] rows;
  if !skipped <> [] then
    Context.note "negligible I-cache misses (as in the paper): %s"
      (String.concat ", " (List.rev !skipped));
  Context.note "The penalty stays near the 8-cycle fill delay at both depths (observation 2)."

(* Figure 14: penalty per long data-cache miss, simulation vs model
   (eq. 8), on the paper's 128K-L1D / 200-cycle configuration. *)
let fig14 ctx =
  Context.heading "Figure 14: penalty per long D-cache miss, simulation vs model (eq. 8)";
  let params = { Params.baseline with Params.long_delay = 200 } in
  (* Each benchmark's row needs two sims plus a characterization
     against the Figure 14 hierarchy. Every one of those is its own
     stealable pool task — three per benchmark, not one — so the
     slowest benchmark's characterization no longer serializes the two
     sims behind it, and the memo futures guarantee nothing is
     computed twice even where the warm list overlaps other
     exhibits. *)
  Context.parallel ctx
    (List.concat_map
       (fun name ->
         [
           (fun () ->
             ignore (Context.sim ctx ~variant:"fig14" ~config:Context.fig14_machine name));
           (fun () -> ignore (Context.sim ctx ~variant:"ideal" ~config:Context.ideal name));
           (fun () ->
             (* Model inputs for this hierarchy: profile with the
                Figure 14 cache so long misses and their grouping
                match. *)
             ignore
               (Context.characterization_for ctx ~tag:"fig14"
                  ~cache:Fom_cache.Hierarchy.fig14 ~params name));
         ])
       (Context.names ctx));
  let rows =
    List.filter_map
      (fun name ->
        let faulty = Context.sim ctx ~variant:"fig14" ~config:Context.fig14_machine name in
        let base = Context.sim ctx ~variant:"ideal" ~config:Context.ideal name in
        let events = faulty.Stats.long_data_misses in
        if events < 20 then None
        else
          let sim_penalty =
            float_of_int (faulty.Stats.cycles - base.Stats.cycles) /. float_of_int events
          in
          let _, _, inputs =
            Context.characterization_for ctx ~tag:"fig14" ~cache:Fom_cache.Hierarchy.fig14
              ~params name
          in
          let factor = Inputs.long_group_factor inputs in
          let iw = Cpi.characteristic params inputs in
          let rob_fill = Penalties.rob_fill_estimate iw params in
          let model = Penalties.dcache_long_miss ~rob_fill params ~group_factor:factor in
          let paper_model = Penalties.dcache_long_miss params ~group_factor:factor in
          Some
            [
              name;
              Table.float_cell ~decimals:1 sim_penalty;
              Table.float_cell ~decimals:1 model;
              Table.float_cell ~decimals:1 paper_model;
              Table.float_cell ~decimals:2 factor;
            ])
      (Context.names ctx)
  in
  Context.table ctx ~name:"fig14"
    ~header:[ "benchmark"; "simulation"; "model"; "model (paper eq.8)"; "group factor" ]
    rows;
  Context.note "Benchmarks with too few long misses on the 128K L1D are omitted."
