(* The reproduction harness: regenerates every data-bearing table and
   figure of Karkhanis & Smith, "A First-Order Superscalar Processor
   Model" (ISCA 2004), plus the ablation benches from DESIGN.md and a
   Bechamel timing suite.

   Usage: dune exec bench/main.exe -- [--quick] [--scale X]
          [--only table1,fig15,...] [--list] [--no-timing]
          [--jobs N] [--json PATH] [--git-rev REV] [--csv DIR]
          [--cache-dir DIR]

   Exhibits run on a shared Fom_exec.Pool work-stealing domain pool
   (--jobs, default FOM_JOBS or the machine's core count); --jobs 1
   reproduces the parallel harness byte-for-byte. --cache-dir persists
   sims and characterizations across runs (content-digest keys; see
   Fom_exec.Cache), so a rerun that changed nothing recomputes
   nothing. --json records the machine-readable timing baseline
   (schema fom-bench/1, see README); when the pool has more than one
   worker the harness re-times each exhibit back-to-back on a
   single-worker context — quietly, with its own in-process memos and
   *without* the disk cache — so the file carries measured speedups,
   not estimates, and flags any exhibit that parallelism made slower
   (speedup < 1 above the noise floor) instead of silently recording a
   regression. *)

let exhibits : (string * string * (Context.t -> unit)) list =
  [
    ("table1", "power-law parameters and average latency", Exhibits_iw.table1);
    ("fig2", "independence of miss-event penalties", Exhibits_events.fig2);
    ("fig4", "IW curves, all benchmarks", Exhibits_iw.fig4);
    ("fig5", "linear IW fits (gzip, vortex, vpr)", Exhibits_iw.fig5);
    ("fig6", "IW characteristic with limited issue width", Exhibits_iw.fig6);
    ("fig8", "isolated branch misprediction transient", Exhibits_iw.fig8);
    ("fig9", "penalty per branch misprediction", Exhibits_events.fig9);
    ("fig11", "penalty per I-cache miss", Exhibits_events.fig11);
    ("fig14", "penalty per long D-cache miss", Exhibits_events.fig14);
    ("fig15", "model vs simulation CPI", Exhibits_overall.fig15);
    ("fig16", "CPI stack", Exhibits_overall.fig16);
    ("fig17a", "IPC vs pipeline depth", Exhibits_trends.fig17a);
    ("fig17b", "BIPS vs pipeline depth, optimal depths", Exhibits_trends.fig17b);
    ("fig18", "mispredict distance vs issue width", Exhibits_trends.fig18);
    ("fig19", "issue ramp between mispredictions", Exhibits_trends.fig19);
    ("fig19-sim", "measured vs analytic issue ramp", Exhibits_trends.fig19_sim);
    ("ext-tlb", "data-TLB extension, model vs sim", Exhibits_extensions.tlb);
    ("ext-fu", "limited functional units extension", Exhibits_extensions.fu_limits);
    ("ext-buffer", "fetch-buffer extension", Exhibits_extensions.fetch_buffer);
    ("ext-cluster", "partitioned issue windows extension", Exhibits_extensions.clustering);
    ("ext-phases", "program phases extension", Exhibits_extensions.phases);
    ("ablation-model", "model variant errors", Exhibits_ablation.model_variants);
    ("ablation-fit", "power-law fit vs window range", Exhibits_ablation.fit_windows);
    ("ablation-little", "Little's-law accuracy", Exhibits_ablation.littles_law);
  ]

let exhibit_names = List.map (fun (name, _, _) -> name) exhibits

type options = {
  mutable scale : float;
  mutable only : string list option;
  mutable list_only : bool;
  mutable timing : bool;
  mutable csv_dir : string option;
  mutable cache_dir : string option;
  mutable jobs : int option;
  mutable json : string option;
  mutable baseline : string option;
  mutable git_rev : string;
  mutable metrics : bool;
  mutable trace_out : string option;
}

let parse_args () =
  let options =
    {
      scale = 1.0;
      only = None;
      list_only = false;
      timing = true;
      csv_dir = None;
      cache_dir = None;
      jobs = None;
      json = None;
      baseline = None;
      git_rev = Option.value (Sys.getenv_opt "FOM_GIT_REV") ~default:"unknown";
      metrics = false;
      trace_out = None;
    }
  in
  let split s = String.split_on_char ',' s |> List.map String.trim in
  let spec =
    [
      ("--quick", Arg.Unit (fun () -> options.scale <- 0.2), " run at 20% scale");
      ("--scale", Arg.Float (fun x -> options.scale <- x), "X instruction-count scale factor");
      ( "--only",
        Arg.String (fun s -> options.only <- Some (split s)),
        "LIST comma-separated exhibit names" );
      ("--list", Arg.Unit (fun () -> options.list_only <- true), " list exhibits and exit");
      ("--no-timing", Arg.Unit (fun () -> options.timing <- false), " skip the Bechamel suite");
      ( "--csv",
        Arg.String (fun dir -> options.csv_dir <- Some dir),
        "DIR also write each exhibit's tables as CSV files" );
      ( "--cache-dir",
        Arg.String (fun dir -> options.cache_dir <- Some dir),
        "DIR persist sims and characterizations across runs, keyed by a content digest \
         of the workload + machine configuration, instruction counts and code version \
         (corrupt or stale entries are recomputed with a FOM-E warning)" );
      ( "--jobs",
        Arg.Int (fun j -> options.jobs <- Some j),
        "N worker domains (default: FOM_JOBS or the core count); 1 = sequential" );
      ( "--json",
        Arg.String (fun path -> options.json <- Some path),
        "PATH write the machine-readable timing baseline (schema fom-bench/1)" );
      ( "--baseline",
        Arg.String (fun path -> options.baseline <- Some path),
        "PATH gate wall times against a committed fom-bench/1 baseline (fail beyond 2x)" );
      ( "--git-rev",
        Arg.String (fun rev -> options.git_rev <- rev),
        "REV revision recorded in the JSON baseline (default: $FOM_GIT_REV or \"unknown\")" );
      ( "--metrics",
        Arg.Unit (fun () -> options.metrics <- true),
        " print an observability metrics table after the run (and record a \"metrics\" \
         block in --json); exhibit output is unchanged" );
      ( "--trace-out",
        Arg.String (fun path -> options.trace_out <- Some path),
        "PATH write a Chrome trace-event JSON of the run (load in Perfetto or \
         chrome://tracing); exhibit output is unchanged" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "fom reproduction harness";
  options

(* Run [f] with stdout redirected to /dev/null — the JSON baseline's
   sequential replay re-prints every exhibit, and only the wall times
   are wanted. *)
let quietly f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

(* Run the selected exhibits against a fresh context, returning
   (name, wall seconds) per exhibit, the matching single-worker
   timings when [paired] is set, and the disk-cache hit/miss stats
   when --cache-dir was active.

   [paired] is the --json path on a parallel run: each exhibit is
   timed in [paired_rounds] alternating (parallel, single-worker)
   segments over independent replica contexts, and the reported
   parallel and sequential times are the min of each side. Two
   monolithic passes measurably do not compare like with like — the
   second pass's early exhibits absorb the major-GC debt of the first
   pass's dead context (hundreds of MB of packed traces and memoized
   results) and its late exhibits ride an oversized warm heap, skewing
   per-exhibit "speedups" tens of percent in both directions. Even
   back-to-back single timings jitter by tens of percent on a shared
   machine; interleaving replicas of each side and taking the min is
   the standard defence (the min of repeated wall times estimates the
   undisturbed cost, and alternation keeps slow-varying machine load
   from landing on one side only).

   Every replica keeps its own in-process memos (sharing across
   exhibits accumulates exactly as in a real run), only the primary
   context writes CSVs, and no replica sees the disk cache: the
   replica timings must stay true compute costs, or every speedup
   derived from them would be fiction. *)
let paired_rounds = 3

let run_pass ~jobs ?cache_dir ~paired ~csv_dir ~scale selected =
  let ctx = Context.create ?csv_dir ?cache_dir ~jobs ~scale () in
  (* Round 0's parallel segment is the primary context itself (None);
     every other slot is a fresh, quiet, cache-free replica. *)
  let rounds =
    if paired then
      List.init paired_rounds (fun i ->
          ( (if i = 0 then None else Some (Context.create ~jobs ~scale ())),
            Context.create ~jobs:1 ~scale () ))
    else []
  in
  Fun.protect
    ~finally:(fun () ->
      Context.shutdown ctx;
      List.iter
        (fun (par, seq) ->
          Option.iter Context.shutdown par;
          Context.shutdown seq)
        rounds)
    (fun () ->
      (* When paired, collect the previous segment's garbage *outside*
         the timed window: otherwise each segment's wall time includes
         major-GC work for allocations another context made. *)
      let time_segment run =
        if paired then Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        run ();
        Unix.gettimeofday () -. t0
      in
      let timed, sequential =
        List.fold_left
          (fun (timed, sequential) (name, _, run) ->
            (* Only the primary pass is traced: replica re-timings would
               double every span and skew the per-exhibit picture. *)
            let traced () = Fom_obs.Span.with_ (Fom_obs.Span.id name) (fun () -> run ctx) in
            let dt = time_segment traced in
            Printf.printf "[%s done in %.1fs]\n%!" name dt;
            match rounds with
            | [] -> ((name, dt) :: timed, sequential)
            | rounds ->
                let quiet c = time_segment (fun () -> quietly (fun () -> run c)) in
                let par_times, seq_times =
                  List.fold_left
                    (fun (ps, ss) (par, seq) ->
                      let p =
                        match par with None -> dt | Some c -> quiet c
                      in
                      (p :: ps, quiet seq :: ss))
                    ([], []) rounds
                in
                let best = List.fold_left Float.min infinity in
                ( (name, best par_times) :: timed,
                  (name, best seq_times) :: sequential ))
          ([], []) selected
      in
      List.iter
        (fun d -> prerr_endline (Fom_check.Diagnostic.to_string d))
        (Context.disk_diagnostics ctx);
      (match Context.disk_stats ctx with
      | Some (hits, misses) ->
          Printf.printf "[cache] %d hits, %d misses in %s\n%!" hits misses
            (Option.value cache_dir ~default:"")
      | None -> ());
      (List.rev timed, List.rev sequential, Context.disk_stats ctx))

(* The CI regression gate: every measured exhibit that also appears in
   the committed baseline must stay within 2x of the baseline's
   sequential wall time, after normalizing both sides by their scale
   factor (wall time is linear in the instruction counts, which all
   scale together). Exhibits whose normalized baseline is under 50ms
   are reported but never gated: at that magnitude the ratio measures
   timer noise, not code. The measured pass should itself run
   sequentially (--jobs 1) for the comparison to be strict; a parallel
   pass only makes the gate more permissive. Returns the regressed
   exhibits. *)
let baseline_gate_floor = 0.05

let baseline_regressions ~scale ~timed path =
  let module J = Fom_util.Json in
  let doc = J.of_file ~path in
  let base_scale =
    match Option.bind (J.member "scale" doc) J.number with
    | Some s when s > 0.0 -> s
    | Some _ | None -> 1.0
  in
  let baseline_seconds name =
    match J.member "exhibits" doc with
    | Some (J.List items) ->
        List.find_map
          (fun item ->
            match J.member "name" item with
            | Some (J.String n) when String.equal n name -> (
                match J.member "seconds_jobs1" item with
                | Some v -> J.number v
                | None -> Option.bind (J.member "seconds" item) J.number)
            | Some _ | None -> None)
          items
    | Some _ | None -> None
  in
  List.filter_map
    (fun (name, seconds) ->
      match baseline_seconds name with
      | Some base when base > 0.0 ->
          let ratio = seconds /. scale /. (base /. base_scale) in
          let gated = base /. base_scale >= baseline_gate_floor in
          Printf.printf
            "baseline gate: %-12s %.2fs at scale %.2f vs %.2fs at scale %.2f (%.2fx%s)\n" name
            seconds scale base base_scale ratio
            (if gated then "" else ", below the gate floor");
          if gated && ratio > 2.0 then Some (name, ratio) else None
      | Some _ | None -> None)
    timed

let json_report ~options ~jobs ~timed ~sequential ~cache_stats ~total_seconds =
  let module J = Fom_util.Json in
  let exhibit (name, seconds) =
    let base =
      [ ("name", J.String name); ("seconds", J.Float seconds) ]
    in
    let speedup =
      match List.assoc_opt name sequential with
      | Some seq when seconds > 0.0 ->
          [
            ("seconds_jobs1", J.Float seq);
            ("speedup_vs_jobs1", J.Float (seq /. seconds));
            (* Fraction of the advertised workers actually converted
               into speedup: 1.0 is perfect scaling, below 1/jobs is a
               parallel regression (also flagged by a warning line). *)
            ("parallel_efficiency", J.Float (seq /. seconds /. float_of_int jobs));
          ]
      | Some seq -> [ ("seconds_jobs1", J.Float seq) ]
      | None -> []
    in
    J.Obj (base @ speedup)
  in
  let cache =
    match cache_stats with
    | Some (hits, misses) ->
        (* A warm disk cache means the timed pass measured lookups,
           not kernels; consumers comparing wall times should check
           this field. *)
        [ ("cache_hits", J.Int hits); ("cache_misses", J.Int misses) ]
    | None -> []
  in
  (* Optional "metrics" block (schema documented in README): present
     only when an observability sink was enabled for the run. *)
  let metrics =
    if Fom_obs.Sink.enabled () then [ ("metrics", Fom_obs.Export.metrics_json ()) ] else []
  in
  J.Obj
    ([
       ("schema", J.String "fom-bench/1");
       ("git_rev", J.String options.git_rev);
       ("scale", J.Float options.scale);
       ("jobs", J.Int jobs);
       ("recommended_domains", J.Int (Domain.recommended_domain_count ()));
     ]
    @ cache
    @ [
        ("exhibits", J.List (List.map exhibit timed));
        ("total_seconds", J.Float total_seconds);
      ]
    @ metrics)

(* The honest-speedup report: every exhibit whose sequential time is
   above the noise floor and that the parallel pass made *slower* gets
   a warning line — a regression must be visible, not a JSON field
   someone might read. Two noise guards: the absolute floor (below it
   the ratio measures the timer), and a 5% jitter band (back-to-back
   timings of identical work routinely differ by a few percent even on
   an idle machine). Suppressed when the timed pass ran against a warm
   disk cache (the ratio then measures lookups, not the scheduler). *)
let jitter_band = 0.95

let parallel_regressions ~scale ~timed ~sequential =
  List.filter_map
    (fun (name, seconds) ->
      match List.assoc_opt name sequential with
      | Some seq
        when seconds > 0.0
             && seq /. scale >= baseline_gate_floor
             && seq /. seconds < jitter_band ->
          Some (name, seq, seconds)
      | Some _ | None -> None)
    timed

let () =
  let options = parse_args () in
  if options.list_only then
    List.iter (fun (name, descr, _) -> Printf.printf "%-16s %s\n" name descr) exhibits
  else begin
    let selected =
      match options.only with
      | None -> exhibits
      | Some names ->
          List.iter
            (fun n ->
              if not (List.mem n exhibit_names) then begin
                Printf.eprintf "unknown exhibit %S; valid names are: %s\n" n
                  (String.concat ", " exhibit_names);
                exit 2
              end)
            names;
          List.filter (fun (name, _, _) -> List.mem name names) exhibits
    in
    let jobs, jobs_diags = Fom_exec.Pool.resolve_jobs ?requested:options.jobs () in
    List.iter (fun d -> prerr_endline (Fom_check.Diagnostic.to_string d)) jobs_diags;
    if List.exists Fom_check.Diagnostic.is_error jobs_diags then exit 2;
    if options.metrics || options.trace_out <> None then Fom_obs.Sink.enable ();
    Printf.printf
      "First-order superscalar model reproduction harness (scale %.2f, %d exhibits, %d jobs)\n"
      options.scale (List.length selected) jobs;
    let started = Unix.gettimeofday () in
    let timed, sequential, cache_stats =
      run_pass ~jobs ?cache_dir:options.cache_dir
        ~paired:(options.json <> None && jobs > 1)
        ~csv_dir:options.csv_dir ~scale:options.scale selected
    in
    if options.timing then Timing.run ();
    let total = Unix.gettimeofday () -. started in
    (match options.json with
    | None -> ()
    | Some path ->
        let cache_warm = match cache_stats with Some (hits, _) -> hits > 0 | None -> false in
        if cache_warm then
          Printf.eprintf
            "note: timed pass hit the disk cache; speedup_vs_jobs1 measures lookups, not \
             the scheduler\n"
        else
          List.iter
            (fun (name, seq, par) ->
              Printf.eprintf
                "WARNING: exhibit %s is slower in parallel (%.2fs at %d jobs vs %.2fs \
                 sequential, speedup %.2fx)\n"
                name par jobs seq (seq /. par))
            (parallel_regressions ~scale:options.scale ~timed ~sequential);
        Fom_util.Json.write_file ~path
          (json_report ~options ~jobs ~timed ~sequential ~cache_stats ~total_seconds:total);
        Printf.printf "wrote timing baseline to %s\n" path);
    Printf.printf "\nTotal harness time: %.1fs\n" total;
    (* Observability output comes after every exhibit line so the
       exhibit stdout stays byte-identical with the flags off. *)
    if options.metrics then begin
      print_newline ();
      print_string (Fom_util.Table.heading "Observability metrics");
      let header, rows = Fom_obs.Export.metrics_rows () in
      Fom_util.Table.print ~header rows
    end;
    (match options.trace_out with
    | None -> ()
    | Some path ->
        Fom_obs.Export.write_chrome_trace ~path;
        Printf.printf "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n" path);
    match options.baseline with
    | None -> ()
    | Some path -> (
        match baseline_regressions ~scale:options.scale ~timed path with
        | [] -> ()
        | regressions ->
            List.iter
              (fun (name, ratio) ->
                Printf.eprintf "FAIL: exhibit %s regressed to %.2fx of the baseline\n" name
                  ratio)
              regressions;
            exit 1)
  end
