(* Bechamel timing suite: the paper's implicit speed claim is that the
   analytical model is orders of magnitude faster than detailed
   simulation. One Test.make per reproduced exhibit family, timing the
   computation that regenerates it (at reduced scale). *)

open Bechamel
open Toolkit

let make_tests () =
  let program = Fom_trace.Program.generate (Fom_workloads.Spec2000.find "gzip") in
  let params = Fom_model.Params.baseline in
  let inputs = Fom_analysis.Characterize.inputs ~iw_instructions:2000 ~params program ~n:5000 in
  let square = Fom_model.Iw_characteristic.make ~alpha:1.0 ~beta:0.5 ~issue_width:4.0 () in
  [
    (* Table 1 / Figures 4-6: one IW-curve point (reference kernel,
       packing included). *)
    Test.make ~name:"iw-sim point (w=32, 2k instrs)"
      (Staged.stage (fun () -> Fom_analysis.Iw_sim.ipc program ~window:32 ~n:2000));
    (* Packed-trace construction alone: one pass over the stream into
       the structure-of-arrays columns. *)
    Test.make ~name:"packed build (10k instrs)"
      (Staged.stage (fun () ->
           ignore
             (Fom_trace.Packed.of_source (Fom_trace.Source.of_program program) ~n:10_000)));
    (* The event-driven IW kernel over a pre-built packing — the inner
       loop of every window sweep. *)
    Test.make ~name:"iw event kernel (w=32, 2k instrs)"
      (Staged.stage
         (let packed =
            Fom_trace.Packed.of_source (Fom_trace.Source.of_program program) ~n:2100
          in
          fun () -> ignore (Fom_analysis.Iw_sim.ipc_of_packed packed ~window:32 ~n:2000)));
    (* Figure 8: the analytic transient. *)
    Test.make ~name:"transient drain+ramp"
      (Staged.stage (fun () ->
           ignore (Fom_model.Transient.drain square ~window:48);
           Fom_model.Transient.ramp_up square ~window:48));
    (* Figures 15-16: a full model evaluation (given inputs). *)
    Test.make ~name:"model evaluate"
      (Staged.stage (fun () -> Fom_model.Cpi.evaluate params inputs));
    (* Figures 2, 9, 11, 14: detailed simulation, per 1k instructions. *)
    Test.make ~name:"detailed sim (1k instrs)"
      (Staged.stage
         (let stream = Fom_trace.Stream.create program in
          let machine =
            Fom_uarch.Machine.create Fom_uarch.Config.baseline (fun () ->
                Fom_trace.Stream.next stream)
          in
          fun () -> ignore (Fom_uarch.Machine.run machine ~n:1000)));
    (* Input pipeline: functional profiling, per 1k instructions. *)
    Test.make ~name:"functional profile (1k instrs)"
      (Staged.stage (fun () -> ignore (Fom_analysis.Profile.run program ~n:1000)));
    (* Figure 17: one trend row. *)
    Test.make ~name:"trends fig17 row"
      (Staged.stage (fun () ->
           Fom_model.Trends.ipc_vs_depth ~widths:[ 4 ] ~depths:[ 5; 20; 50 ] ()));
    (* Trace generation, per 1k instructions. *)
    Test.make ~name:"trace generation (1k instrs)"
      (Staged.stage
         (let stream = Fom_trace.Stream.create program in
          fun () ->
            for _ = 1 to 1000 do
              ignore (Fom_trace.Stream.next stream)
            done));
    (* Pool overhead: scheduling 64 no-op tasks bounds what the domain
       pool charges on top of the useful work it distributes. *)
    Test.make ~name:"exec pool map (64 no-op tasks)"
      (Staged.stage
         (let pool = Fom_exec.Pool.create () in
          let tasks = List.init 64 (fun i -> i) in
          fun () -> ignore (Fom_exec.Pool.map pool ~f:(fun x -> x) tasks)));
    (* Steal throughput: 512 tiny tasks through the per-worker deques
       bounds the scheduler's own cost per task (push, pop/steal,
       result delivery) when the work itself is negligible. *)
    Test.make ~name:"exec steal throughput (512 tiny tasks)"
      (Staged.stage
         (let pool = Fom_exec.Pool.create () in
          let tasks = List.init 512 (fun i -> i) in
          fun () -> ignore (Fom_exec.Pool.map pool ~f:(fun x -> (x * 31) + 7) tasks)));
    (* Memo contention: 64 demands of one already-computed key bound
       the per-lookup cost of the future cells on the harness's hot
       path (every exhibit row re-demands its sims through the memo). *)
    Test.make ~name:"exec memo lookup (64 demands, 1 key)"
      (Staged.stage
         (let pool = Fom_exec.Pool.create () in
          let memo = Fom_exec.Memo.create ~pool () in
          let demands = List.init 64 (fun i -> i) in
          fun () ->
            ignore
              (Fom_exec.Pool.map pool
                 ~f:(fun _ -> Fom_exec.Memo.get memo "key" (fun () -> 42))
                 demands)));
    (* Observability overhead with the sink in whatever state the
       harness left it (disabled unless --metrics/--trace-out): bounds
       what a span site and a counter site charge the instrumented hot
       paths. Disabled, both should measure as one atomic load and a
       branch. *)
    Test.make ~name:"obs span site (sink as-is)"
      (Staged.stage
         (let s = Fom_obs.Span.id "bench.overhead" in
          fun () ->
            for _ = 1 to 100 do
              Fom_obs.Span.with_ s ignore
            done));
    Test.make ~name:"obs counter site (sink as-is)"
      (Staged.stage
         (let c = Fom_obs.Metrics.counter "bench.overhead_ticks" in
          fun () ->
            for _ = 1 to 100 do
              Fom_obs.Metrics.incr c
            done));
  ]

let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
let instances = Instance.[ monotonic_clock ]

let run () =
  Context.heading "Timing: model vs simulation cost (Bechamel)";
  let tests = Test.make_grouped ~name:"fom" ~fmt:"%s %s" (make_tests ()) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  List.iter (fun v -> Bechamel_notty.Unit.add v (Measure.unit v)) instances;
  let window = { Bechamel_notty.w = 100; h = 1 } in
  let image =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results
  in
  Notty_unix.output_image image;
  print_newline ()
