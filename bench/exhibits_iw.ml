(* Table 1 and Figures 4, 5, 6, 8: the IW characteristic. *)

module Table = Fom_util.Table
module Fit = Fom_util.Fit
module Iw_curve = Fom_analysis.Iw_curve
module Iw = Fom_model.Iw_characteristic
module Transient = Fom_model.Transient

let log2 x = Float.log x /. Float.log 2.0

(* Table 1: power-law parameters and average latency. The paper lists
   gzip (1.3 / 0.5 / 1.5), vortex (1.2 / 0.7 / 1.6) and vpr
   (1.7 / 0.3 / 2.2); all twelve are printed, the paper's three
   first. *)
let table1 ctx =
  Context.warm_characterizations ctx (Context.names ctx);
  Context.heading "Table 1: Power-law parameters (alpha, beta) and average latency";
  Context.note
    "Paper values for its SPECint binaries: gzip 1.3/0.5/1.5, vortex 1.2/0.7/1.6, vpr 1.7/0.3/2.2.";
  let ordered =
    [ "gzip"; "vortex"; "vpr" ]
    @ List.filter (fun n -> not (List.mem n [ "gzip"; "vortex"; "vpr" ])) (Context.names ctx)
  in
  let rows =
    List.map
      (fun name ->
        let curve, _, inputs = Context.characterization ctx name in
        [
          name;
          Table.float_cell ~decimals:2 (Iw_curve.alpha curve);
          Table.float_cell ~decimals:2 (Iw_curve.beta curve);
          Table.float_cell ~decimals:2 inputs.Fom_model.Inputs.avg_latency;
          Table.float_cell ~decimals:3 curve.Iw_curve.fit.Fit.r2;
        ])
      ordered
  in
  Context.table ctx ~name:"table1" ~header:[ "benchmark"; "alpha"; "beta"; "avg latency"; "fit r2" ] rows

(* Figure 4: log-log IW curves for all benchmarks, unit latency,
   unbounded issue. *)
let fig4 ctx =
  Context.warm_characterizations ctx (Context.names ctx);
  Context.heading "Figure 4: IW curves, log2(issue rate) vs log2(window), unit latency";
  let curves = List.map (fun name -> (name, let c, _, _ = Context.characterization ctx name in c)) (Context.names ctx) in
  let windows = Iw_curve.default_windows in
  let header = "log2(W)" :: List.map fst curves in
  let rows =
    List.map
      (fun w ->
        Table.float_cell ~decimals:0 (log2 (float_of_int w))
        :: List.map
             (fun (_, curve) ->
               let point = List.find (fun p -> p.Iw_curve.window = w) curve.Iw_curve.points in
               Table.float_cell ~decimals:2 (log2 point.Iw_curve.ipc))
             curves)
      windows
  in
  Context.table ctx ~name:"fig4" ~header rows

(* Figure 5: the linear fits on log-log axes for the paper's three
   illustrative benchmarks, measured points next to the fit line. *)
let fig5 ctx =
  Context.warm_characterizations ctx [ "gzip"; "vortex"; "vpr" ];
  Context.heading "Figure 5: linear IW fits for gzip, vortex, vpr (log2 scale)";
  List.iter
    (fun name ->
      let curve, _, _ = Context.characterization ctx name in
      let fit = curve.Iw_curve.fit in
      Context.note "%s: log2(I) = %.2f * log2(W) + %.2f   (r2 %.3f)" name fit.Fit.beta
        (log2 fit.Fit.alpha) fit.Fit.r2;
      let rows =
        List.map
          (fun p ->
            let w = float_of_int p.Iw_curve.window in
            [
              Table.float_cell ~decimals:0 (log2 w);
              Table.float_cell ~decimals:2 (log2 p.Iw_curve.ipc);
              Table.float_cell ~decimals:2 (log2 (Fit.eval_power_law fit w));
            ])
          curve.Iw_curve.points
      in
      Context.table ctx ~name:("fig5-" ^ name) ~header:[ "log2(W)"; "measured"; "fit" ] rows)
    [ "gzip"; "vortex"; "vpr" ]

(* Figure 6: limiting the issue width makes the curves saturate. *)
let fig6 ctx =
  Context.heading "Figure 6: IW characteristic with limited issue width (gcc)";
  let program = Context.program ctx "gcc" in
  let windows = Iw_curve.default_windows in
  let limits = [ None; Some 8; Some 4; Some 2 ] in
  let label = function None -> "unlimited" | Some k -> Printf.sprintf "width %d" k in
  (* All limit x window points are independent idealized simulations:
     one pool task each, results folded back in deterministic order. *)
  let tasks = List.concat_map (fun l -> List.map (fun w -> (l, w)) windows) limits in
  let ipcs =
    Fom_exec.Pool.map (Context.pool ctx)
      ~f:(fun (issue_limit, window) ->
        Fom_analysis.Iw_sim.ipc ?issue_limit program ~window ~n:ctx.Context.n_iw)
      tasks
  in
  let per_limit = List.length windows in
  let curves =
    List.mapi
      (fun i issue_limit ->
        (label issue_limit, List.filteri (fun k _ -> k / per_limit = i) ipcs))
      limits
  in
  let header = "window" :: List.map fst curves in
  let rows =
    List.mapi
      (fun i w ->
        string_of_int w
        :: List.map (fun (_, ipcs) -> Table.float_cell ~decimals:2 (List.nth ipcs i)) curves)
      windows
  in
  Context.table ctx ~name:"fig6" ~header rows;
  Context.note "The limited curves follow the unlimited one, then saturate at the width."

(* Figure 8: the isolated branch-misprediction transient on the
   square-law characteristic (alpha 1, beta 0.5, width 4, 5-stage
   front end). Paper: drain 2.1, ramp-up 2.7, fill 4.9, total 9.7. *)
let fig8 ctx =
  Context.heading "Figure 8: isolated branch misprediction transient (alpha=1, beta=0.5)";
  let iw = Iw.make ~alpha:1.0 ~beta:0.5 ~issue_width:4.0 () in
  let drain = Transient.drain iw ~window:48 in
  let ramp = Transient.ramp_up iw ~window:48 in
  let depth = 5.0 in
  Context.note "drain penalty    %5.2f cycles  (paper: 2.1)" drain.Transient.penalty;
  Context.note "pipeline refill  %5.2f cycles  (paper: 4.9)" depth;
  Context.note "ramp-up penalty  %5.2f cycles  (paper: 2.7)" ramp.Transient.penalty;
  Context.note "total isolated   %5.2f cycles  (paper: 9.7)"
    (drain.Transient.penalty +. depth +. ramp.Transient.penalty);
  let interval = Transient.interval iw ~window:48 ~pipeline_depth:5 ~instructions:100 in
  let rows =
    Array.to_list
      (Array.mapi
         (fun cycle rate -> [ string_of_int cycle; Table.float_cell ~decimals:2 rate ])
         interval.Transient.issue_per_cycle)
  in
  Context.note "issue rate per cycle across the transient:";
  Context.table ctx ~name:"fig8" ~header:[ "cycle"; "issued" ] rows
