(* Source lint for the fom libraries.

   Scans .ml files for constructs banned from library code and reports
   them as FOM-L diagnostics:

     FOM-L001  assert       input validation must go through Fom_check
     FOM-L002  failwith     errors must be structured diagnostics
     FOM-L003  exit         libraries must not terminate the process
     FOM-L004  List.hd / List.tl / Option.get   partial stdlib calls
     FOM-L005  .ml file without a corresponding .mli

   An allowlist file grants sanctioned exceptions, one per line:

     <relative-path> <construct>     # rationale

   where <construct> is the banned token (e.g. [assert]). Unused
   allowlist entries are reported as warnings so the list cannot rot.
   Exit status is 1 if any non-allowlisted finding remains. *)

let usage () =
  prerr_endline "usage: lint --allowlist FILE DIR...";
  exit 2

type finding = { file : string; line : int; code : string; construct : string; text : string }

(* --- comment / string stripping ------------------------------------- *)

(* Replace comment and string-literal bodies with spaces so token
   scanning never fires inside them; newlines are preserved, keeping
   line numbers accurate. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let comment_depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !comment_depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        incr comment_depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr comment_depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      comment_depth := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '"' then begin
      (* String literal: skip to the unescaped closing quote. *)
      blank !i;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match src.[!i] with
        | '\\' when !i + 1 < n ->
            blank !i;
            blank (!i + 1);
            i := !i + 1
        | '"' -> closed := true
        | _ -> blank !i);
        incr i
      done
    end
    else if c = '\'' && !i + 2 < n && (src.[!i + 1] = '\\' || src.[!i + 2] = '\'') then begin
      (* Character literal (covers '"' and '\\'' which would otherwise
         derail string stripping); type variables like 'a have no
         closing quote and fall through untouched. *)
      let j = if src.[!i + 1] = '\\' then !i + 3 else !i + 2 in
      let j = Stdlib.min j (n - 1) in
      for k = !i to j do
        blank k
      done;
      i := j + 1
    end
    else incr i
  done;
  Bytes.to_string out

(* --- token scan ------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

(* [find_token line tok] finds [tok] in [line] at identifier
   boundaries; a leading '.' also disqualifies (a module-qualified name
   like [X.exit] is that module's function, not Stdlib's). *)
let has_bare_token line tok =
  let n = String.length line and m = String.length tok in
  let rec search from =
    if from + m > n then false
    else
      match String.index_from_opt line from tok.[0] with
      | None -> false
      | Some k ->
          if
            k + m <= n
            && String.sub line k m = tok
            && (k = 0 || (not (is_ident_char line.[k - 1])) && line.[k - 1] <> '.')
            && (k + m = n || not (is_ident_char line.[k + m]))
          then true
          else search (k + 1)
  in
  search 0

(* Qualified calls keep their dot: [Option.get] must match exactly,
   but not [My_option.get]. *)
let has_qualified line tok =
  let n = String.length line and m = String.length tok in
  let rec search from =
    if from + m > n then false
    else
      match String.index_from_opt line from tok.[0] with
      | None -> false
      | Some k ->
          if
            k + m <= n
            && String.sub line k m = tok
            && (k = 0 || not (is_ident_char line.[k - 1] || line.[k - 1] = '.'))
            && (k + m = n || not (is_ident_char line.[k + m]))
          then true
          else search (k + 1)
  in
  search 0

let bare_bans = [ ("assert", "FOM-L001"); ("failwith", "FOM-L002"); ("exit", "FOM-L003") ]
let qualified_bans = [ "List.hd"; "List.tl"; "Option.get" ]

let scan_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let stripped = strip src in
  let raw_lines = Array.of_list (String.split_on_char '\n' src) in
  let findings = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let text = raw_lines.(idx) in
      List.iter
        (fun (tok, code) ->
          if has_bare_token line tok then
            findings := { file = path; line = lineno; code; construct = tok; text } :: !findings)
        bare_bans;
      List.iter
        (fun tok ->
          if has_qualified line tok then
            findings :=
              { file = path; line = lineno; code = "FOM-L004"; construct = tok; text }
              :: !findings)
        qualified_bans)
    (String.split_on_char '\n' stripped);
  List.rev !findings

(* --- filesystem walk ------------------------------------------------- *)

let rec walk dir acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then walk path acc
      else if Filename.check_suffix entry ".ml" then path :: acc
      else acc)
    acc
    (let entries = Sys.readdir dir in
     Array.sort compare entries;
     entries)

(* --- allowlist ------------------------------------------------------- *)

let load_allowlist path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       let line =
         match String.index_opt line '#' with
         | Some k -> String.sub line 0 k
         | None -> line
       in
       match
         String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
       with
       | [] -> ()
       | [ file; construct ] -> entries := (file, construct) :: !entries
       | _ ->
           Printf.eprintf "lint: malformed allowlist line %S in %s\n" line path;
           exit 2
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* --- main ------------------------------------------------------------ *)

let () =
  let allowlist_path = ref None in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allowlist" :: file :: rest ->
        allowlist_path := Some file;
        parse rest
    | "--allowlist" :: [] -> usage ()
    | dir :: rest ->
        roots := dir :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !roots = [] then usage ();
  let allowlist = match !allowlist_path with Some p -> load_allowlist p | None -> [] in
  let used = Array.make (List.length allowlist) false in
  let allowed file construct =
    let rec find k = function
      | [] -> false
      | (f, c) :: rest ->
          if f = file && c = construct then begin
            used.(k) <- true;
            true
          end
          else find (k + 1) rest
    in
    find 0 allowlist
  in
  let files = List.concat_map (fun root -> List.sort compare (walk root [])) (List.rev !roots) in
  let errors = ref 0 in
  List.iter
    (fun file ->
      if not (Sys.file_exists (file ^ "i")) then
        if allowed file "missing-mli" then ()
        else begin
          Printf.printf "error[FOM-L005] %s: no corresponding .mli interface\n" file;
          incr errors
        end;
      List.iter
        (fun f ->
          if not (allowed f.file f.construct) then begin
            Printf.printf "error[%s] %s:%d: banned construct %s\n  %s\n" f.code f.file f.line
              f.construct (String.trim f.text);
            incr errors
          end)
        (scan_file file))
    files;
  List.iteri
    (fun k (file, construct) ->
      if not used.(k) then
        Printf.printf "warning[FOM-L000] allowlist entry unused: %s %s\n" file construct)
    allowlist;
  if !errors > 0 then begin
    Printf.printf "%d lint error%s\n" !errors (if !errors = 1 then "" else "s");
    exit 1
  end
  else print_endline "lint: clean"
