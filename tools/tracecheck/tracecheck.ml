(* tracecheck: structural validator for the Chrome trace-event JSON the
   harness writes with --trace-out. CI runs it against the bench-smoke
   trace so a malformed export fails the build, not a Perfetto session
   a week later.

   Usage: tracecheck FILE [--require NAME]...

   Checks, using the repository's own Fom_util.Json parser:
   - the file parses and has a non-empty "traceEvents" array;
   - every event is an object with the expected name/ph/pid/tid/ts
     fields, and ph is one of B, E, M;
   - B/E events balance per tid (every end matches the innermost open
     begin of the same name; nothing is left open);
   - each --require NAME has at least one complete B/E pair. *)

module Json = Fom_util.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("tracecheck: " ^ m); exit 1) fmt

let str_field obj key =
  match Json.member key obj with
  | Some (Json.String s) -> s
  | Some _ | None -> fail "event is missing string field %S" key

let int_field obj key =
  match Json.member key obj with
  | Some (Json.Int i) -> i
  | Some _ | None -> fail "event is missing integer field %S" key

let () =
  let path = ref None in
  let required = ref [] in
  let rec parse = function
    | [] -> ()
    | "--require" :: name :: rest ->
        required := name :: !required;
        parse rest
    | "--require" :: [] -> fail "--require needs a span name"
    | arg :: rest ->
        (match !path with
        | None -> path := Some arg
        | Some _ -> fail "unexpected argument %S" arg);
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> fail "usage: tracecheck FILE [--require NAME]..." in
  let doc =
    match Json.of_file ~path with
    | doc -> doc
    | exception exn -> fail "%s does not parse: %s" path (Printexc.to_string exn)
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List events) -> events
    | Some _ -> fail "\"traceEvents\" is not an array"
    | None -> fail "no \"traceEvents\" field"
  in
  if events = [] then fail "empty traceEvents array";
  (* Per-tid stacks of open span names, and completed-span counts. *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let completed : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let durations = ref 0 in
  List.iter
    (fun ev ->
      let name = str_field ev "name" in
      match str_field ev "ph" with
      | "M" -> ()
      | "B" ->
          incr durations;
          (match Json.member "ts" ev with
          | Some (Json.Int _ | Json.Float _) -> ()
          | Some _ | None -> fail "B event %S has no numeric ts" name);
          let tid = int_field ev "tid" in
          let stack =
            match Hashtbl.find_opt stacks tid with
            | Some s -> s
            | None ->
                let s = ref [] in
                Hashtbl.add stacks tid s;
                s
          in
          stack := name :: !stack
      | "E" -> (
          let tid = int_field ev "tid" in
          match Hashtbl.find_opt stacks tid with
          | Some ({ contents = top :: rest } as stack) ->
              if not (String.equal top name) then
                fail "tid %d: E %S closes open span %S" tid name top;
              stack := rest;
              Hashtbl.replace completed name
                (1 + Option.value (Hashtbl.find_opt completed name) ~default:0)
          | Some { contents = [] } | None -> fail "tid %d: E %S with no open span" tid name)
      | ph -> fail "event %S has unexpected ph %S" name ph)
    events;
  Hashtbl.iter
    (fun tid stack ->
      match !stack with
      | [] -> ()
      | open_spans -> fail "tid %d: %d span(s) left open (%s)" tid (List.length open_spans)
            (String.concat ", " open_spans))
    stacks;
  List.iter
    (fun name ->
      if Option.value (Hashtbl.find_opt completed name) ~default:0 = 0 then
        fail "no complete span named %S" name)
    !required;
  Printf.printf "tracecheck: %s ok (%d events, %d spans, %d threads)\n" path
    (List.length events) !durations (Hashtbl.length stacks)
