(* Tests for phased workloads and per-phase model composition. *)

module Phases = Fom_trace.Phases
module Source = Fom_trace.Source
module Instr = Fom_isa.Instr
module Cpi = Fom_model.Cpi
module Phased = Fom_model.Phased

let schedule =
  [
    { Phases.config = Fom_workloads.Spec2000.find "gzip"; instructions = 3000 };
    { Phases.config = Fom_workloads.Spec2000.find "mcf"; instructions = 2000 };
  ]

let test_schedule_length () =
  Alcotest.(check int) "sum" 5000 (Phases.schedule_length schedule)

let test_indices_sequential_and_deps_valid () =
  let source = Phases.source schedule in
  let trace = Source.record source ~n:12000 in
  Array.iteri
    (fun i (ins : Instr.t) ->
      Alcotest.(check int) "sequential" i ins.Instr.index;
      Array.iter
        (fun d -> if not (d >= 0 && d < i) then Alcotest.failf "dep %d at %d" d i)
        ins.Instr.deps)
    trace

let test_phases_switch_content () =
  (* The first phase is gzip (no chase region addresses); the second
     is mcf (which touches its 16 MiB chase region). Distinguish the
     phases by the address footprint of their loads. *)
  let source = Phases.source schedule in
  let trace = Source.record source ~n:5000 in
  let max_addr lo hi =
    Array.fold_left
      (fun acc (ins : Instr.t) ->
        if ins.Instr.index >= lo && ins.Instr.index < hi then
          match ins.Instr.mem with Some a -> max acc a | None -> acc
        else acc)
      0 trace
  in
  let gzip_phase = max_addr 0 3000 and mcf_phase = max_addr 3000 5000 in
  Alcotest.(check bool)
    (Printf.sprintf "mcf footprint (0x%x) larger than gzip's (0x%x)" mcf_phase gzip_phase)
    true
    (mcf_phase > gzip_phase)

let test_phases_deterministic () =
  let a = Source.record (Phases.source schedule) ~n:4000 in
  let b = Source.record (Phases.source schedule) ~n:4000 in
  Array.iteri
    (fun i (x : Instr.t) ->
      Alcotest.(check int) "same pc" x.Instr.pc b.(i).Instr.pc;
      Alcotest.(check bool) "same deps" true (x.Instr.deps = b.(i).Instr.deps))
    a

let test_phases_run_through_machine () =
  let source = Phases.source schedule in
  let stats = Fom_uarch.Simulate.run_source Fom_uarch.Config.baseline source ~n:10000 in
  Alcotest.(check bool) "sane cpi" true
    (Fom_uarch.Stats.cpi stats > 0.25 && Fom_uarch.Stats.cpi stats < 20.0)

let breakdown steady =
  { Cpi.steady; branch = 0.1; l1i = 0.0; l2i = 0.0; dcache = 0.5; dtlb = 0.0 }

let test_combine_weighted_mean () =
  let combined = Phased.combine [ (1.0, breakdown 0.2); (3.0, breakdown 0.6) ] in
  Alcotest.(check (float 1e-9)) "weighted steady" 0.5 combined.Cpi.steady;
  Alcotest.(check (float 1e-9)) "other fields pass through" 0.5 combined.Cpi.dcache

let test_combine_single_identity () =
  let b = breakdown 0.3 in
  let combined = Phased.combine [ (42.0, b) ] in
  Alcotest.(check (float 1e-9)) "identity" (Cpi.total b) (Cpi.total combined)

let suite =
  ( "phases",
    [
      Alcotest.test_case "schedule length" `Quick test_schedule_length;
      Alcotest.test_case "indices sequential, deps valid" `Quick
        test_indices_sequential_and_deps_valid;
      Alcotest.test_case "phases switch content" `Quick test_phases_switch_content;
      Alcotest.test_case "deterministic" `Quick test_phases_deterministic;
      Alcotest.test_case "runs through the machine" `Quick test_phases_run_through_machine;
      Alcotest.test_case "combine is a weighted mean" `Quick test_combine_weighted_mean;
      Alcotest.test_case "combine identity" `Quick test_combine_single_identity;
    ] )
