(* Tests for Fom_model: IW characteristic algebra, transient engine,
   penalty formulas, CPI composition, trend analyses. *)

module Iw = Fom_model.Iw_characteristic
module Transient = Fom_model.Transient
module Penalties = Fom_model.Penalties
module Params = Fom_model.Params
module Inputs = Fom_model.Inputs
module Cpi = Fom_model.Cpi
module Trends = Fom_model.Trends
module Distribution = Fom_util.Distribution

let square4 = Iw.make ~alpha:1.0 ~beta:0.5 ~issue_width:4.0 ()

let inputs_stub ?(mispred = 0.005) ?(l1i = 0.001) ?(l2i = 0.0002) ?(long = 0.002)
    ?(groups = Distribution.of_list [ (1, 10) ]) ?(alpha = 1.2) ?(beta = 0.6)
    ?(latency = 1.3) () =
  {
    Inputs.name = "stub";
    instructions = 100_000;
    alpha;
    beta;
    fit_r2 = 0.99;
    avg_latency = latency;
    mispredictions_per_instr = mispred;
    mispred_bursts = Distribution.of_list [ (1, 50) ];
    l1i_misses_per_instr = l1i;
    l2i_misses_per_instr = l2i;
    short_misses_per_instr = 0.01;
    long_misses_per_instr = long;
    long_miss_groups = groups;
    dtlb_misses_per_instr = 0.0;
    dtlb_groups = Distribution.create ();
  }

let test_issue_rate_power_law () =
  let iw = Iw.make ~alpha:1.0 ~beta:0.5 () in
  Alcotest.(check (float 1e-9)) "sqrt form" 4.0 (Iw.issue_rate iw 16.0);
  Alcotest.(check (float 1e-9)) "zero at zero" 0.0 (Iw.issue_rate iw 0.0)

let test_issue_rate_clipped_at_width () =
  Alcotest.(check (float 1e-9)) "clipped" 4.0 (Iw.issue_rate square4 100.0)

let test_issue_rate_clipped_at_occupancy () =
  let iw = Iw.make ~alpha:2.0 ~beta:0.9 () in
  Alcotest.(check bool) "never above occupancy" true (Iw.issue_rate iw 1.0 <= 1.0)

let test_littles_law () =
  (* Issue rate divides by the mean latency. *)
  let unit = Iw.make ~alpha:1.0 ~beta:0.5 () in
  let slow = Iw.make ~alpha:1.0 ~beta:0.5 ~avg_latency:2.0 () in
  Alcotest.(check (float 1e-9)) "halved" (Iw.issue_rate unit 16.0 /. 2.0)
    (Iw.issue_rate slow 16.0)

let test_occupancy_inverse () =
  let iw = Iw.make ~alpha:1.3 ~beta:0.55 ~avg_latency:1.4 () in
  let w = 37.0 in
  let rate = Iw.unclipped_rate iw w in
  Alcotest.(check (float 1e-6)) "roundtrip" w (Iw.occupancy_for_rate iw rate)

let test_steady_state () =
  (* Square law, width 4: saturates when sqrt(48) > 4, occupancy 16. *)
  Alcotest.(check (float 1e-9)) "ipc" 4.0 (Iw.steady_state_ipc square4 ~window:48);
  Alcotest.(check (float 1e-6)) "occupancy" 16.0 (Iw.steady_state_occupancy square4 ~window:48)

let test_steady_state_unsaturated () =
  let iw = Iw.make ~alpha:1.0 ~beta:0.3 ~avg_latency:2.2 ~issue_width:4.0 () in
  let ipc = Iw.steady_state_ipc iw ~window:48 in
  Alcotest.(check bool) "below width" true (ipc < 4.0);
  Alcotest.(check (float 1e-6)) "occupancy is full window" 48.0
    (Iw.steady_state_occupancy iw ~window:48)

let test_drain_matches_paper_figure8 () =
  (* Paper Figure 8: drain penalty about 2.1 cycles for the square law
     with width 4 and a five-stage front end. *)
  let d = Transient.drain square4 ~window:48 in
  Alcotest.(check bool)
    (Printf.sprintf "drain penalty %.2f in [1.5, 2.6]" d.Transient.penalty)
    true
    (d.Transient.penalty > 1.5 && d.Transient.penalty < 2.6)

let test_ramp_matches_paper_figure8 () =
  (* Paper Figure 8: ramp-up penalty about 2.7 cycles. *)
  let r = Transient.ramp_up square4 ~window:48 in
  Alcotest.(check bool)
    (Printf.sprintf "ramp penalty %.2f in [2.0, 4.0]" r.Transient.penalty)
    true
    (r.Transient.penalty > 2.0 && r.Transient.penalty < 4.0)

let test_transient_instructions_positive () =
  let d = Transient.drain square4 ~window:48 in
  Alcotest.(check bool) "drains instructions" true (d.Transient.instructions > 0.0);
  let r = Transient.ramp_up square4 ~window:48 in
  Alcotest.(check bool) "ramp issues instructions" true (r.Transient.instructions > 0.0)

let test_interval_ipc_approaches_steady () =
  let long_run = Transient.interval square4 ~window:48 ~pipeline_depth:5 ~instructions:100000 in
  Alcotest.(check (float 0.05)) "approaches width" 4.0 long_run.Transient.ipc

let test_interval_short_is_slow () =
  let short_run = Transient.interval square4 ~window:48 ~pipeline_depth:5 ~instructions:20 in
  Alcotest.(check bool) "well below steady" true (short_run.Transient.ipc < 2.5)

let test_branch_penalty_exceeds_depth () =
  (* Paper observation 1: the misprediction penalty exceeds the
     front-end depth. *)
  let penalty = Penalties.branch_misprediction square4 Params.baseline ~burst:1.0 in
  Alcotest.(check bool) "exceeds depth" true (penalty > 5.0);
  Alcotest.(check bool) "within 2x depth + slack" true (penalty < 12.0)

let test_branch_penalty_burst_reduces () =
  let isolated = Penalties.branch_misprediction square4 Params.baseline ~burst:1.0 in
  let bursty = Penalties.branch_misprediction square4 Params.baseline ~burst:4.0 in
  Alcotest.(check bool) "bursts cheaper" true (bursty < isolated);
  Alcotest.(check bool) "floor is the depth" true (bursty > 5.0)

let test_paper_constant_near_7_5 () =
  let penalty = Penalties.branch_misprediction_paper Params.baseline in
  Alcotest.(check bool)
    (Printf.sprintf "paper constant %.2f near 7.5" penalty)
    true
    (penalty > 6.5 && penalty < 8.5)

let test_icache_penalty_near_delay () =
  (* Paper observation 2: drain and ramp-up offset, penalty about the
     miss delay and independent of the front-end depth. *)
  let p5 = Penalties.icache_miss square4 Params.baseline ~delay:8 in
  Alcotest.(check bool) "near delay" true (Float.abs (p5 -. 8.0) < 2.5);
  let deep = { Params.baseline with Params.pipeline_depth = 9 } in
  let p9 = Penalties.icache_miss square4 deep ~delay:8 in
  Alcotest.(check (float 1e-9)) "independent of depth" p5 p9

let test_dcache_penalty_group_scaling () =
  (* Paper observation 3: an isolated long miss costs the miss delay;
     grouped misses share one penalty. *)
  let isolated = Penalties.dcache_long_miss Params.baseline ~group_factor:1.0 in
  Alcotest.(check (float 1e-9)) "isolated is delay" 200.0 isolated;
  let paired = Penalties.dcache_long_miss Params.baseline ~group_factor:0.5 in
  Alcotest.(check (float 1e-9)) "pair halves" 100.0 paired

let test_dcache_rob_fill () =
  let corrected = Penalties.dcache_long_miss ~rob_fill:30.0 Params.baseline ~group_factor:1.0 in
  Alcotest.(check (float 1e-9)) "subtracted" 170.0 corrected;
  let estimate = Penalties.rob_fill_estimate square4 Params.baseline in
  Alcotest.(check bool) "estimate positive and bounded" true
    (estimate > 0.0 && estimate < float_of_int Params.baseline.Params.rob_size)

let test_inputs_group_factor () =
  let single = inputs_stub ~groups:(Distribution.of_list [ (1, 10) ]) () in
  Alcotest.(check (float 1e-9)) "isolated" 1.0 (Inputs.long_group_factor single);
  (* 10 groups of 4: factor 1/4. *)
  let grouped = inputs_stub ~groups:(Distribution.of_list [ (4, 10) ]) () in
  Alcotest.(check (float 1e-9)) "quarter" 0.25 (Inputs.long_group_factor grouped);
  (* Mixed {1-group, 100-group}: groups/misses = 2/101. *)
  let mixed = inputs_stub ~groups:(Distribution.of_list [ (1, 1); (100, 1) ]) () in
  Alcotest.(check (float 1e-9)) "harmonic" (2.0 /. 101.0) (Inputs.long_group_factor mixed)

let test_inputs_empty_distributions () =
  let empty = inputs_stub ~groups:(Distribution.create ()) () in
  Alcotest.(check (float 1e-9)) "factor defaults to 1" 1.0 (Inputs.long_group_factor empty)

let test_cpi_composition () =
  let inputs = inputs_stub () in
  let b = Cpi.evaluate Params.baseline inputs in
  Alcotest.(check (float 1e-9)) "components add" (Cpi.total b)
    (b.Cpi.steady +. b.Cpi.branch +. b.Cpi.l1i +. b.Cpi.l2i +. b.Cpi.dcache);
  Alcotest.(check (float 1e-9)) "ipc inverse" 1.0 (Cpi.total b *. Cpi.ipc b);
  Alcotest.(check int) "stack has 6 parts" 6 (List.length (Cpi.stack b))

let test_cpi_monotone_in_rates () =
  let low = Cpi.evaluate Params.baseline (inputs_stub ~mispred:0.001 ()) in
  let high = Cpi.evaluate Params.baseline (inputs_stub ~mispred:0.01 ()) in
  Alcotest.(check bool) "more mispredictions cost more" true (Cpi.total high > Cpi.total low)

let test_cpi_zero_events_is_steady () =
  let clean =
    inputs_stub ~mispred:0.0 ~l1i:0.0 ~l2i:0.0 ~long:0.0 ~groups:(Distribution.create ()) ()
  in
  let b = Cpi.evaluate Params.baseline clean in
  Alcotest.(check (float 1e-9)) "only steady" b.Cpi.steady (Cpi.total b)

let test_cpi_modes_differ () =
  let inputs = inputs_stub () in
  let corrected = Cpi.evaluate ~dcache_mode:Cpi.Rob_fill_corrected Params.baseline inputs in
  let paper = Cpi.evaluate ~dcache_mode:Cpi.Paper_delay Params.baseline inputs in
  Alcotest.(check bool) "correction lowers dcache" true (corrected.Cpi.dcache <= paper.Cpi.dcache)

let test_trends_depth_erodes_width_advantage () =
  let rows = Trends.ipc_vs_depth ~widths:[ 2; 8 ] ~depths:[ 1; 80 ] () in
  let ipc w d = List.assoc d (List.assoc w rows) in
  let shallow_gain = ipc 8 1 /. ipc 2 1 in
  let deep_gain = ipc 8 80 /. ipc 2 80 in
  Alcotest.(check bool) "advantage shrinks with depth" true (deep_gain < shallow_gain)

let test_trends_optimal_depth_matches_paper () =
  (* Paper (and Sprangle & Carmean): optimum near 55 front-end stages
     for issue width 3; wider issue moves the optimum shorter. *)
  let depths = List.init 100 (fun i -> i + 1) in
  let rows = Trends.bips_vs_depth ~widths:[ 2; 3; 4; 8 ] ~depths () in
  let opt w = Trends.optimal_depth (List.assoc w rows) in
  let o3 = opt 3 in
  Alcotest.(check bool) (Printf.sprintf "width 3 optimum %d near 55" o3) true
    (o3 >= 45 && o3 <= 70);
  Alcotest.(check bool) "wider is shorter" true (opt 8 < opt 2)

let test_trends_quadratic_law () =
  (* Paper Figure 18: doubling the width quadruples the required
     distance between mispredictions. *)
  let n4 = Trends.mispred_distance_for_fraction ~width:4 ~fraction:0.3 () in
  let n8 = Trends.mispred_distance_for_fraction ~width:8 ~fraction:0.3 () in
  let ratio = float_of_int n8 /. float_of_int n4 in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f near 4" ratio) true
    (ratio > 3.0 && ratio < 5.0)

let test_trends_trajectory_shape () =
  (* Paper Figure 19: issue width 4 barely reaches 4; width 8 barely
     exceeds 6 with the 48-entry window. *)
  let max_of a = Array.fold_left Float.max 0.0 a in
  let t4 = max_of (Trends.issue_trajectory ~width:4 ()) in
  let t8 = max_of (Trends.issue_trajectory ~width:8 ()) in
  Alcotest.(check bool) "width 4 near 4" true (t4 > 3.5 && t4 <= 4.0);
  Alcotest.(check bool) "width 8 barely above 6" true (t8 > 5.5 && t8 < 7.2)

let test_trajectory_starts_with_fill () =
  let t = Trends.issue_trajectory ~width:4 () in
  Alcotest.(check (float 1e-9)) "dead fill cycle" 0.0 t.(0);
  Alcotest.(check (float 1e-9)) "five dead cycles" 0.0 t.(4)

let prop_steady_ipc_monotone_window =
  QCheck.Test.make ~name:"steady ipc monotone in window" ~count:100
    QCheck.(triple (float_range 0.5 2.0) (float_range 0.2 0.9) (int_range 4 128))
    (fun (alpha, beta, window) ->
      let iw = Iw.make ~alpha ~beta ~issue_width:8.0 () in
      Iw.steady_state_ipc iw ~window <= Iw.steady_state_ipc iw ~window:(window * 2) +. 1e-9)

let prop_branch_penalty_decreasing_in_burst =
  QCheck.Test.make ~name:"branch penalty decreases with burst size" ~count:50
    QCheck.(float_range 1.0 16.0)
    (fun burst ->
      let a = Penalties.branch_misprediction square4 Params.baseline ~burst in
      let b = Penalties.branch_misprediction square4 Params.baseline ~burst:(burst +. 1.0) in
      b <= a +. 1e-9)

let prop_icache_penalty_decreases_with_buffer =
  QCheck.Test.make ~name:"fetch buffer only reduces the icache penalty" ~count:50
    QCheck.(int_range 0 64)
    (fun buffer ->
      let params = { Params.baseline with Params.fetch_buffer = buffer } in
      let with_buffer = Penalties.icache_miss square4 params ~delay:8 in
      let without = Penalties.icache_miss square4 Params.baseline ~delay:8 in
      with_buffer <= without +. 1e-9 && with_buffer >= 0.0)

let prop_dcache_penalty_monotone =
  QCheck.Test.make ~name:"dcache penalty monotone in rob_fill and group factor" ~count:100
    QCheck.(pair (float_range 0.0 150.0) (float_range 0.1 1.0))
    (fun (rob_fill, group_factor) ->
      let p = Penalties.dcache_long_miss ~rob_fill Params.baseline ~group_factor in
      let p_more_fill =
        Penalties.dcache_long_miss ~rob_fill:(rob_fill +. 10.0) Params.baseline ~group_factor
      in
      let p_more_group =
        Penalties.dcache_long_miss ~rob_fill Params.baseline
          ~group_factor:(Float.min 1.0 (group_factor +. 0.1))
      in
      p_more_fill <= p +. 1e-9 && p_more_group >= p -. 1e-9)

let prop_interval_ipc_increases_with_length =
  QCheck.Test.make ~name:"longer mispredict intervals raise ipc" ~count:50
    QCheck.(int_range 10 2000)
    (fun n ->
      let short_run = Transient.interval square4 ~window:48 ~pipeline_depth:5 ~instructions:n in
      let long_run =
        Transient.interval square4 ~window:48 ~pipeline_depth:5 ~instructions:(2 * n)
      in
      long_run.Transient.ipc >= short_run.Transient.ipc -. 1e-6)

let prop_fu_saturation_monotone =
  QCheck.Test.make ~name:"adding units never lowers saturation" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (alu, load) ->
      let mix = function
        | Fom_isa.Opclass.Alu -> 0.5
        | Fom_isa.Opclass.Load -> 0.25
        | _ -> 0.05
      in
      let small = Fom_model.Fu_saturation.saturation_ipc (Fom_isa.Fu_set.make ~alu ~load ()) ~mix in
      let bigger =
        Fom_model.Fu_saturation.saturation_ipc
          (Fom_isa.Fu_set.make ~alu:(alu + 1) ~load:(load + 1) ())
          ~mix
      in
      bigger >= small -. 1e-9)

let prop_cpi_positive =
  QCheck.Test.make ~name:"cpi components are non-negative" ~count:50
    QCheck.(triple (float_range 0.0 0.02) (float_range 0.0 0.01) (float_range 0.0 0.05))
    (fun (mispred, l1i, long) ->
      let b = Cpi.evaluate Params.baseline (inputs_stub ~mispred ~l1i ~long ()) in
      b.Cpi.steady > 0.0 && b.Cpi.branch >= 0.0 && b.Cpi.l1i >= 0.0 && b.Cpi.dcache >= 0.0)

let suite =
  ( "model",
    [
      Alcotest.test_case "issue rate power law" `Quick test_issue_rate_power_law;
      Alcotest.test_case "issue rate clipped at width" `Quick test_issue_rate_clipped_at_width;
      Alcotest.test_case "issue rate clipped at occupancy" `Quick
        test_issue_rate_clipped_at_occupancy;
      Alcotest.test_case "little's law" `Quick test_littles_law;
      Alcotest.test_case "occupancy inverse" `Quick test_occupancy_inverse;
      Alcotest.test_case "steady state saturated" `Quick test_steady_state;
      Alcotest.test_case "steady state unsaturated" `Quick test_steady_state_unsaturated;
      Alcotest.test_case "drain matches paper fig 8" `Quick test_drain_matches_paper_figure8;
      Alcotest.test_case "ramp matches paper fig 8" `Quick test_ramp_matches_paper_figure8;
      Alcotest.test_case "transients issue instructions" `Quick
        test_transient_instructions_positive;
      Alcotest.test_case "interval approaches steady ipc" `Quick
        test_interval_ipc_approaches_steady;
      Alcotest.test_case "short interval is slow" `Quick test_interval_short_is_slow;
      Alcotest.test_case "branch penalty exceeds depth" `Quick test_branch_penalty_exceeds_depth;
      Alcotest.test_case "bursts reduce branch penalty" `Quick test_branch_penalty_burst_reduces;
      Alcotest.test_case "paper constant near 7.5" `Quick test_paper_constant_near_7_5;
      Alcotest.test_case "icache penalty near delay, depth-free" `Quick
        test_icache_penalty_near_delay;
      Alcotest.test_case "dcache group scaling" `Quick test_dcache_penalty_group_scaling;
      Alcotest.test_case "dcache rob fill" `Quick test_dcache_rob_fill;
      Alcotest.test_case "inputs group factor" `Quick test_inputs_group_factor;
      Alcotest.test_case "inputs empty distributions" `Quick test_inputs_empty_distributions;
      Alcotest.test_case "cpi composition" `Quick test_cpi_composition;
      Alcotest.test_case "cpi monotone in rates" `Quick test_cpi_monotone_in_rates;
      Alcotest.test_case "cpi zero events" `Quick test_cpi_zero_events_is_steady;
      Alcotest.test_case "cpi dcache modes" `Quick test_cpi_modes_differ;
      Alcotest.test_case "depth erodes width advantage" `Quick
        test_trends_depth_erodes_width_advantage;
      Alcotest.test_case "optimal depth matches paper" `Quick
        test_trends_optimal_depth_matches_paper;
      Alcotest.test_case "quadratic branch predictor law" `Quick test_trends_quadratic_law;
      Alcotest.test_case "trajectory shapes" `Quick test_trends_trajectory_shape;
      Alcotest.test_case "trajectory pipeline fill" `Quick test_trajectory_starts_with_fill;
      QCheck_alcotest.to_alcotest prop_steady_ipc_monotone_window;
      QCheck_alcotest.to_alcotest prop_branch_penalty_decreasing_in_burst;
      QCheck_alcotest.to_alcotest prop_icache_penalty_decreases_with_buffer;
      QCheck_alcotest.to_alcotest prop_dcache_penalty_monotone;
      QCheck_alcotest.to_alcotest prop_interval_ipc_increases_with_length;
      QCheck_alcotest.to_alcotest prop_fu_saturation_monotone;
      QCheck_alcotest.to_alcotest prop_cpi_positive;
    ] )
