test/suite_uarch.ml: Alcotest Fom_branch Fom_cache Fom_isa Fom_trace Fom_uarch Fom_workloads Lazy List Printf
