test/suite_phases.ml: Alcotest Array Fom_isa Fom_model Fom_trace Fom_uarch Fom_workloads Printf
