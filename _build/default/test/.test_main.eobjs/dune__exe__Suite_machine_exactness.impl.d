test/suite_machine_exactness.ml: Alcotest Fom_branch Fom_cache Fom_isa Fom_uarch Option Printf
