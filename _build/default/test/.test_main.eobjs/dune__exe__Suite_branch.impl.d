test/suite_branch.ml: Alcotest Array Fom_branch Fom_util List QCheck QCheck_alcotest
