test/suite_source.ml: Alcotest Array Filename Fom_analysis Fom_isa Fom_model Fom_trace Fom_uarch Fom_workloads Fun Lazy Sys
