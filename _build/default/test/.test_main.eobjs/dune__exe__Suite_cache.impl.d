test/suite_cache.ml: Alcotest Array Fom_cache Fom_util Gen List QCheck QCheck_alcotest
