test/suite_trace.ml: Alcotest Array Fom_isa Fom_trace Fom_util Fom_workloads Hashtbl List Option QCheck QCheck_alcotest String
