test/suite_model.ml: Alcotest Array Float Fom_isa Fom_model Fom_util List Printf QCheck QCheck_alcotest
