test/suite_analysis.ml: Alcotest Float Fom_analysis Fom_branch Fom_cache Fom_isa Fom_model Fom_trace Fom_uarch Fom_util Fom_workloads Format Lazy List Printf String
