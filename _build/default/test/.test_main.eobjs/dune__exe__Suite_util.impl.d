test/suite_util.ml: Alcotest Array Filename Float Fom_util Fun Gen List QCheck QCheck_alcotest String Sys
