test/suite_workloads.ml: Alcotest Float Fom_analysis Fom_model Fom_trace Fom_uarch Fom_util Fom_workloads Lazy List Printf
