test/suite_isa.ml: Alcotest Fom_isa Format List String
