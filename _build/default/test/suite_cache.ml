(* Tests for Fom_cache: geometry arithmetic, LRU behaviour, hierarchy
   miss classification. *)

module Geometry = Fom_cache.Geometry
module Sa_cache = Fom_cache.Sa_cache
module Hierarchy = Fom_cache.Hierarchy

let small = Geometry.make ~size:1024 ~assoc:2 ~line:64 (* 8 sets *)

let test_geometry_baseline () =
  Alcotest.(check int) "l1 sets" 8 (Geometry.sets Geometry.l1_baseline);
  Alcotest.(check int) "l1 lines" 32 (Geometry.lines Geometry.l1_baseline);
  Alcotest.(check int) "l2 sets" 1024 (Geometry.sets Geometry.l2_baseline)

let test_geometry_mapping () =
  Alcotest.(check int) "line address" 0x40 (Geometry.line_address small 0x7f);
  Alcotest.(check int) "set wraps" (Geometry.set_index small 0x0)
    (Geometry.set_index small (8 * 64));
  Alcotest.(check bool) "different sets" true
    (Geometry.set_index small 0x0 <> Geometry.set_index small 64)

let test_geometry_tag_disambiguates () =
  (* Same set, different tags. *)
  let a = 0x0 and b = 8 * 64 in
  Alcotest.(check int) "same set" (Geometry.set_index small a) (Geometry.set_index small b);
  Alcotest.(check bool) "different tag" true (Geometry.tag small a <> Geometry.tag small b)

let test_cache_cold_miss_then_hit () =
  let c = Sa_cache.create small in
  Alcotest.(check bool) "cold miss" false (Sa_cache.access c 0x100);
  Alcotest.(check bool) "then hit" true (Sa_cache.access c 0x100);
  Alcotest.(check bool) "same line hits" true (Sa_cache.access c 0x13f);
  Alcotest.(check int) "one miss" 1 (Sa_cache.misses c)

let test_cache_lru_eviction () =
  let c = Sa_cache.create small in
  (* Three distinct tags in the same 2-way set: a, b, then touch a,
     then c must evict b (the LRU), not a. *)
  let set_stride = 8 * 64 in
  let a = 0x0 and b = set_stride and d = 2 * set_stride in
  ignore (Sa_cache.access c a);
  ignore (Sa_cache.access c b);
  ignore (Sa_cache.access c a);
  ignore (Sa_cache.access c d);
  Alcotest.(check bool) "a still resident" true (Sa_cache.resident c a);
  Alcotest.(check bool) "b evicted" false (Sa_cache.resident c b);
  Alcotest.(check bool) "d resident" true (Sa_cache.resident c d)

let test_cache_probe_no_side_effect () =
  let c = Sa_cache.create small in
  Alcotest.(check bool) "probe miss" false (Sa_cache.probe c 0x200);
  Alcotest.(check bool) "still miss" false (Sa_cache.probe c 0x200);
  Alcotest.(check int) "no accesses counted" 0 (Sa_cache.accesses c)

let test_cache_working_set_fits () =
  (* A working set equal to capacity must fully hit after one pass. *)
  let c = Sa_cache.create small in
  let lines = Geometry.lines small in
  for i = 0 to lines - 1 do
    ignore (Sa_cache.access c (i * 64))
  done;
  Sa_cache.reset_stats c;
  for i = 0 to lines - 1 do
    ignore (Sa_cache.access c (i * 64))
  done;
  Alcotest.(check int) "second pass all hits" 0 (Sa_cache.misses c)

let test_cache_thrashing_set () =
  (* assoc+1 tags cycling through one set with LRU miss every time. *)
  let c = Sa_cache.create small in
  let set_stride = 8 * 64 in
  for round = 1 to 10 do
    ignore round;
    for k = 0 to 2 do
      ignore (Sa_cache.access c (k * set_stride))
    done
  done;
  Alcotest.(check int) "all misses" 30 (Sa_cache.misses c)

let test_cache_miss_rate_monotone_in_size () =
  (* Random accesses over 64 KiB: a bigger cache can only help. *)
  let rng = Fom_util.Rng.create 21 in
  let addrs = Array.init 20000 (fun _ -> Fom_util.Rng.int rng 65536) in
  let run size =
    let c = Sa_cache.create (Geometry.make ~size ~assoc:4 ~line:64) in
    Array.iter (fun a -> ignore (Sa_cache.access c a)) addrs;
    Sa_cache.miss_rate c
  in
  let small_rate = run 4096 and big_rate = run 32768 in
  Alcotest.(check bool) "bigger cache misses less" true (big_rate < small_rate)

let test_cache_clear () =
  let c = Sa_cache.create small in
  ignore (Sa_cache.access c 0x0);
  Sa_cache.clear c;
  Alcotest.(check int) "stats reset" 0 (Sa_cache.accesses c);
  Alcotest.(check bool) "contents gone" false (Sa_cache.resident c 0x0)

let test_hierarchy_classification () =
  let h = Hierarchy.create Hierarchy.baseline in
  (* Cold: L1 miss and L2 miss -> Memory; second touch -> L1 hit. *)
  Alcotest.(check bool) "cold long miss" true (Hierarchy.access_data h 0x5000 = Hierarchy.Memory);
  Alcotest.(check bool) "rehit" true (Hierarchy.access_data h 0x5000 = Hierarchy.L1_hit);
  let s = Hierarchy.stats h in
  Alcotest.(check int) "one long miss" 1 s.Hierarchy.long_misses;
  Alcotest.(check int) "two accesses" 2 s.Hierarchy.data_accesses

let test_hierarchy_short_miss () =
  let h = Hierarchy.create Hierarchy.baseline in
  ignore (Hierarchy.access_data h 0x9000);
  (* Evict 0x9000 from the tiny L1 but keep it in the big L2: walk
     enough conflicting lines. *)
  for k = 1 to 8 do
    ignore (Hierarchy.access_data h (0x9000 + (k * 4096)))
  done;
  Alcotest.(check bool) "L2 catch" true (Hierarchy.access_data h 0x9000 = Hierarchy.L2_hit);
  Alcotest.(check bool) "short miss counted" true ((Hierarchy.stats h).Hierarchy.short_misses >= 1)

let test_hierarchy_ideal () =
  let h = Hierarchy.create Hierarchy.all_ideal in
  for i = 0 to 999 do
    Alcotest.(check bool) "always hits" true
      (Hierarchy.access_data h (i * 8192) = Hierarchy.L1_hit)
  done;
  Alcotest.(check int) "no misses" 0 (Hierarchy.stats h).Hierarchy.long_misses

let test_hierarchy_fig14 () =
  let h = Hierarchy.create Hierarchy.fig14 in
  (* No L2: every L1D miss is a long miss. *)
  Alcotest.(check bool) "long" true (Hierarchy.access_data h 0xA0000 = Hierarchy.Memory);
  Alcotest.(check bool) "inst side ideal" true
    (Hierarchy.access_inst h 0x400000 = Hierarchy.L1_hit)

let test_hierarchy_latencies () =
  let h = Hierarchy.create Hierarchy.baseline in
  Alcotest.(check int) "l1" 1 (Hierarchy.data_latency h Hierarchy.L1_hit);
  Alcotest.(check int) "l2" 8 (Hierarchy.data_latency h Hierarchy.L2_hit);
  Alcotest.(check int) "memory" 200 (Hierarchy.data_latency h Hierarchy.Memory);
  Alcotest.(check int) "inst hit no stall" 0 (Hierarchy.inst_stall h Hierarchy.L1_hit);
  Alcotest.(check int) "inst l2 stall" 8 (Hierarchy.inst_stall h Hierarchy.L2_hit)

let test_hierarchy_inst_side_stats () =
  let h = Hierarchy.create Hierarchy.baseline in
  ignore (Hierarchy.access_inst h 0x400000);
  ignore (Hierarchy.access_inst h 0x400000);
  let s = Hierarchy.stats h in
  Alcotest.(check int) "accesses" 2 s.Hierarchy.inst_accesses;
  Alcotest.(check int) "l1i misses" 1 s.Hierarchy.l1i_misses;
  Alcotest.(check int) "l2i misses" 1 s.Hierarchy.l2i_misses

let test_direct_mapped_conflicts () =
  (* A direct-mapped cache thrashes on two same-set tags where a 2-way
     cache holds both. *)
  let geometry ~assoc = Geometry.make ~size:1024 ~assoc ~line:64 in
  let run assoc =
    let c = Sa_cache.create (geometry ~assoc) in
    let sets = Geometry.sets (geometry ~assoc) in
    let a = 0x0 and b = sets * 64 in
    for _ = 1 to 10 do
      ignore (Sa_cache.access c a);
      ignore (Sa_cache.access c b)
    done;
    Sa_cache.misses c
  in
  Alcotest.(check int) "direct-mapped thrashes" 20 (run 1);
  Alcotest.(check int) "2-way holds both" 2 (run 2)

let prop_geometry_mapping_sane =
  QCheck.Test.make ~name:"geometry mapping stays in range" ~count:200
    QCheck.(pair (int_range 0 10_000_000) (int_range 0 2))
    (fun (addr, g) ->
      let geometry =
        [| Geometry.l1_baseline; Geometry.l2_baseline; Geometry.make ~size:1024 ~assoc:2 ~line:64 |].(g)
      in
      let set = Geometry.set_index geometry addr in
      let line = Geometry.line_address geometry addr in
      set >= 0 && set < Geometry.sets geometry && line <= addr
      && addr - line < geometry.Geometry.line)

let prop_lru_bounded_misses =
  QCheck.Test.make ~name:"misses never exceed accesses" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 500) (int_range 0 100000))
    (fun addrs ->
      let c = Sa_cache.create small in
      List.iter (fun a -> ignore (Sa_cache.access c a)) addrs;
      Sa_cache.misses c <= Sa_cache.accesses c
      && Sa_cache.accesses c = List.length addrs)

let prop_access_then_resident =
  QCheck.Test.make ~name:"an accessed line is immediately resident" ~count:100
    QCheck.(int_range 0 1000000)
    (fun addr ->
      let c = Sa_cache.create small in
      ignore (Sa_cache.access c addr);
      Sa_cache.resident c addr)

let suite =
  ( "cache",
    [
      Alcotest.test_case "geometry baseline" `Quick test_geometry_baseline;
      Alcotest.test_case "geometry mapping" `Quick test_geometry_mapping;
      Alcotest.test_case "geometry tags" `Quick test_geometry_tag_disambiguates;
      Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
      Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
      Alcotest.test_case "probe has no side effect" `Quick test_cache_probe_no_side_effect;
      Alcotest.test_case "working set fits" `Quick test_cache_working_set_fits;
      Alcotest.test_case "thrashing set" `Quick test_cache_thrashing_set;
      Alcotest.test_case "miss rate monotone in size" `Quick test_cache_miss_rate_monotone_in_size;
      Alcotest.test_case "clear" `Quick test_cache_clear;
      Alcotest.test_case "hierarchy classification" `Quick test_hierarchy_classification;
      Alcotest.test_case "hierarchy short miss" `Quick test_hierarchy_short_miss;
      Alcotest.test_case "hierarchy ideal" `Quick test_hierarchy_ideal;
      Alcotest.test_case "hierarchy fig14" `Quick test_hierarchy_fig14;
      Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
      Alcotest.test_case "hierarchy inst stats" `Quick test_hierarchy_inst_side_stats;
      Alcotest.test_case "direct-mapped conflicts" `Quick test_direct_mapped_conflicts;
      QCheck_alcotest.to_alcotest prop_geometry_mapping_sane;
      QCheck_alcotest.to_alcotest prop_lru_bounded_misses;
      QCheck_alcotest.to_alcotest prop_access_then_resident;
    ] )
