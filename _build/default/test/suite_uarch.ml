(* Tests for Fom_uarch: machine invariants, idealized behaviour, and
   directional responses to each miss-event knob. *)

module Config = Fom_uarch.Config
module Machine = Fom_uarch.Machine
module Stats = Fom_uarch.Stats
module Simulate = Fom_uarch.Simulate
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor
module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg

let gzip_program = lazy (Fom_trace.Program.generate (Fom_workloads.Spec2000.find "gzip"))
let mcf_program = lazy (Fom_trace.Program.generate (Fom_workloads.Spec2000.find "mcf"))

(* A hand-built trace: a thunk serving instructions from a list, then
   endless independent ALU filler. *)
let of_list instrs =
  let remaining = ref instrs in
  let counter = ref (List.length instrs) in
  fun () ->
    match !remaining with
    | i :: rest ->
        remaining := rest;
        i
    | [] ->
        let index = !counter in
        incr counter;
        Instr.make ~index ~pc:0x400000 ~opclass:Opclass.Alu ~dst:(Reg.of_int 1) ()

let alu ~index ?(deps = [||]) () =
  Instr.make ~index ~pc:(0x400000 + (4 * index)) ~opclass:Opclass.Alu
    ~dst:(Reg.of_int ((index mod 31) + 1)) ~deps ()

let ideal_config = Config.ideal Config.baseline

let test_empty_chain_throughput () =
  (* Independent ALU instructions retire at full width. *)
  let machine = Machine.create ideal_config (of_list []) in
  let stats = Machine.run machine ~n:10000 in
  Alcotest.(check bool) "ipc near width" true (Stats.ipc stats > 3.5)

let test_serial_chain_throughput () =
  (* A pure dependence chain cannot exceed IPC 1. *)
  let counter = ref 0 in
  let next () =
    let index = !counter in
    incr counter;
    alu ~index ~deps:(if index = 0 then [||] else [| index - 1 |]) ()
  in
  let machine = Machine.create ideal_config next in
  let stats = Machine.run machine ~n:5000 in
  Alcotest.(check bool) "ipc at most 1" true (Stats.ipc stats <= 1.01);
  Alcotest.(check bool) "ipc near 1" true (Stats.ipc stats > 0.9)

let test_latency_respected () =
  (* A chain of div (latency 12) instructions: IPC about 1/12. *)
  let counter = ref 0 in
  let next () =
    let index = !counter in
    incr counter;
    Instr.make ~index ~pc:0x400000 ~opclass:Opclass.Div ~dst:(Reg.of_int 1)
      ~deps:(if index = 0 then [||] else [| index - 1 |])
      ()
  in
  let machine = Machine.create ideal_config next in
  let stats = Machine.run machine ~n:500 in
  Alcotest.(check (float 0.1)) "cpi 12" 12.0 (Stats.cpi stats)

let test_ideal_no_events () =
  let stats = Simulate.run ideal_config (Lazy.force gzip_program) ~n:20000 in
  Alcotest.(check int) "no mispredictions" 0 stats.Stats.branch_mispredictions;
  Alcotest.(check int) "no l1i misses" 0 stats.Stats.l1i_misses;
  Alcotest.(check int) "no long misses" 0 stats.Stats.long_data_misses

let test_ipc_bounded_by_width () =
  List.iter
    (fun width ->
      let config = Config.with_width width ideal_config in
      let stats = Simulate.run config (Lazy.force gzip_program) ~n:20000 in
      Alcotest.(check bool)
        (Printf.sprintf "ipc <= width %d" width)
        true
        (Stats.ipc stats <= float_of_int width +. 1e-9))
    [ 1; 2; 4; 8 ]

let test_wider_is_not_slower () =
  let run width =
    Stats.ipc
      (Simulate.run (Config.with_width width ideal_config) (Lazy.force gzip_program) ~n:20000)
  in
  Alcotest.(check bool) "width 4 >= width 2" true (run 4 >= run 2 -. 0.01);
  Alcotest.(check bool) "width 2 >= width 1" true (run 2 >= run 1 -. 0.01)

let test_bigger_window_not_slower () =
  let run window_size =
    let config = { ideal_config with Config.window_size; rob_size = 256 } in
    Stats.ipc (Simulate.run config (Lazy.force gzip_program) ~n:20000)
  in
  Alcotest.(check bool) "window 32 >= window 8" true (run 32 >= run 8 -. 0.01)

let test_real_predictor_costs_cycles () =
  let ideal_stats = Simulate.run ideal_config (Lazy.force gzip_program) ~n:30000 in
  let bp_config = Config.with_predictor Predictor.default_spec ideal_config in
  let bp_stats = Simulate.run bp_config (Lazy.force gzip_program) ~n:30000 in
  Alcotest.(check bool) "mispredictions occur" true (bp_stats.Stats.branch_mispredictions > 0);
  Alcotest.(check bool) "misses cost cycles" true
    (bp_stats.Stats.cycles > ideal_stats.Stats.cycles)

let test_real_dcache_costs_cycles () =
  let ideal_stats = Simulate.run ideal_config (Lazy.force mcf_program) ~n:30000 in
  let dc_config = Config.with_cache Hierarchy.ideal_except_data ideal_config in
  let dc_stats = Simulate.run dc_config (Lazy.force mcf_program) ~n:30000 in
  Alcotest.(check bool) "long misses occur" true (dc_stats.Stats.long_data_misses > 0);
  Alcotest.(check bool) "misses cost cycles" true (dc_stats.Stats.cycles > ideal_stats.Stats.cycles)

let test_deeper_pipe_slower_with_mispredictions () =
  let bp_config = Config.with_predictor Predictor.default_spec ideal_config in
  let run depth =
    (Simulate.run (Config.with_depth depth bp_config) (Lazy.force gzip_program) ~n:30000)
      .Stats.cycles
  in
  Alcotest.(check bool) "9 stages slower than 5" true (run 9 > run 5)

let test_deeper_pipe_free_when_ideal () =
  (* With no miss-events the front-end depth only affects the first
     instructions; steady-state cycles should be near identical. *)
  let run depth =
    (Simulate.run (Config.with_depth depth ideal_config) (Lazy.force gzip_program) ~n:30000)
      .Stats.cycles
  in
  let c5 = run 5 and c9 = run 9 in
  Alcotest.(check bool) "within 1 percent" true
    (abs (c9 - c5) < max 1 (c5 / 100))

let test_isolated_long_miss_penalty () =
  (* One long-miss load in otherwise independent work: total time grows
     by about the memory latency (the paper's isolated-miss analysis:
     penalty about delta_D when the load is old). *)
  let mem_latency = 200 in
  let make_trace ~miss =
    let counter = ref 0 in
    fun () ->
      let index = !counter in
      incr counter;
      if miss && index = 1000 then
        Instr.make ~index ~pc:0x400000 ~opclass:Opclass.Load ~dst:(Reg.of_int 1)
          ~mem:0xDEAD000 ()
      else alu ~index ()
  in
  let config = Config.with_cache Hierarchy.fig14 ideal_config in
  let run miss =
    let machine = Machine.create config (make_trace ~miss) in
    (Machine.run machine ~n:20000).Stats.cycles
  in
  let penalty = run true - run false in
  Alcotest.(check bool)
    (Printf.sprintf "penalty %d near %d" penalty mem_latency)
    true
    (penalty > mem_latency - 60 && penalty <= mem_latency + 10)

let test_overlapping_long_misses_share_penalty () =
  (* Two independent long-miss loads within a ROB of each other cost
     about one isolated penalty in total (paper eq. 7). *)
  let make_trace ~misses =
    let counter = ref 0 in
    fun () ->
      let index = !counter in
      incr counter;
      if List.mem index misses then
        Instr.make ~index ~pc:0x400000 ~opclass:Opclass.Load ~dst:(Reg.of_int 1)
          ~mem:(0xDEAD000 + (index * 0x100000))
          ()
      else alu ~index ()
  in
  let config = Config.with_cache Hierarchy.fig14 ideal_config in
  let run misses =
    let machine = Machine.create config (make_trace ~misses) in
    (Machine.run machine ~n:20000).Stats.cycles
  in
  let base = run [] in
  let one = run [ 1000 ] - base in
  let two = run [ 1000; 1040 ] - base in
  Alcotest.(check bool)
    (Printf.sprintf "two overlapped (%d) near one isolated (%d)" two one)
    true
    (float_of_int two < 1.3 *. float_of_int one)

let test_far_apart_misses_add () =
  let make_trace ~misses =
    let counter = ref 0 in
    fun () ->
      let index = !counter in
      incr counter;
      if List.mem index misses then
        Instr.make ~index ~pc:0x400000 ~opclass:Opclass.Load ~dst:(Reg.of_int 1)
          ~mem:(0xDEAD000 + (index * 0x100000))
          ()
      else alu ~index ()
  in
  let config = Config.with_cache Hierarchy.fig14 ideal_config in
  let run misses =
    let machine = Machine.create config (make_trace ~misses) in
    (Machine.run machine ~n:20000).Stats.cycles
  in
  let base = run [] in
  let one = run [ 1000 ] - base in
  let two = run [ 1000; 8000 ] - base in
  Alcotest.(check bool)
    (Printf.sprintf "far misses add (%d vs 2x%d)" two one)
    true
    (float_of_int two > 1.7 *. float_of_int one)

let test_rob_never_overflows () =
  (* Indirect invariant check: with a tiny ROB the machine still makes
     progress and the occupancy stat stays within the size. *)
  let config = { ideal_config with Config.window_size = 8; rob_size = 16 } in
  let stats = Simulate.run config (Lazy.force mcf_program) ~n:20000 in
  Alcotest.(check bool) "rob occupancy bounded" true (stats.Stats.mean_rob_occupancy <= 16.0);
  Alcotest.(check bool) "window occupancy bounded" true
    (stats.Stats.mean_window_occupancy <= 8.0);
  (* The run stops at the first cycle reaching the target, so a final
     multi-retire cycle may overshoot by at most width - 1. *)
  Alcotest.(check bool) "all retired" true
    (stats.Stats.instructions >= 20000 && stats.Stats.instructions < 20000 + 4)

let test_determinism () =
  let run () = Simulate.run Config.baseline (Lazy.force gzip_program) ~n:20000 in
  let a = run () and b = run () in
  Alcotest.(check int) "same cycles" a.Stats.cycles b.Stats.cycles;
  Alcotest.(check int) "same mispredictions" a.Stats.branch_mispredictions
    b.Stats.branch_mispredictions

let test_isolate_helper () =
  let program = Lazy.force gzip_program in
  let faulty = Config.with_predictor Predictor.default_spec ideal_config in
  let result =
    Simulate.isolate ~base:ideal_config ~faulty
      ~events:(fun s -> s.Stats.branch_mispredictions)
      program ~n:30000
  in
  Alcotest.(check bool) "events counted" true (result.Simulate.events > 0);
  Alcotest.(check bool) "positive penalty" true (result.Simulate.penalty_per_event > 0.0)

let test_unbounded_issue_not_slower () =
  let bounded = Simulate.run ideal_config (Lazy.force gzip_program) ~n:20000 in
  let unbounded =
    Simulate.run { ideal_config with Config.unbounded_issue = true }
      (Lazy.force gzip_program) ~n:20000
  in
  Alcotest.(check bool) "unbounded at least as fast" true
    (unbounded.Stats.cycles <= bounded.Stats.cycles)

let suite =
  ( "uarch",
    [
      Alcotest.test_case "independent work at full width" `Quick test_empty_chain_throughput;
      Alcotest.test_case "serial chain at ipc 1" `Quick test_serial_chain_throughput;
      Alcotest.test_case "latency respected" `Quick test_latency_respected;
      Alcotest.test_case "ideal run has no events" `Quick test_ideal_no_events;
      Alcotest.test_case "ipc bounded by width" `Quick test_ipc_bounded_by_width;
      Alcotest.test_case "wider is not slower" `Quick test_wider_is_not_slower;
      Alcotest.test_case "bigger window not slower" `Quick test_bigger_window_not_slower;
      Alcotest.test_case "real predictor costs cycles" `Quick test_real_predictor_costs_cycles;
      Alcotest.test_case "real dcache costs cycles" `Quick test_real_dcache_costs_cycles;
      Alcotest.test_case "deeper pipe slower with mispredictions" `Quick
        test_deeper_pipe_slower_with_mispredictions;
      Alcotest.test_case "deeper pipe free when ideal" `Quick test_deeper_pipe_free_when_ideal;
      Alcotest.test_case "isolated long miss costs about memory latency" `Quick
        test_isolated_long_miss_penalty;
      Alcotest.test_case "overlapping long misses share penalty" `Quick
        test_overlapping_long_misses_share_penalty;
      Alcotest.test_case "far apart misses add" `Quick test_far_apart_misses_add;
      Alcotest.test_case "tiny rob still progresses" `Quick test_rob_never_overflows;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "isolate helper" `Quick test_isolate_helper;
      Alcotest.test_case "unbounded issue not slower" `Quick test_unbounded_issue_not_slower;
    ] )
