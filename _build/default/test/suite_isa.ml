(* Tests for Fom_isa: registers, operation classes, latencies,
   instruction construction. *)

module Reg = Fom_isa.Reg
module Opclass = Fom_isa.Opclass
module Latency = Fom_isa.Latency
module Instr = Fom_isa.Instr

let test_reg_roundtrip () =
  for i = 0 to Reg.count - 1 do
    Alcotest.(check int) "roundtrip" i (Reg.to_int (Reg.of_int i))
  done

let test_reg_zero () =
  Alcotest.(check bool) "r0 is zero" true (Reg.is_zero Reg.zero_reg);
  Alcotest.(check bool) "r1 is not zero" false (Reg.is_zero (Reg.of_int 1))

let test_opclass_predicates () =
  Alcotest.(check bool) "load is memory" true (Opclass.is_memory Opclass.Load);
  Alcotest.(check bool) "store is memory" true (Opclass.is_memory Opclass.Store);
  Alcotest.(check bool) "alu not memory" false (Opclass.is_memory Opclass.Alu);
  Alcotest.(check bool) "branch is control" true (Opclass.is_control Opclass.Branch);
  Alcotest.(check bool) "jump is control" true (Opclass.is_control Opclass.Jump);
  Alcotest.(check bool) "mul not control" false (Opclass.is_control Opclass.Mul)

let test_opclass_all_distinct () =
  let names = List.map Opclass.to_string Opclass.all in
  Alcotest.(check int) "7 classes" 7 (List.length (List.sort_uniq compare names))

let test_latency_default () =
  Alcotest.(check int) "alu" 1 (Latency.of_class Latency.default Opclass.Alu);
  Alcotest.(check int) "mul" 3 (Latency.of_class Latency.default Opclass.Mul);
  Alcotest.(check int) "div" 12 (Latency.of_class Latency.default Opclass.Div)

let test_latency_unit () =
  List.iter
    (fun c -> Alcotest.(check int) "unit latency" 1 (Latency.of_class Latency.unit c))
    Opclass.all

let test_latency_make_overrides () =
  let l = Latency.make ~mul:5 () in
  Alcotest.(check int) "override" 5 (Latency.of_class l Opclass.Mul);
  Alcotest.(check int) "default kept" 1 (Latency.of_class l Opclass.Alu)

let test_latency_average () =
  (* Half alu (1 cycle), half mul (3 cycles) -> 2.0. *)
  let weight = function Opclass.Alu -> 0.5 | Opclass.Mul -> 0.5 | _ -> 0.0 in
  Alcotest.(check (float 1e-9)) "average" 2.0 (Latency.average Latency.default weight)

let test_instr_make_alu () =
  let i =
    Instr.make ~index:5 ~pc:0x400010 ~opclass:Opclass.Alu ~dst:(Reg.of_int 3)
      ~srcs:[ Reg.of_int 1 ] ~deps:[| 2 |] ()
  in
  Alcotest.(check int) "index" 5 i.Instr.index;
  Alcotest.(check bool) "not load" false (Instr.is_load i);
  Alcotest.(check bool) "not control" false (Instr.is_control i)

let test_instr_make_load () =
  let i =
    Instr.make ~index:1 ~pc:0x400000 ~opclass:Opclass.Load ~dst:(Reg.of_int 2)
      ~mem:0x1000 ()
  in
  Alcotest.(check bool) "is load" true (Instr.is_load i);
  Alcotest.(check (option int)) "mem" (Some 0x1000) i.Instr.mem

let test_instr_make_branch () =
  let i =
    Instr.make ~index:2 ~pc:0x400004 ~opclass:Opclass.Branch
      ~ctrl:{ Instr.target = 0x400100; taken = true } ()
  in
  Alcotest.(check bool) "is branch" true (Instr.is_branch i);
  Alcotest.(check bool) "is control" true (Instr.is_control i)

let test_instr_pp () =
  let i =
    Instr.make ~index:0 ~pc:0x400000 ~opclass:Opclass.Load ~dst:(Reg.of_int 7) ~mem:0x2000 ()
  in
  let s = Format.asprintf "%a" Instr.pp i in
  Alcotest.(check bool) "mentions load" true
    (String.length s > 0 && String.index_opt s 'l' <> None)

let suite =
  ( "isa",
    [
      Alcotest.test_case "reg roundtrip" `Quick test_reg_roundtrip;
      Alcotest.test_case "reg zero" `Quick test_reg_zero;
      Alcotest.test_case "opclass predicates" `Quick test_opclass_predicates;
      Alcotest.test_case "opclass distinct names" `Quick test_opclass_all_distinct;
      Alcotest.test_case "latency defaults" `Quick test_latency_default;
      Alcotest.test_case "latency unit" `Quick test_latency_unit;
      Alcotest.test_case "latency overrides" `Quick test_latency_make_overrides;
      Alcotest.test_case "latency average" `Quick test_latency_average;
      Alcotest.test_case "instr alu" `Quick test_instr_make_alu;
      Alcotest.test_case "instr load" `Quick test_instr_make_load;
      Alcotest.test_case "instr branch" `Quick test_instr_make_branch;
      Alcotest.test_case "instr pp" `Quick test_instr_pp;
    ] )
