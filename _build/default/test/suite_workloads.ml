(* Tests for the workload presets: the SPECint2000-like calibration
   targets and the analytically predictable micro-workloads. *)

module Config = Fom_trace.Config
module Spec2000 = Fom_workloads.Spec2000
module Micro = Fom_workloads.Micro
module Iw_sim = Fom_analysis.Iw_sim
module Iw_curve = Fom_analysis.Iw_curve
module Profile = Fom_analysis.Profile

let program config = Fom_trace.Program.generate config

let per_ki profile count =
  1000.0 *. float_of_int count /. float_of_int profile.Profile.instructions

(* --- SPECint2000-like presets: qualitative calibration targets --- *)

let characteristics =
  lazy
    (List.map
       (fun config ->
         let p = program config in
         let curve = Iw_curve.measure ~n:15000 p in
         let profile = Profile.run p ~n:100_000 in
         (config.Config.name, curve, profile))
       Spec2000.all)

let find name =
  let n, c, p = List.find (fun (n, _, _) -> n = name) (Lazy.force characteristics) in
  ignore n;
  (c, p)

let beta name = Iw_curve.beta (fst (find name))

let test_all_presets_validate () =
  List.iter Config.validate Spec2000.all;
  List.iter Config.validate Micro.all

let test_beta_extremes () =
  (* Paper Table 1: vortex is the high-ILP extreme, vpr the low-ILP
     one; every other benchmark lies between them. *)
  let vortex = beta "vortex" and vpr = beta "vpr" in
  Alcotest.(check bool) "vpr lowest" true
    (List.for_all (fun (n, c, _) -> n = "vpr" || Iw_curve.beta c > vpr)
       (Lazy.force characteristics));
  Alcotest.(check bool) "vortex highest" true
    (List.for_all (fun (n, c, _) -> n = "vortex" || Iw_curve.beta c < vortex)
       (Lazy.force characteristics))

let test_vpr_high_latency () =
  (* Paper: vpr has the highest mean latency (2.2 on SPEC). *)
  let _, profile = find "vpr" in
  Alcotest.(check bool) "above 1.8" true (profile.Profile.avg_latency > 1.8);
  List.iter
    (fun (n, _, p) ->
      if n <> "vpr" then
        Alcotest.(check bool)
          (n ^ " below vpr")
          true
          (p.Profile.avg_latency < profile.Profile.avg_latency))
    (Lazy.force characteristics)

let test_mcf_memory_bound () =
  (* Paper Figure 16: long D-misses dominate mcf. *)
  let _, mcf = find "mcf" in
  List.iter
    (fun (n, _, p) ->
      if n <> "mcf" then
        Alcotest.(check bool)
          (n ^ " fewer long misses than mcf")
          true
          (per_ki p p.Profile.long_misses < per_ki mcf mcf.Profile.long_misses))
    (Lazy.force characteristics);
  Alcotest.(check bool) "mcf long misses substantial" true
    (per_ki mcf mcf.Profile.long_misses > 20.0)

let test_vortex_predicted_better_than_gcc () =
  (* Directional SPEC character: the OO-database workload predicts
     better than the branchy compiler. (The synthetic vortex keeps a
     misprediction floor from gShare history churn across its large
     code footprint, so the claim is kept directional rather than
     absolute.) *)
  let _, vortex = find "vortex" in
  let _, gcc = find "gcc" in
  let rate p = per_ki p p.Profile.mispredictions in
  Alcotest.(check bool) "vortex below gcc" true (rate vortex < rate gcc)

let test_icache_benchmarks () =
  (* Paper Figure 11 shows I-cache misses for crafty, eon, gap,
     parser, perlbmk, vortex (and twolf); gzip/bzip2/mcf/vpr are
     negligible. *)
  List.iter
    (fun name ->
      let _, p = find name in
      Alcotest.(check bool) (name ^ " has I-misses") true (per_ki p p.Profile.l1i_misses > 0.5))
    [ "crafty"; "eon"; "gap"; "parser"; "perlbmk"; "vortex" ];
  List.iter
    (fun name ->
      let _, p = find name in
      Alcotest.(check bool)
        (name ^ " negligible I-misses")
        true
        (per_ki p p.Profile.l1i_misses < 0.5))
    [ "gzip"; "bzip2"; "mcf"; "vpr" ]

let test_mispredict_rates_realistic () =
  (* All presets within the paper-era 1..20 per-kilo-instruction
     band. *)
  List.iter
    (fun (n, _, p) ->
      let rate = per_ki p p.Profile.mispredictions in
      Alcotest.(check bool)
        (Printf.sprintf "%s rate %.1f in band" n rate)
        true
        (rate > 1.0 && rate < 20.0))
    (Lazy.force characteristics)

(* --- micro-workloads --- *)

let test_serial_chain_ipc_one () =
  (* The producer chain issues one per cycle; control instructions
     (10% of the mix) produce no values and ride alongside, so the
     ceiling is 1 / (1 - control fraction) ~ 1.11. *)
  let ipc = Iw_sim.ipc (program Micro.serial_chain) ~window:64 ~n:10000 in
  Alcotest.(check bool) (Printf.sprintf "serial ipc %.2f in [1.0, 1.12]" ipc) true
    (ipc >= 0.99 && ipc <= 1.12)

let test_independent_scales_with_window () =
  (* Without dependences the window-limited issue rate is essentially
     the window itself (instant refill, unit latency). *)
  let p = program Micro.independent in
  List.iter
    (fun window ->
      let ipc = Iw_sim.ipc p ~window ~n:20000 in
      Alcotest.(check bool)
        (Printf.sprintf "window %d: ipc %.1f near window" window ipc)
        true
        (ipc > 0.85 *. float_of_int window))
    [ 4; 16; 64 ]

let test_pointer_chase_serialized_misses () =
  let profile = Profile.run (program Micro.pointer_chase) ~n:50000 in
  Alcotest.(check bool) "many long misses" true (per_ki profile profile.Profile.long_misses > 50.0);
  (* One serialized chain (chase_chains = 1): dependence-aware
     grouping must break the dense miss sequence into near-isolated
     groups. *)
  let mean_group = Fom_util.Distribution.mean profile.Profile.long_miss_groups in
  Alcotest.(check bool)
    (Printf.sprintf "chains split groups (mean %.1f)" mean_group)
    true (mean_group < 2.5)

let test_streaming_overlapped_misses () =
  let profile = Profile.run (program Micro.streaming) ~n:50000 in
  Alcotest.(check bool) "long misses occur" true (per_ki profile profile.Profile.long_misses > 5.0);
  let mean_group = Fom_util.Distribution.mean profile.Profile.long_miss_groups in
  let chase_profile = Profile.run (program Micro.pointer_chase) ~n:50000 in
  let chase_group = Fom_util.Distribution.mean chase_profile.Profile.long_miss_groups in
  Alcotest.(check bool)
    (Printf.sprintf "streams group more than chases (%.1f vs %.1f)" mean_group chase_group)
    true
    (mean_group > chase_group)

let test_branchy_misprediction_bound () =
  let profile = Profile.run (program Micro.branchy) ~n:50000 in
  Alcotest.(check bool) "high misprediction rate" true
    (per_ki profile profile.Profile.mispredictions > 30.0)

let test_loopy_nearly_ideal () =
  let stats =
    Fom_uarch.Simulate.run Fom_uarch.Config.baseline (program Micro.loopy) ~n:50000
  in
  Alcotest.(check bool) "near width" true (Fom_uarch.Stats.ipc stats > 3.0)

let test_micro_model_tracks_sim () =
  (* The model should stay honest on the stress cases too (chase is
     the known hard one; allow it more room). *)
  List.iter
    (fun (config, tolerance) ->
      let p = program config in
      let n = 60000 in
      let inputs = Fom_analysis.Characterize.inputs ~params:Fom_model.Params.baseline p ~n in
      let model = Fom_model.Cpi.total (Fom_model.Cpi.evaluate Fom_model.Params.baseline inputs) in
      let sim = Fom_uarch.Stats.cpi (Fom_uarch.Simulate.run Fom_uarch.Config.baseline p ~n) in
      let err = Float.abs (model -. sim) /. sim in
      Alcotest.(check bool)
        (Printf.sprintf "%s: model %.2f sim %.2f err %.0f%%" config.Config.name model sim
           (100. *. err))
        true (err < tolerance))
    [
      (* Streaming sits in the rolling-overlap regime that
         leader-anchored grouping truncates (misses pipeline through
         the ROB continuously); the first-order model overestimates
         there, as the paper's own overlap discussion anticipates. *)
      (Micro.streaming, 0.6);
      (Micro.branchy, 0.25);
      (Micro.loopy, 0.15);
      (Micro.pointer_chase, 0.5);
    ]

(* Randomized end-to-end property: for arbitrary (valid) workload
   parameters, the model stays within a loose band of the simulator.
   This guards the whole pipeline against regressions that the
   calibrated presets might not exercise. *)
let random_config rng k =
  let open Fom_util.Rng in
  let base = Spec2000.find "gcc" in
  let f lo hi = lo +. float rng (hi -. lo) in
  {
    base with
    Config.name = Printf.sprintf "random-%d" k;
    seed = 1000 + int rng 100000;
    mix =
      {
        Config.load = f 0.1 0.3;
        store = f 0.02 0.12;
        branch = f 0.1 0.2;
        jump = f 0.01 0.05;
        mul = f 0.0 0.08;
        div = f 0.0 0.01;
      };
    deps =
      {
        Config.short_p = f 0.6 0.95;
        short_mean = f 1.5 4.0;
        long_max = 64 + int rng 256;
        nsrc_weights = [| f 0.05 0.4; 0.5; f 0.1 0.5 |];
      };
    control =
      {
        base.Config.control with
        Config.regions = 2 + int rng 12;
        blocks_per_region = 8 + int rng 20;
        chaotic_frac = f 0.0 0.06;
        loop_trip_mean = f 4.0 32.0;
      };
    memory =
      {
        base.Config.memory with
        Config.local_frac = 0.7;
        random_frac = f 0.0 0.2;
        stream_frac = 0.0;
        chase_frac = 0.0;
      };
  }

let fix_memory (c : Config.t) =
  (* Make the four fractions sum to 1 after randomization. *)
  let m = c.Config.memory in
  let rest = 1.0 -. m.Config.random_frac -. m.Config.stream_frac -. m.Config.chase_frac in
  { c with Config.memory = { m with Config.local_frac = rest } }

let test_random_configs_model_tracks_sim () =
  let rng = Fom_util.Rng.create 4242 in
  for k = 1 to 4 do
    let config = fix_memory (random_config rng k) in
    Config.validate config;
    let p = program config in
    let n = 50000 in
    let inputs =
      Fom_analysis.Characterize.inputs ~iw_instructions:10000 ~params:Fom_model.Params.baseline
        p ~n
    in
    let model = Fom_model.Cpi.total (Fom_model.Cpi.evaluate Fom_model.Params.baseline inputs) in
    let sim = Fom_uarch.Stats.cpi (Fom_uarch.Simulate.run Fom_uarch.Config.baseline p ~n) in
    let err = Float.abs (model -. sim) /. sim in
    Alcotest.(check bool)
      (Printf.sprintf "config %d: model %.2f sim %.2f err %.0f%%" k model sim (100. *. err))
      true (err < 0.30)
  done

let suite =
  ( "workloads",
    [
      Alcotest.test_case "all presets validate" `Quick test_all_presets_validate;
      Alcotest.test_case "beta extremes (vpr, vortex)" `Slow test_beta_extremes;
      Alcotest.test_case "vpr highest latency" `Slow test_vpr_high_latency;
      Alcotest.test_case "mcf memory bound" `Slow test_mcf_memory_bound;
      Alcotest.test_case "vortex predicted better than gcc" `Slow test_vortex_predicted_better_than_gcc;
      Alcotest.test_case "icache benchmark split" `Slow test_icache_benchmarks;
      Alcotest.test_case "mispredict rates in band" `Slow test_mispredict_rates_realistic;
      Alcotest.test_case "micro: serial chain ipc 1" `Quick test_serial_chain_ipc_one;
      Alcotest.test_case "micro: independent scales" `Quick test_independent_scales_with_window;
      Alcotest.test_case "micro: chase serialized" `Quick test_pointer_chase_serialized_misses;
      Alcotest.test_case "micro: streaming overlaps" `Quick test_streaming_overlapped_misses;
      Alcotest.test_case "micro: branchy" `Quick test_branchy_misprediction_bound;
      Alcotest.test_case "micro: loopy near ideal" `Quick test_loopy_nearly_ideal;
      Alcotest.test_case "micro: model tracks sim" `Slow test_micro_model_tracks_sim;
      Alcotest.test_case "random configs: model tracks sim" `Slow
        test_random_configs_model_tracks_sim;
    ] )
