(* Tests for Fom_branch: predictor behaviours on learnable and
   unlearnable branch streams. *)

module Predictor = Fom_branch.Predictor
module Rng = Fom_util.Rng

let run_stream p outcomes =
  List.fold_left
    (fun wrong (pc, taken) ->
      if Predictor.observe p ~pc ~taken then wrong else wrong + 1)
    0 outcomes

let test_ideal_never_wrong () =
  let p = Predictor.create Predictor.Ideal in
  let rng = Rng.create 31 in
  let outcomes = List.init 1000 (fun i -> (0x400000 + (i mod 7 * 4), Rng.bool rng)) in
  Alcotest.(check int) "no mispredictions" 0 (run_stream p outcomes)

let test_always_taken () =
  let p = Predictor.create Predictor.Always_taken in
  let outcomes = [ (0x10, true); (0x10, false); (0x10, true) ] in
  Alcotest.(check int) "one wrong" 1 (run_stream p outcomes);
  Alcotest.(check int) "3 branches" 3 (Predictor.stats p).Predictor.branches

let test_bimodal_learns_bias () =
  let p = Predictor.create (Predictor.Bimodal 10) in
  let outcomes = List.init 1000 (fun _ -> (0x40, true)) in
  let wrong = run_stream p outcomes in
  Alcotest.(check bool) "learns within a few steps" true (wrong <= 2)

let test_gshare_learns_pattern () =
  (* A short periodic pattern is learnable by gShare but defeats a
     bimodal counter. *)
  let pattern = [| true; true; false |] in
  let outcomes = List.init 3000 (fun i -> (0x80, pattern.(i mod 3))) in
  let gshare = Predictor.create (Predictor.Gshare 13) in
  let bimodal = Predictor.create (Predictor.Bimodal 13) in
  let gshare_wrong = run_stream gshare outcomes in
  let bimodal_wrong = run_stream bimodal outcomes in
  Alcotest.(check bool) "gshare learns" true (gshare_wrong < 100);
  Alcotest.(check bool) "gshare beats bimodal" true (gshare_wrong < bimodal_wrong)

let test_gshare_chaotic_near_half () =
  let p = Predictor.create (Predictor.Gshare 13) in
  let rng = Rng.create 33 in
  let outcomes = List.init 20000 (fun _ -> (0xC0, Rng.bool rng)) in
  let wrong = run_stream p outcomes in
  let rate = float_of_int wrong /. 20000.0 in
  Alcotest.(check bool) "unlearnable stays near 0.5" true (rate > 0.4 && rate < 0.6)

let test_gshare_loop_misses_once_per_trip () =
  (* A loop branch with trip count beyond the history length should
     mispredict about once per loop iteration (at the exit). *)
  let trip = 100 in
  let outcomes =
    List.init 10000 (fun i -> (0x100, i mod trip < trip - 1))
  in
  let p = Predictor.create (Predictor.Gshare 13) in
  let wrong = run_stream p outcomes in
  let per_trip = float_of_int wrong /. (10000.0 /. float_of_int trip) in
  Alcotest.(check bool) "about one miss per trip" true (per_trip < 3.0)

let test_misprediction_rate_accessor () =
  let p = Predictor.create Predictor.Always_taken in
  Alcotest.(check (float 1e-9)) "empty rate" 0.0 (Predictor.misprediction_rate p);
  ignore (Predictor.observe p ~pc:0 ~taken:false);
  Alcotest.(check (float 1e-9)) "one of one" 1.0 (Predictor.misprediction_rate p)

let test_reset_stats () =
  let p = Predictor.create (Predictor.Gshare 10) in
  ignore (Predictor.observe p ~pc:0 ~taken:true);
  Predictor.reset_stats p;
  Alcotest.(check int) "reset" 0 (Predictor.stats p).Predictor.branches

let test_predict_is_pure () =
  let p = Predictor.create (Predictor.Gshare 10) in
  let a = Predictor.predict p ~pc:0x40 ~taken:true in
  let b = Predictor.predict p ~pc:0x40 ~taken:true in
  Alcotest.(check bool) "no state change" true (a = b)

let test_spec_accessor () =
  let p = Predictor.create Predictor.default_spec in
  Alcotest.(check bool) "default is gshare 13" true (Predictor.spec p = Predictor.Gshare 13)

let prop_observe_counts =
  QCheck.Test.make ~name:"stats count every observation" ~count:50
    QCheck.(list (pair (int_range 0 4096) bool))
    (fun outcomes ->
      let p = Predictor.create (Predictor.Gshare 8) in
      List.iter (fun (pc, taken) -> ignore (Predictor.observe p ~pc ~taken)) outcomes;
      (Predictor.stats p).Predictor.branches = List.length outcomes)

let prop_ideal_perfect =
  QCheck.Test.make ~name:"ideal predictor is always right" ~count:50
    QCheck.(list (pair (int_range 0 4096) bool))
    (fun outcomes ->
      let p = Predictor.create Predictor.Ideal in
      List.for_all (fun (pc, taken) -> Predictor.observe p ~pc ~taken) outcomes)

let suite =
  ( "branch",
    [
      Alcotest.test_case "ideal never wrong" `Quick test_ideal_never_wrong;
      Alcotest.test_case "always taken" `Quick test_always_taken;
      Alcotest.test_case "bimodal learns bias" `Quick test_bimodal_learns_bias;
      Alcotest.test_case "gshare learns pattern" `Quick test_gshare_learns_pattern;
      Alcotest.test_case "gshare chaotic near half" `Quick test_gshare_chaotic_near_half;
      Alcotest.test_case "gshare loop misses once per trip" `Quick
        test_gshare_loop_misses_once_per_trip;
      Alcotest.test_case "misprediction rate" `Quick test_misprediction_rate_accessor;
      Alcotest.test_case "reset stats" `Quick test_reset_stats;
      Alcotest.test_case "predict is pure" `Quick test_predict_is_pure;
      Alcotest.test_case "default spec" `Quick test_spec_accessor;
      QCheck_alcotest.to_alcotest prop_observe_counts;
      QCheck_alcotest.to_alcotest prop_ideal_perfect;
    ] )
