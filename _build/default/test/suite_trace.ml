(* Tests for Fom_trace: address generators, branch behaviours, program
   generation and the dynamic stream. *)

module Rng = Fom_util.Rng
module Address_gen = Fom_trace.Address_gen
module Branch_behavior = Fom_trace.Branch_behavior
module Config = Fom_trace.Config
module Program = Fom_trace.Program
module Stream = Fom_trace.Stream
module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass

let gzip () = Fom_workloads.Spec2000.find "gzip"
let region = { Address_gen.base = 0x1000; size = 4096 }

let test_stride_walks_region () =
  let g = Address_gen.create (Address_gen.Stride { stride = 64 }) region in
  let a0 = Address_gen.next g and a1 = Address_gen.next g in
  Alcotest.(check int) "first" 0x1000 a0;
  Alcotest.(check int) "second" 0x1040 a1

let test_stride_wraps () =
  let g = Address_gen.create (Address_gen.Stride { stride = 1024 }) region in
  let addrs = List.init 5 (fun _ -> Address_gen.next g) in
  Alcotest.(check int) "wraps to base" 0x1000 (List.nth addrs 4)

let test_random_in_region () =
  let rng = Rng.create 11 in
  let g = Address_gen.create ~seed_rng:rng Address_gen.Random region in
  for _ = 1 to 1000 do
    let a = Address_gen.next g in
    Alcotest.(check bool) "inside" true (a >= region.base && a < region.base + region.size);
    Alcotest.(check int) "aligned" 0 (a land 7)
  done

let test_chase_flag () =
  let g = Address_gen.create Address_gen.Chase region in
  Alcotest.(check bool) "chase" true (Address_gen.is_chase g);
  let g = Address_gen.create Address_gen.Random region in
  Alcotest.(check bool) "not chase" false (Address_gen.is_chase g)

let test_loop_behavior () =
  let b = Branch_behavior.create (Branch_behavior.Loop 4) in
  let outcomes = List.init 8 (fun _ -> Branch_behavior.next b) in
  Alcotest.(check (list bool)) "3 taken then exit, repeating"
    [ true; true; true; false; true; true; true; false ]
    outcomes

let test_pattern_behavior () =
  let pattern = [| true; false; false |] in
  let b = Branch_behavior.create (Branch_behavior.Pattern pattern) in
  let outcomes = List.init 6 (fun _ -> Branch_behavior.next b) in
  Alcotest.(check (list bool)) "periodic" [ true; false; false; true; false; false ] outcomes

let test_biased_behavior_rate () =
  let rng = Rng.create 13 in
  let b = Branch_behavior.create ~seed_rng:rng (Branch_behavior.Biased 0.9) in
  let taken = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Branch_behavior.next b then incr taken
  done;
  Alcotest.(check (float 0.02)) "rate" 0.9 (float_of_int !taken /. float_of_int n)

let test_expected_taken_rate () =
  Alcotest.(check (float 1e-9)) "loop 4" 0.75
    (Branch_behavior.expected_taken_rate (Branch_behavior.Loop 4));
  Alcotest.(check (float 1e-9)) "pattern" (2.0 /. 3.0)
    (Branch_behavior.expected_taken_rate
       (Branch_behavior.Pattern [| true; true; false |]))

let test_program_generation_deterministic () =
  let p1 = Program.generate (gzip ()) and p2 = Program.generate (gzip ()) in
  Alcotest.(check int) "same static count" (Program.static_count p1) (Program.static_count p2);
  let t1 = Stream.collect p1 ~n:1000 and t2 = Stream.collect p2 ~n:1000 in
  Array.iteri
    (fun i (a : Instr.t) ->
      let b = t2.(i) in
      Alcotest.(check int) "same pc" a.Instr.pc b.Instr.pc;
      Alcotest.(check bool) "same class" true (Opclass.equal a.Instr.opclass b.Instr.opclass))
    t1

let test_program_structure () =
  let config = gzip () in
  let p = Program.generate config in
  Alcotest.(check bool) "has blocks" true (Array.length p.Program.blocks > 0);
  Array.iter
    (fun (b : Program.block) ->
      Alcotest.(check bool) "non-empty block" true (b.Program.len >= 2);
      let term = p.Program.statics.(b.Program.first + b.Program.len - 1) in
      Alcotest.(check bool) "terminator is control" true (Opclass.is_control term.Program.opclass))
    p.Program.blocks

let test_block_of_uid () =
  let p = Program.generate (gzip ()) in
  Array.iteri
    (fun id (b : Program.block) ->
      Alcotest.(check int) "first maps to id" id (Program.block_of_uid p b.Program.first);
      Alcotest.(check int) "last maps to id" id
        (Program.block_of_uid p (b.Program.first + b.Program.len - 1)))
    p.Program.blocks

let test_stream_indices_sequential () =
  let p = Program.generate (gzip ()) in
  let trace = Stream.collect p ~n:500 in
  Array.iteri (fun i (ins : Instr.t) -> Alcotest.(check int) "index" i ins.Instr.index) trace

let test_stream_deps_precede () =
  let p = Program.generate (Fom_workloads.Spec2000.find "mcf") in
  Stream.iter p ~n:20000 (fun ins ->
      Array.iter
        (fun d ->
          if not (d >= 0 && d < ins.Instr.index) then
            Alcotest.failf "dep %d not before instr %d" d ins.Instr.index)
        ins.Instr.deps)

let test_stream_mix_matches_config () =
  let config = gzip () in
  let p = Program.generate config in
  let n = 200000 in
  let loads = ref 0 and branches = ref 0 and stores = ref 0 in
  Stream.iter p ~n (fun ins ->
      match ins.Instr.opclass with
      | Opclass.Load -> incr loads
      | Opclass.Store -> incr stores
      | Opclass.Branch -> incr branches
      | _ -> ());
  let frac r = float_of_int !r /. float_of_int n in
  (* Block-structured sampling reproduces the mix only approximately. *)
  Alcotest.(check (float 0.05)) "load frac" config.Config.mix.Config.load (frac loads);
  Alcotest.(check (float 0.05)) "store frac" config.Config.mix.Config.store (frac stores);
  Alcotest.(check (float 0.05)) "branch frac" config.Config.mix.Config.branch (frac branches)

let test_stream_branches_have_ctrl () =
  let p = Program.generate (gzip ()) in
  Stream.iter p ~n:5000 (fun ins ->
      if Instr.is_control ins then
        Alcotest.(check bool) "ctrl present" true (Option.is_some ins.Instr.ctrl)
      else Alcotest.(check bool) "ctrl absent" true (Option.is_none ins.Instr.ctrl))

let test_stream_memory_ops_have_addresses () =
  let p = Program.generate (Fom_workloads.Spec2000.find "mcf") in
  Stream.iter p ~n:5000 (fun ins ->
      Alcotest.(check bool) "mem iff memory op" true
        (Option.is_some ins.Instr.mem = Fom_isa.Opclass.is_memory ins.Instr.opclass))

let test_chase_loads_serialized () =
  (* In mcf, chase loads must depend on their previous dynamic instance. *)
  let p = Program.generate (Fom_workloads.Spec2000.find "mcf") in
  let last_by_pc = Hashtbl.create 64 in
  let found_chain = ref false in
  Stream.iter p ~n:50000 (fun ins ->
      if Instr.is_load ins then begin
        (match Hashtbl.find_opt last_by_pc ins.Instr.pc with
        | Some prev when Array.exists (fun d -> d = prev) ins.Instr.deps -> found_chain := true
        | _ -> ());
        Hashtbl.replace last_by_pc ins.Instr.pc ins.Instr.index
      end);
  Alcotest.(check bool) "found at least one load-load chain" true !found_chain

let test_all_workloads_generate () =
  List.iter
    (fun config ->
      let p = Program.generate config in
      let trace = Stream.collect p ~n:2000 in
      Alcotest.(check int) "trace length" 2000 (Array.length trace))
    Fom_workloads.Spec2000.all

let test_workload_lookup () =
  Alcotest.(check int) "12 presets" 12 (List.length Fom_workloads.Spec2000.all);
  List.iter
    (fun name ->
      let c = Fom_workloads.Spec2000.find name in
      Alcotest.(check string) "name matches" name c.Config.name)
    Fom_workloads.Spec2000.names

let test_with_seed () =
  let c = Fom_workloads.Spec2000.with_seed 999 (gzip ()) in
  Alcotest.(check int) "seed replaced" 999 c.Config.seed

let test_interleaved_streams_independent () =
  (* Two streams over the same program carry independent state:
     interleaving their consumption must not change what either
     produces. *)
  let p = Program.generate (gzip ()) in
  let reference = Stream.collect p ~n:400 in
  let s1 = Stream.create p and s2 = Stream.create p in
  for i = 0 to 399 do
    let a = Stream.next s1 in
    let b = Stream.next s2 in
    Alcotest.(check int) "s1 matches" reference.(i).Instr.pc a.Instr.pc;
    Alcotest.(check int) "s2 matches" reference.(i).Instr.pc b.Instr.pc
  done

let test_pcs_within_footprint () =
  let p = Program.generate (Fom_workloads.Spec2000.find "vortex") in
  let hi = Program.code_base + Program.footprint_bytes p in
  Stream.iter p ~n:20000 (fun ins ->
      if ins.Instr.pc < Program.code_base || ins.Instr.pc >= hi then
        Alcotest.failf "pc 0x%x outside footprint" ins.Instr.pc)

let test_full_block_coverage_small_program () =
  (* A small program's walk must reach every block within a modest
     horizon (the call-return structure guarantees progress). *)
  let p = Program.generate (gzip ()) in
  let blocks = Array.length p.Program.blocks in
  let seen = Array.make blocks false in
  Stream.iter p ~n:100000 (fun ins ->
      seen.(Program.block_of_uid p ((ins.Instr.pc - Program.code_base) / 4)) <- true);
  Array.iteri
    (fun i visited -> if not visited then Alcotest.failf "block %d never visited" i)
    seen

let test_single_chain_chase () =
  (* chase_chains = 1: every chase load (bar the first) depends on the
     immediately preceding chase load, regardless of its pc. *)
  let p = Program.generate Fom_workloads.Micro.pointer_chase in
  let last_chase = ref (-1) in
  Stream.iter p ~n:20000 (fun ins ->
      if Instr.is_load ins then begin
        (if !last_chase >= 0 then
           match ins.Instr.deps with
           | [| d |] when d = !last_chase -> ()
           | deps ->
               Alcotest.failf "load #%d deps %s, expected [%d]" ins.Instr.index
                 (String.concat ";" (Array.to_list (Array.map string_of_int deps)))
                 !last_chase);
        last_chase := ins.Instr.index
      end)

let prop_stream_deterministic =
  QCheck.Test.make ~name:"stream is deterministic per seed" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let config = Fom_workloads.Spec2000.with_seed seed (gzip ()) in
      let p = Program.generate config in
      let a = Stream.collect p ~n:200 and b = Stream.collect p ~n:200 in
      Array.for_all2
        (fun (x : Instr.t) (y : Instr.t) ->
          x.Instr.pc = y.Instr.pc && x.Instr.mem = y.Instr.mem && x.Instr.deps = y.Instr.deps)
        a b)

let suite =
  ( "trace",
    [
      Alcotest.test_case "stride walks region" `Quick test_stride_walks_region;
      Alcotest.test_case "stride wraps" `Quick test_stride_wraps;
      Alcotest.test_case "random in region" `Quick test_random_in_region;
      Alcotest.test_case "chase flag" `Quick test_chase_flag;
      Alcotest.test_case "loop behaviour" `Quick test_loop_behavior;
      Alcotest.test_case "pattern behaviour" `Quick test_pattern_behavior;
      Alcotest.test_case "biased rate" `Quick test_biased_behavior_rate;
      Alcotest.test_case "expected taken rate" `Quick test_expected_taken_rate;
      Alcotest.test_case "program deterministic" `Quick test_program_generation_deterministic;
      Alcotest.test_case "program structure" `Quick test_program_structure;
      Alcotest.test_case "block of uid" `Quick test_block_of_uid;
      Alcotest.test_case "stream indices" `Quick test_stream_indices_sequential;
      Alcotest.test_case "deps precede instruction" `Quick test_stream_deps_precede;
      Alcotest.test_case "mix matches config" `Quick test_stream_mix_matches_config;
      Alcotest.test_case "control has ctrl info" `Quick test_stream_branches_have_ctrl;
      Alcotest.test_case "memory ops have addresses" `Quick test_stream_memory_ops_have_addresses;
      Alcotest.test_case "chase loads serialized" `Quick test_chase_loads_serialized;
      Alcotest.test_case "all workloads generate" `Quick test_all_workloads_generate;
      Alcotest.test_case "workload lookup" `Quick test_workload_lookup;
      Alcotest.test_case "with seed" `Quick test_with_seed;
      Alcotest.test_case "interleaved streams independent" `Quick
        test_interleaved_streams_independent;
      Alcotest.test_case "pcs within footprint" `Quick test_pcs_within_footprint;
      Alcotest.test_case "full block coverage" `Quick test_full_block_coverage_small_program;
      Alcotest.test_case "single-chain chase" `Quick test_single_chain_chase;
      QCheck_alcotest.to_alcotest prop_stream_deterministic;
    ] )
