(* Tests for the Section 7 extensions: data TLB, limited functional
   units, fetch buffers, and the extra predictors. *)

module Config = Fom_uarch.Config
module Stats = Fom_uarch.Stats
module Simulate = Fom_uarch.Simulate
module Tlb = Fom_cache.Tlb
module Fu_set = Fom_isa.Fu_set
module Opclass = Fom_isa.Opclass
module Predictor = Fom_branch.Predictor
module Params = Fom_model.Params
module Cpi = Fom_model.Cpi
module Fu_saturation = Fom_model.Fu_saturation
module Penalties = Fom_model.Penalties
module Iw = Fom_model.Iw_characteristic

let program name = Fom_trace.Program.generate (Fom_workloads.Spec2000.find name)
let mcf = lazy (program "mcf")
let gzip = lazy (program "gzip")
let ideal = Config.ideal Config.baseline

(* --- TLB substrate --- *)

let test_tlb_hits_after_fill () =
  let tlb = Tlb.create Tlb.default_spec in
  Alcotest.(check bool) "cold miss" false (Tlb.access tlb 0x10000);
  Alcotest.(check bool) "page hit" true (Tlb.access tlb 0x10008);
  Alcotest.(check bool) "same page other offset" true (Tlb.access tlb 0x11FF8);
  Alcotest.(check int) "one miss" 1 (Tlb.misses tlb)

let test_tlb_capacity_eviction () =
  let spec = { Tlb.entries = 4; page_bits = 13; walk_latency = 30 } in
  let tlb = Tlb.create spec in
  let page k = k * 8192 in
  for k = 0 to 4 do
    ignore (Tlb.access tlb (page k))
  done;
  (* Five pages through a 4-entry TLB: page 0 was the LRU victim. *)
  Alcotest.(check bool) "page 0 evicted" false (Tlb.access tlb (page 0));
  Alcotest.(check bool) "page 4 still in" true (Tlb.access tlb (page 4))

let test_tlb_slows_machine () =
  let with_tlb =
    Config.with_dtlb { Tlb.entries = 16; page_bits = 13; walk_latency = 30 } ideal
  in
  let base = Simulate.run ideal (Lazy.force mcf) ~n:30000 in
  let tlbed = Simulate.run with_tlb (Lazy.force mcf) ~n:30000 in
  Alcotest.(check bool) "misses occur" true (tlbed.Stats.dtlb_misses > 0);
  Alcotest.(check bool) "cycles grow" true (tlbed.Stats.cycles > base.Stats.cycles);
  Alcotest.(check int) "no tlb, no misses" 0 base.Stats.dtlb_misses

let test_tlb_model_tracks_sim () =
  (* Model with the TLB term vs simulation with the TLB, everything
     else ideal. *)
  let spec = { Tlb.entries = 16; page_bits = 13; walk_latency = 30 } in
  let p = Lazy.force mcf in
  let n = 100000 in
  let machine = Config.with_dtlb spec ideal in
  let sim = Simulate.run machine p ~n in
  let inputs =
    Fom_analysis.Characterize.inputs ~cache:Fom_cache.Hierarchy.all_ideal
      ~predictor:Predictor.Ideal ~dtlb:spec ~params:Params.baseline p ~n
  in
  let b = Cpi.evaluate { Params.baseline with Params.dtlb_walk = spec.Tlb.walk_latency } inputs in
  Alcotest.(check bool) "model sees tlb misses" true (b.Cpi.dtlb > 0.0);
  (* A 30-cycle walk sits between the regimes the first-order theory
     handles exactly: shorter than a ROB fill (partially absorbed) yet
     serialized along pointer chains. The deliberately simple
     walk-times-group-factor term is checked directionally, within a
     factor of two. *)
  let ratio = Cpi.total b /. Stats.cpi sim in
  Alcotest.(check bool)
    (Printf.sprintf "model %.3f vs sim %.3f ratio %.2f" (Cpi.total b) (Stats.cpi sim) ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

(* --- FU limits --- *)

let mix_of profile cls = Fom_analysis.Profile.class_fraction profile cls

let test_fu_saturation_math () =
  let fu = Fu_set.make ~load:1 () in
  let mix = function Opclass.Load -> 0.25 | _ -> 0.15 in
  Alcotest.(check (float 1e-9)) "bound 4" 4.0 (Fu_saturation.saturation_ipc fu ~mix);
  Alcotest.(check (float 1e-9)) "effective width clipped" 4.0
    (Fu_saturation.effective_width fu ~mix ~width:8);
  Alcotest.(check bool) "binding class is load" true
    (Fu_saturation.binding_class fu ~mix = Some Opclass.Load)

let test_fu_unbounded_is_infinite () =
  let mix = fun _ -> 0.1 in
  Alcotest.(check bool) "infinite" true
    (Float.is_integer (Fu_saturation.saturation_ipc Fu_set.unbounded ~mix) = false
    || Fu_saturation.saturation_ipc Fu_set.unbounded ~mix = infinity)

let test_fu_limits_slow_machine () =
  let p = Lazy.force gzip in
  let base = Simulate.run ideal p ~n:30000 in
  let limited = Config.with_fu_limits (Fu_set.make ~alu:1 ~load:1 ()) ideal in
  let slow = Simulate.run limited p ~n:30000 in
  Alcotest.(check bool) "structural hazard costs cycles" true
    (slow.Stats.cycles > base.Stats.cycles)

let test_fu_limits_model_tracks_sim () =
  (* Predicted saturation vs the simulator's ideal IPC under limits. *)
  let p = Lazy.force gzip in
  let n = 50000 in
  let fu = Fu_set.make ~load:1 ~store:1 () in
  let machine = Config.with_fu_limits fu ideal in
  let sim_ipc = Stats.ipc (Simulate.run machine p ~n) in
  let profile = Fom_analysis.Profile.run ~cache:Fom_cache.Hierarchy.all_ideal p ~n in
  let bound = Fu_saturation.effective_width fu ~mix:(mix_of profile) ~width:4 in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.2f <= bound %.2f" sim_ipc bound)
    true
    (sim_ipc <= bound +. 0.05);
  Alcotest.(check bool) "bound is tight-ish" true (sim_ipc > 0.7 *. bound)

(* --- fetch buffer --- *)

let test_fetch_buffer_hides_imiss () =
  let p = Lazy.force (lazy (program "perlbmk")) in
  let base = Config.with_cache Fom_cache.Hierarchy.ideal_except_l1i ideal in
  let buffered = Config.with_fetch_buffer 32 base in
  let plain = Simulate.run base p ~n:50000 in
  let with_buffer = Simulate.run buffered p ~n:50000 in
  Alcotest.(check bool) "misses occur" true (plain.Stats.l1i_misses > 50);
  Alcotest.(check bool)
    (Printf.sprintf "buffer helps: %d <= %d" with_buffer.Stats.cycles plain.Stats.cycles)
    true
    (with_buffer.Stats.cycles <= plain.Stats.cycles)

let test_fetch_buffer_model_reduces_penalty () =
  let square4 = Iw.make ~alpha:1.0 ~beta:0.5 ~issue_width:4.0 () in
  let plain = Penalties.icache_miss square4 Params.baseline ~delay:8 in
  let buffered =
    Penalties.icache_miss square4 { Params.baseline with Params.fetch_buffer = 16 } ~delay:8
  in
  Alcotest.(check (float 1e-9)) "covers buffer/width cycles" (plain -. 4.0) buffered

(* --- partitioned issue windows --- *)

let test_clusters_one_is_unified () =
  (* clusters = 1 must be bit-identical to the unified machine. *)
  let p = Lazy.force gzip in
  let unified = Simulate.run Config.baseline p ~n:20000 in
  let one = Simulate.run (Config.with_clusters 1 Config.baseline) p ~n:20000 in
  Alcotest.(check int) "same cycles" unified.Stats.cycles one.Stats.cycles

let test_clusters_degrade_monotonically () =
  let p = Lazy.force gzip in
  let ipc clusters =
    Stats.ipc (Simulate.run (Config.with_clusters clusters ideal) p ~n:30000)
  in
  let i1 = ipc 1 and i2 = ipc 2 and i4 = ipc 4 in
  Alcotest.(check bool)
    (Printf.sprintf "bypass costs: %.2f >= %.2f >= %.2f" i1 i2 i4)
    true
    (i1 >= i2 -. 0.01 && i2 >= i4 -. 0.01);
  Alcotest.(check bool) "4 clusters visibly slower" true (i4 < i1 -. 0.1)

let test_clustering_model_latency () =
  let penalty = Fom_model.Clustering.latency_penalty ~clusters:4 () in
  Alcotest.(check (float 1e-9)) "3/4 of a bypass cycle" 0.75 penalty;
  Alcotest.(check (float 1e-9)) "unified is free"
    0.0
    (Fom_model.Clustering.latency_penalty ~clusters:1 ());
  let base = Iw.make ~alpha:1.0 ~beta:0.5 ~issue_width:4.0 () in
  let clustered = Fom_model.Clustering.effective_characteristic ~clusters:2 base in
  Alcotest.(check bool) "steady ipc drops when unsaturated" true
    (Iw.steady_state_ipc clustered ~window:8 < Iw.steady_state_ipc base ~window:8)

(* --- extra predictors --- *)

let run_predictor spec outcomes =
  let p = Predictor.create spec in
  List.fold_left
    (fun wrong (pc, taken) -> if Predictor.observe p ~pc ~taken then wrong else wrong + 1)
    0 outcomes

let test_local_learns_per_branch_pattern () =
  (* Two interleaved branches with different short patterns: local
     history separates them; gshare's global history sees an
     interleaving. *)
  let outcomes =
    List.concat
      (List.init 2000 (fun i ->
           [ (0x100, i mod 3 <> 2); (0x200, i mod 4 <> 3) ]))
  in
  let local_wrong = run_predictor (Predictor.Local 12) outcomes in
  Alcotest.(check bool)
    (Printf.sprintf "local learns interleaved patterns (%d wrong)" local_wrong)
    true
    (local_wrong < 300)

let test_tournament_beats_components () =
  (* A mixture of biased branches (bimodal-friendly) and one periodic
     branch (gshare-friendly): the tournament should be within, or
     better than, the best single component. *)
  let rng = Fom_util.Rng.create 77 in
  let outcomes =
    List.concat
      (List.init 4000 (fun i ->
           [
             (0x40, Fom_util.Rng.bernoulli rng 0.95);
             (0x80, i mod 3 <> 2);
           ]))
  in
  let bimodal = run_predictor (Predictor.Bimodal 13) outcomes in
  let gshare = run_predictor (Predictor.Gshare 13) outcomes in
  let tournament = run_predictor (Predictor.Tournament 13) outcomes in
  let best = min bimodal gshare in
  Alcotest.(check bool)
    (Printf.sprintf "tournament %d near best component %d" tournament best)
    true
    (tournament <= best + (best / 4) + 50)

let test_new_predictors_in_machine () =
  List.iter
    (fun spec ->
      let config = Config.with_predictor spec Config.baseline in
      let stats = Simulate.run config (Lazy.force gzip) ~n:20000 in
      Alcotest.(check bool) "completes with sane ipc" true
        (Stats.ipc stats > 0.1 && Stats.ipc stats <= 4.0))
    [ Predictor.Local 12; Predictor.Tournament 12 ]

let suite =
  ( "extensions",
    [
      Alcotest.test_case "tlb hits after fill" `Quick test_tlb_hits_after_fill;
      Alcotest.test_case "tlb capacity eviction" `Quick test_tlb_capacity_eviction;
      Alcotest.test_case "tlb slows machine" `Quick test_tlb_slows_machine;
      Alcotest.test_case "tlb model tracks sim" `Slow test_tlb_model_tracks_sim;
      Alcotest.test_case "fu saturation math" `Quick test_fu_saturation_math;
      Alcotest.test_case "fu unbounded" `Quick test_fu_unbounded_is_infinite;
      Alcotest.test_case "fu limits slow machine" `Quick test_fu_limits_slow_machine;
      Alcotest.test_case "fu model tracks sim" `Quick test_fu_limits_model_tracks_sim;
      Alcotest.test_case "clusters=1 is unified" `Quick test_clusters_one_is_unified;
      Alcotest.test_case "clusters degrade monotonically" `Quick
        test_clusters_degrade_monotonically;
      Alcotest.test_case "clustering model latency" `Quick test_clustering_model_latency;
      Alcotest.test_case "fetch buffer hides imiss" `Quick test_fetch_buffer_hides_imiss;
      Alcotest.test_case "fetch buffer model" `Quick test_fetch_buffer_model_reduces_penalty;
      Alcotest.test_case "local predictor" `Quick test_local_learns_per_branch_pattern;
      Alcotest.test_case "tournament predictor" `Quick test_tournament_beats_components;
      Alcotest.test_case "new predictors in machine" `Quick test_new_predictors_in_machine;
    ] )
