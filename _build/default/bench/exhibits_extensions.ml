(* Extension benches: the paper's Section 7 future-work features,
   implemented here — data-TLB misses, limited functional units, and
   instruction fetch buffers — each checked model-vs-simulation. *)

module Table = Fom_util.Table
module Stats = Fom_uarch.Stats
module Config = Fom_uarch.Config
module Tlb = Fom_cache.Tlb
module Fu_set = Fom_isa.Fu_set
module Params = Fom_model.Params
module Cpi = Fom_model.Cpi
module Penalties = Fom_model.Penalties

(* Data-TLB misses added to the baseline machine. *)
let tlb ctx =
  Context.heading "Extension: data-TLB misses (Section 7, item 4)";
  let spec = { Tlb.entries = 64; page_bits = 13; walk_latency = 30 } in
  let params = { Params.baseline with Params.dtlb_walk = spec.Tlb.walk_latency } in
  let machine = Config.with_dtlb spec Context.real in
  let rows =
    List.map
      (fun name ->
        let sim = Context.sim ctx ~variant:"real-tlb" ~config:machine name in
        let inputs =
          Fom_analysis.Characterize.inputs ~dtlb:spec ~iw_instructions:ctx.Context.n_iw ~params
            (Context.program ctx name) ~n:ctx.Context.n_profile
        in
        let b = Cpi.evaluate params inputs in
        let err = 100.0 *. (Cpi.total b -. Stats.cpi sim) /. Stats.cpi sim in
        [
          name;
          Table.float_cell ~decimals:2
            (1000.0 *. inputs.Fom_model.Inputs.dtlb_misses_per_instr);
          Table.float_cell b.Cpi.dtlb;
          Table.float_cell (Stats.cpi sim);
          Table.float_cell (Cpi.total b);
          Table.float_cell ~decimals:1 err;
        ])
      [ "gzip"; "mcf"; "twolf"; "vpr"; "gcc" ]
  in
  Context.table ctx ~name:"ext-tlb"
    ~header:[ "benchmark"; "tlb miss/ki"; "model TLB CPI"; "sim CPI"; "model CPI"; "err%" ]
    rows;
  Context.note
    "TLB walks behave like short long-misses; the term is first-order (walk x group factor)."

(* Limited functional units lower the saturation level. *)
let fu_limits ctx =
  Context.heading "Extension: limited functional units (Section 7, item 1)";
  let sets =
    [
      ("unbounded", Fu_set.unbounded);
      ("1 alu", Fu_set.make ~alu:1 ());
      ("2 alu, 1 load", Fu_set.make ~alu:2 ~load:1 ());
      ("1 alu, 1 load, 1 store", Fu_set.make ~alu:1 ~load:1 ~store:1 ());
    ]
  in
  List.iter
    (fun name ->
      let program = Context.program ctx name in
      let _, profile, _ = Context.characterization ctx name in
      let mix = Fom_analysis.Profile.class_fraction profile in
      Context.note "%s:" name;
      let rows =
        List.map
          (fun (label, fu) ->
            let machine = Config.with_fu_limits fu (Config.ideal Config.baseline) in
            let sim = Fom_uarch.Simulate.run machine program ~n:(ctx.Context.n_sim / 2) in
            let bound = Fom_model.Fu_saturation.effective_width fu ~mix ~width:4 in
            let binding =
              match Fom_model.Fu_saturation.binding_class fu ~mix with
              | Some cls -> Fom_isa.Opclass.to_string cls
              | None -> "-"
            in
            [
              label;
              Table.float_cell ~decimals:2 (Stats.ipc sim);
              Table.float_cell ~decimals:2 bound;
              binding;
            ])
          sets
      in
      Context.table ctx ~name:("ext-fu-" ^ name)
        ~header:[ "FU set"; "sim ideal IPC"; "model saturation"; "binding class" ] rows)
    [ "gzip"; "vpr" ]

(* Fetch buffers hide part of the I-cache miss delay. *)
let fetch_buffer ctx =
  Context.heading "Extension: instruction fetch buffers (Section 7, item 2)";
  let buffers = [ 0; 16; 32; 64 ] in
  List.iter
    (fun name ->
      Context.note "%s (I-cache real, delay 8; everything else ideal):" name;
      let program = Context.program ctx name in
      let rows =
        List.map
          (fun buffer ->
            let machine =
              Config.with_fetch_buffer buffer
                (Config.with_cache Fom_cache.Hierarchy.ideal_except_l1i
                   (Config.ideal Config.baseline))
            in
            let base = Config.ideal Config.baseline in
            let faulty = Fom_uarch.Simulate.run machine program ~n:(ctx.Context.n_sim / 2) in
            let ideal = Fom_uarch.Simulate.run base program ~n:(ctx.Context.n_sim / 2) in
            let events = faulty.Stats.l1i_misses + faulty.Stats.l2i_misses in
            let sim_penalty =
              if events = 0 then 0.0
              else float_of_int (faulty.Stats.cycles - ideal.Stats.cycles) /. float_of_int events
            in
            let params = { Params.baseline with Params.fetch_buffer = buffer } in
            let _, _, inputs = Context.characterization ctx name in
            let iw = Cpi.characteristic params inputs in
            let model_penalty = Penalties.icache_miss iw params ~delay:8 in
            [
              string_of_int buffer;
              Table.float_cell ~decimals:1 sim_penalty;
              Table.float_cell ~decimals:1 model_penalty;
            ])
          buffers
      in
      Context.table ctx ~name:("ext-buffer-" ^ name)
        ~header:[ "buffer entries"; "sim penalty/miss"; "model penalty/miss" ] rows)
    [ "perlbmk"; "eon" ]

(* Partitioned issue windows: round-robin steering, per-cluster issue
   width, one-cycle cross-cluster bypass. *)
let clustering ctx =
  Context.heading "Extension: partitioned issue windows (Section 7, item 3)";
  List.iter
    (fun name ->
      Context.note "%s (everything ideal; window 48, width 4):" name;
      let program = Context.program ctx name in
      let _, profile, inputs = Context.characterization ctx name in
      ignore profile;
      let rows =
        List.map
          (fun clusters ->
            let machine =
              Config.with_clusters clusters (Config.ideal Config.baseline)
            in
            let sim = Fom_uarch.Simulate.run machine program ~n:(ctx.Context.n_sim / 2) in
            let iw =
              Fom_model.Clustering.effective_characteristic ~clusters
                (Cpi.characteristic Params.baseline inputs)
            in
            let model =
              Fom_model.Iw_characteristic.steady_state_ipc iw
                ~window:Params.baseline.Params.window_size
            in
            [
              string_of_int clusters;
              Table.float_cell ~decimals:2 (Stats.ipc sim);
              Table.float_cell ~decimals:2 model;
            ])
          [ 1; 2; 4 ]
      in
      Context.table ctx ~name:("ext-cluster-" ^ name)
        ~header:[ "clusters"; "sim ideal IPC"; "model steady IPC" ] rows)
    [ "gzip"; "vortex"; "vpr" ]

(* Program phases: characterize each phase separately and combine,
   versus one monolithic characterization of the mixed trace. *)
let phases ctx =
  Context.heading "Extension: program phases (Section 7)";
  let phase_len = ctx.Context.n_sim / 2 in
  let schedule =
    [
      { Fom_trace.Phases.config = Fom_workloads.Spec2000.find "gzip"; instructions = phase_len };
      { Fom_trace.Phases.config = Fom_workloads.Spec2000.find "mcf"; instructions = phase_len };
    ]
  in
  let source = Fom_trace.Phases.source schedule in
  let n = 2 * phase_len in
  let sim = Fom_uarch.Simulate.run_source Config.baseline source ~n in
  let sim_cpi = Stats.cpi sim in
  (* Monolithic: one characterization of the mixed trace. *)
  let monolithic_inputs =
    Fom_analysis.Characterize.inputs_of_source ~iw_instructions:ctx.Context.n_iw
      ~params:Params.baseline source ~n
  in
  let monolithic = Cpi.total (Cpi.evaluate Params.baseline monolithic_inputs) in
  (* Phased: per-phase characterization, instruction-weighted. *)
  let phased_breakdowns =
    List.map
      (fun (phase : Fom_trace.Phases.phase) ->
        let _, _, inputs = Context.characterization ctx phase.Fom_trace.Phases.config.Fom_trace.Config.name in
        (float_of_int phase.Fom_trace.Phases.instructions, Cpi.evaluate Params.baseline inputs))
      schedule
  in
  let phased = Cpi.total (Fom_model.Phased.combine phased_breakdowns) in
  let err x = 100.0 *. (x -. sim_cpi) /. sim_cpi in
  Context.table ctx ~name:"ext-phases"
    ~header:[ "estimate"; "CPI"; "err%" ]
    [
      [ "simulation (gzip+mcf schedule)"; Table.float_cell sim_cpi; "-" ];
      [ "phased model (per-phase inputs)"; Table.float_cell phased;
        Table.float_cell ~decimals:1 (err phased) ];
      [ "monolithic model (mixed-trace inputs)"; Table.float_cell monolithic;
        Table.float_cell ~decimals:1 (err monolithic) ];
    ];
  Context.note
    "Both estimates are first-order. Per-phase inputs keep each regime's IW fit and miss \
     grouping sharp but, measured in isolation, miss the cross-phase cache pollution the \
     simulation pays at every boundary; the monolithic inputs see the pollution but blur \
     the regimes. Closing that gap (phase-aware profiling with warm state) is exactly the \
     future work the paper sketches."
