(* The reproduction harness: regenerates every data-bearing table and
   figure of Karkhanis & Smith, "A First-Order Superscalar Processor
   Model" (ISCA 2004), plus the ablation benches from DESIGN.md and a
   Bechamel timing suite.

   Usage: dune exec bench/main.exe -- [--quick] [--scale X]
          [--only table1,fig15,...] [--list] [--no-timing] *)

let exhibits : (string * string * (Context.t -> unit)) list =
  [
    ("table1", "power-law parameters and average latency", Exhibits_iw.table1);
    ("fig2", "independence of miss-event penalties", Exhibits_events.fig2);
    ("fig4", "IW curves, all benchmarks", Exhibits_iw.fig4);
    ("fig5", "linear IW fits (gzip, vortex, vpr)", Exhibits_iw.fig5);
    ("fig6", "IW characteristic with limited issue width", Exhibits_iw.fig6);
    ("fig8", "isolated branch misprediction transient", Exhibits_iw.fig8);
    ("fig9", "penalty per branch misprediction", Exhibits_events.fig9);
    ("fig11", "penalty per I-cache miss", Exhibits_events.fig11);
    ("fig14", "penalty per long D-cache miss", Exhibits_events.fig14);
    ("fig15", "model vs simulation CPI", Exhibits_overall.fig15);
    ("fig16", "CPI stack", Exhibits_overall.fig16);
    ("fig17a", "IPC vs pipeline depth", Exhibits_trends.fig17a);
    ("fig17b", "BIPS vs pipeline depth, optimal depths", Exhibits_trends.fig17b);
    ("fig18", "mispredict distance vs issue width", Exhibits_trends.fig18);
    ("fig19", "issue ramp between mispredictions", Exhibits_trends.fig19);
    ("fig19-sim", "measured vs analytic issue ramp", Exhibits_trends.fig19_sim);
    ("ext-tlb", "data-TLB extension, model vs sim", Exhibits_extensions.tlb);
    ("ext-fu", "limited functional units extension", Exhibits_extensions.fu_limits);
    ("ext-buffer", "fetch-buffer extension", Exhibits_extensions.fetch_buffer);
    ("ext-cluster", "partitioned issue windows extension", Exhibits_extensions.clustering);
    ("ext-phases", "program phases extension", Exhibits_extensions.phases);
    ("ablation-model", "model variant errors", Exhibits_ablation.model_variants);
    ("ablation-fit", "power-law fit vs window range", Exhibits_ablation.fit_windows);
    ("ablation-little", "Little's-law accuracy", Exhibits_ablation.littles_law);
  ]

type options = {
  mutable scale : float;
  mutable only : string list option;
  mutable list_only : bool;
  mutable timing : bool;
  mutable csv_dir : string option;
}

let parse_args () =
  let options =
    { scale = 1.0; only = None; list_only = false; timing = true; csv_dir = None }
  in
  let split s = String.split_on_char ',' s |> List.map String.trim in
  let spec =
    [
      ("--quick", Arg.Unit (fun () -> options.scale <- 0.2), " run at 20% scale");
      ("--scale", Arg.Float (fun x -> options.scale <- x), "X instruction-count scale factor");
      ( "--only",
        Arg.String (fun s -> options.only <- Some (split s)),
        "LIST comma-separated exhibit names" );
      ("--list", Arg.Unit (fun () -> options.list_only <- true), " list exhibits and exit");
      ("--no-timing", Arg.Unit (fun () -> options.timing <- false), " skip the Bechamel suite");
      ( "--csv",
        Arg.String (fun dir -> options.csv_dir <- Some dir),
        "DIR also write each exhibit's tables as CSV files" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "fom reproduction harness";
  options

let () =
  let options = parse_args () in
  if options.list_only then
    List.iter (fun (name, descr, _) -> Printf.printf "%-16s %s\n" name descr) exhibits
  else begin
    let selected =
      match options.only with
      | None -> exhibits
      | Some names ->
          List.iter
            (fun n ->
              if not (List.exists (fun (name, _, _) -> name = n) exhibits) then begin
                Printf.eprintf "unknown exhibit %S (try --list)\n" n;
                exit 2
              end)
            names;
          List.filter (fun (name, _, _) -> List.mem name names) exhibits
    in
    Printf.printf
      "First-order superscalar model reproduction harness (scale %.2f, %d exhibits)\n"
      options.scale (List.length selected);
    let ctx = Context.create ?csv_dir:options.csv_dir ~scale:options.scale () in
    let started = Unix.gettimeofday () in
    List.iter
      (fun (name, _, run) ->
        let t0 = Unix.gettimeofday () in
        run ctx;
        Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0))
      selected;
    if options.timing then Timing.run ();
    Printf.printf "\nTotal harness time: %.1fs\n" (Unix.gettimeofday () -. started)
  end
