(* Ablation benches for the design choices called out in DESIGN.md:
   the long-miss grouping method, the branch-penalty mode, and the
   rob-fill correction. *)

module Table = Fom_util.Table
module Stats = Fom_uarch.Stats
module Params = Fom_model.Params
module Cpi = Fom_model.Cpi
module Profile = Fom_analysis.Profile

let pct model sim = (model -. sim) /. sim *. 100.0

(* How much each refinement contributes to Figure 15 accuracy. *)
let model_variants ctx =
  Context.heading "Ablation: model variants vs simulation (CPI error %)";
  let header =
    [ "benchmark"; "refined"; "paper grouping"; "paper branch 7.5"; "paper delay" ]
  in
  let sums = Array.make 4 0.0 in
  let rows =
    List.map
      (fun name ->
        let sim = Stats.cpi (Context.sim ctx ~variant:"real" ~config:Context.real name) in
        let _, _, aware = Context.characterization ctx name in
        let _, _, naive = Context.characterization ~grouping:Profile.Paper_naive ctx name in
        let refined = Cpi.total (Cpi.evaluate Params.baseline aware) in
        let with_naive = Cpi.total (Cpi.evaluate Params.baseline naive) in
        let with_const =
          Cpi.total (Cpi.evaluate ~branch_mode:Cpi.Paper_constant Params.baseline aware)
        in
        let with_delay =
          Cpi.total (Cpi.evaluate ~dcache_mode:Cpi.Paper_delay Params.baseline aware)
        in
        let errs = [| pct refined sim; pct with_naive sim; pct with_const sim; pct with_delay sim |] in
        Array.iteri (fun i e -> sums.(i) <- sums.(i) +. Float.abs e) errs;
        name :: List.map (fun e -> Table.float_cell ~decimals:1 e) (Array.to_list errs))
      (Context.names ctx)
  in
  Context.table ctx ~name:"ablation-model" ~header rows;
  let n = float_of_int (List.length (Context.names ctx)) in
  Context.note
    "mean |err|: refined %.1f%%, paper-naive grouping %.1f%%, 7.5-cycle branch %.1f%%, no rob-fill %.1f%%"
    (sums.(0) /. n) (sums.(1) /. n) (sums.(2) /. n) (sums.(3) /. n)

(* Sensitivity of the power-law fit to the measured window range. *)
let fit_windows ctx =
  Context.heading "Ablation: power-law fit vs window range (gzip)";
  let program = Context.program ctx "gzip" in
  let ranges =
    [
      ("4..32", [ 4; 8; 16; 32 ]);
      ("4..256", [ 4; 8; 16; 32; 64; 128; 256 ]);
      ("32..256", [ 32; 64; 128; 256 ]);
    ]
  in
  let rows =
    List.map
      (fun (label, windows) ->
        let curve = Fom_analysis.Iw_curve.measure ~windows ~n:ctx.Context.n_iw program in
        [
          label;
          Table.float_cell ~decimals:2 (Fom_analysis.Iw_curve.alpha curve);
          Table.float_cell ~decimals:2 (Fom_analysis.Iw_curve.beta curve);
          Table.float_cell ~decimals:3 curve.Fom_analysis.Iw_curve.fit.Fom_util.Fit.r2;
        ])
      ranges
  in
  Context.table ctx ~name:"ablation-fit" ~header:[ "windows"; "alpha"; "beta"; "r2" ] rows

(* Little's law check: measured issue rate at real latencies vs the
   unit-latency rate divided by the measured mean latency. *)
let littles_law ctx =
  Context.heading "Ablation: Little's-law latency correction accuracy";
  let header = [ "benchmark"; "measured I_L"; "I_1 / L"; "err%" ] in
  let rows =
    List.map
      (fun name ->
        let program = Context.program ctx name in
        let _, profile, _ = Context.characterization ctx name in
        let window = 64 in
        let unit = Fom_analysis.Iw_sim.ipc program ~window ~n:ctx.Context.n_iw in
        let real =
          Fom_analysis.Iw_sim.ipc ~latencies:Fom_isa.Latency.default program ~window
            ~n:ctx.Context.n_iw
        in
        (* The idealized simulation has perfect caches, so compare
           against the pure mix-weighted latency (no short misses). *)
        let mean_latency =
          Fom_isa.Latency.average Fom_isa.Latency.default (Profile.class_fraction profile)
        in
        let predicted = unit /. mean_latency in
        [
          name;
          Table.float_cell real;
          Table.float_cell predicted;
          Table.float_cell ~decimals:1 (pct predicted real);
        ])
      [ "gzip"; "vortex"; "vpr"; "mcf" ]
  in
  Context.table ctx ~name:"ablation-little" ~header rows
