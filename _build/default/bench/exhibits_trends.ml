(* Figures 17, 18, 19: the Section 6 trend studies. *)

module Table = Fom_util.Table
module Trends = Fom_model.Trends

let widths_17 = [ 2; 3; 4; 8 ]
let depth_samples = [ 1; 2; 5; 10; 15; 20; 30; 40; 55; 70; 85; 100 ]
let all_depths = List.init 100 (fun i -> i + 1)

(* Figure 17a: IPC vs front-end depth; the advantage of wider issue
   erodes with depth. *)
let fig17a ctx =
  Context.heading "Figure 17a: IPC vs front-end pipeline depth (1 branch in 5, 5% mispredicted)";
  let rows_by_width = Trends.ipc_vs_depth ~widths:widths_17 ~depths:depth_samples () in
  let header = "depth" :: List.map (fun w -> Printf.sprintf "issue %d" w) widths_17 in
  let rows =
    List.map
      (fun depth ->
        string_of_int depth
        :: List.map
             (fun width -> Table.float_cell ~decimals:2 (List.assoc depth (List.assoc width rows_by_width)))
             widths_17)
      depth_samples
  in
  Context.table ctx ~name:"fig17a" ~header rows

(* Figure 17b: BIPS with cycle time 8200/depth + 90 ps; the optimum
   depth (paper: about 55 stages for width 3) shifts shorter as issue
   widens. *)
let fig17b ctx =
  Context.heading "Figure 17b: BIPS vs front-end depth (8200 ps logic, 90 ps overhead)";
  let rows_by_width = Trends.bips_vs_depth ~widths:widths_17 ~depths:all_depths () in
  let header = "depth" :: List.map (fun w -> Printf.sprintf "issue %d" w) widths_17 in
  let rows =
    List.map
      (fun depth ->
        string_of_int depth
        :: List.map
             (fun width -> Table.float_cell ~decimals:2 (List.assoc depth (List.assoc width rows_by_width)))
             widths_17)
      depth_samples
  in
  Context.table ctx ~name:"fig17b" ~header rows;
  List.iter
    (fun width ->
      Context.note "issue %d: optimal front-end depth %d stages" width
        (Trends.optimal_depth (List.assoc width rows_by_width)))
    widths_17;
  Context.note "(paper/Sprangle-Carmean: about 55 stages at width 3, shorter for wider issue)"

(* Figure 18: instructions between mispredictions needed to spend a
   given fraction of cycles within 12.5% of the issue width; the
   requirement grows as the square of the width. *)
let fig18 ctx =
  Context.heading
    "Figure 18: instructions between mispredictions vs time near the issue width";
  let widths = [ 4; 8; 16 ] in
  let fractions = [ 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let header =
    "% time near width"
    :: List.map (fun w -> Printf.sprintf "issue %d (>=%.1f)" w (0.875 *. float_of_int w)) widths
  in
  let rows =
    List.map
      (fun fraction ->
        Table.float_cell ~decimals:0 (fraction *. 100.0)
        :: List.map
             (fun width ->
               string_of_int (Trends.mispred_distance_for_fraction ~width ~fraction ()))
             widths)
      fractions
  in
  Context.table ctx ~name:"fig18" ~header rows;
  let n lo = Trends.mispred_distance_for_fraction ~width:lo ~fraction:0.3 () in
  Context.note "doubling the width multiplies the requirement by %.1fx and then %.1fx (paper: 4x)"
    (float_of_int (n 8) /. float_of_int (n 4))
    (float_of_int (n 16) /. float_of_int (n 8))

(* Figure 19 cross-validation: the *measured* issue ramp after
   misprediction resolutions in the detailed simulator, against the
   analytic trajectory on the workload's own characteristic. The
   paper derives the ramp analytically; recording it from simulation
   checks the transient engine directly. *)
let fig19_sim ctx =
  Context.heading "Figure 19 (validation): measured vs analytic issue ramp (gzip)";
  let name = "gzip" in
  let program = Context.program ctx name in
  let machine =
    Fom_uarch.Machine.create
      (Fom_uarch.Config.with_predictor Fom_branch.Predictor.default_spec
         (Fom_uarch.Config.ideal Fom_uarch.Config.baseline))
      (Fom_trace.Source.fresh (Fom_trace.Source.of_program program))
  in
  let horizon = 20 in
  let _, issued, resolves = Fom_uarch.Machine.run_recorded machine ~n:ctx.Context.n_sim in
  (* Average the issue rate over the [horizon] cycles following each
     resolution (skipping warmup and truncated windows). *)
  let sums = Array.make horizon 0.0 in
  let samples = ref 0 in
  Array.iter
    (fun r ->
      if r > 1000 && r + horizon < Array.length issued then begin
        incr samples;
        for k = 0 to horizon - 1 do
          sums.(k) <- sums.(k) +. float_of_int issued.(r + k)
        done
      end)
    resolves;
  let measured = Array.map (fun s -> s /. float_of_int (Stdlib.max 1 !samples)) sums in
  let _, _, inputs = Context.characterization ctx name in
  let iw =
    Fom_model.Iw_characteristic.make ~alpha:inputs.Fom_model.Inputs.alpha
      ~beta:inputs.Fom_model.Inputs.beta ~avg_latency:inputs.Fom_model.Inputs.avg_latency ()
  in
  let interval =
    Stdlib.max 10
      (int_of_float (1.0 /. Float.max 1e-6 inputs.Fom_model.Inputs.mispredictions_per_instr))
  in
  let analytic = Trends.issue_trajectory ~iw ~interval ~width:4 () in
  let rows =
    List.init horizon (fun c ->
        [
          string_of_int c;
          Table.float_cell ~decimals:2 measured.(c);
          (if c < Array.length analytic then Table.float_cell ~decimals:2 analytic.(c) else "-");
        ])
  in
  Context.table ctx ~name:"fig19-sim"
    ~header:[ "cycle after resolution"; "sim issue rate"; "model issue rate" ]
    rows;
  Context.note
    "%d resolution windows averaged; both show dead front-end fill then the leaky-bucket ramp."
    !samples

(* Figure 19: issue ramp between two mispredictions. *)
let fig19 ctx =
  Context.heading "Figure 19: per-cycle issue rate between two mispredictions";
  let widths = [ 2; 3; 4; 8 ] in
  let trajectories = List.map (fun w -> (w, Trends.issue_trajectory ~width:w ())) widths in
  let cycles = List.init 40 (fun i -> i) in
  let header = "cycle" :: List.map (fun w -> Printf.sprintf "issue %d" w) widths in
  let rows =
    List.map
      (fun c ->
        string_of_int c
        :: List.map
             (fun (_, t) ->
               if c < Array.length t then Table.float_cell ~decimals:2 t.(c) else "-")
             trajectories)
      cycles
  in
  Context.table ctx ~name:"fig19" ~header rows;
  List.iter
    (fun (w, t) ->
      Context.note "issue %d peaks at %.2f instructions per cycle" w
        (Array.fold_left Float.max 0.0 t))
    trajectories
