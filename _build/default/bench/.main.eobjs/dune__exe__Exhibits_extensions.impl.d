bench/exhibits_extensions.ml: Context Fom_analysis Fom_cache Fom_isa Fom_model Fom_trace Fom_uarch Fom_util Fom_workloads List
