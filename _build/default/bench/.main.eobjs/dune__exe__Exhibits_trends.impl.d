bench/exhibits_trends.ml: Array Context Float Fom_branch Fom_model Fom_trace Fom_uarch Fom_util List Printf Stdlib
