bench/context.ml: Filename Fom_analysis Fom_branch Fom_cache Fom_model Fom_trace Fom_uarch Fom_util Fom_workloads Hashtbl List Option Printf Sys
