bench/exhibits_overall.ml: Array Context Float Fom_model Fom_uarch Fom_util List
