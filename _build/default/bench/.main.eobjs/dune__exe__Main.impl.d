bench/main.ml: Arg Context Exhibits_ablation Exhibits_events Exhibits_extensions Exhibits_iw Exhibits_overall Exhibits_trends List Printf String Timing Unix
