bench/exhibits_ablation.ml: Array Context Float Fom_analysis Fom_isa Fom_model Fom_uarch Fom_util List
