bench/main.mli:
