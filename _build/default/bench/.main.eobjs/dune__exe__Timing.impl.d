bench/timing.ml: Analyze Bechamel Bechamel_notty Benchmark Context Fom_analysis Fom_model Fom_trace Fom_uarch Fom_workloads Instance List Measure Notty_unix Staged Test Time Toolkit
