bench/exhibits_iw.ml: Array Context Float Fom_analysis Fom_model Fom_util List Printf
