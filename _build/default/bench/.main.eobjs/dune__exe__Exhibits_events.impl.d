bench/exhibits_events.ml: Array Context Float Fom_analysis Fom_cache Fom_model Fom_uarch Fom_util List Printf String
