(* Shared state for the experiment harness: workload programs, scale
   settings, and memoized simulation/characterization results so that
   exhibits sharing a configuration (e.g. the all-ideal baseline) pay
   for it once. *)

module Config = Fom_uarch.Config
module Stats = Fom_uarch.Stats
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor
module Params = Fom_model.Params

type t = {
  n_sim : int;  (** instructions per detailed simulation *)
  n_profile : int;  (** instructions per functional profile *)
  n_iw : int;  (** instructions per IW-curve point *)
  csv_dir : string option;  (** where to mirror tables as CSV files *)
  programs : (string * Fom_trace.Program.t) list;
  sims : (string, Stats.t) Hashtbl.t;
  inputs : (string, Fom_analysis.Iw_curve.t * Fom_analysis.Profile.t * Fom_model.Inputs.t) Hashtbl.t;
}

let create ?csv_dir ~scale () =
  assert (scale > 0.0);
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  let s x = int_of_float (float_of_int x *. scale) in
  {
    n_sim = s 200_000;
    n_profile = s 200_000;
    n_iw = s 30_000;
    csv_dir;
    programs =
      List.map
        (fun config -> (config.Fom_trace.Config.name, Fom_trace.Program.generate config))
        Fom_workloads.Spec2000.all;
    sims = Hashtbl.create 64;
    inputs = Hashtbl.create 16;
  }

let names t = List.map fst t.programs
let program t name = List.assoc name t.programs

(* Machine variants used across exhibits. *)
let ideal = Config.ideal Config.baseline
let real = Config.baseline
let bp_only = Config.with_predictor Predictor.default_spec ideal
let icache_only = Config.with_cache Hierarchy.ideal_except_l1i ideal
let dcache_only = Config.with_cache Hierarchy.ideal_except_data ideal
let fig14_machine = Config.with_cache Hierarchy.fig14 ideal

let sim t ~variant ~config name =
  let key = Printf.sprintf "%s/%s/%d" variant name t.n_sim in
  match Hashtbl.find_opt t.sims key with
  | Some stats -> stats
  | None ->
      let stats = Fom_uarch.Simulate.run config (program t name) ~n:t.n_sim in
      Hashtbl.add t.sims key stats;
      stats

let characterization ?(grouping = Fom_analysis.Profile.Dependence_aware) t name =
  let key =
    Printf.sprintf "%s/%s" name
      (match grouping with
      | Fom_analysis.Profile.Dependence_aware -> "aware"
      | Fom_analysis.Profile.Paper_naive -> "naive")
  in
  match Hashtbl.find_opt t.inputs key with
  | Some result -> result
  | None ->
      let result =
        Fom_analysis.Characterize.curve_and_inputs ~iw_instructions:t.n_iw ~grouping
          ~params:Params.baseline (program t name) ~n:t.n_profile
      in
      Hashtbl.add t.inputs key result;
      result

let heading title = print_string (Fom_util.Table.heading title)

let note fmt = Printf.printf (fmt ^^ "\n")

(* Print a table and, when --csv is active, mirror it to
   <csv_dir>/<name>.csv. *)
let table t ~name ~header rows =
  Fom_util.Table.print ~header rows;
  Option.iter
    (fun dir ->
      Fom_util.Csv.write_file ~path:(Filename.concat dir (name ^ ".csv")) ~header rows)
    t.csv_dir
