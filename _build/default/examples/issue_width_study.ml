(* Issue-width trend study (paper Section 6.2 / Figures 18-19).

     dune exec examples/issue_width_study.exe -- [workload]

   Using a measured workload characteristic, the example asks the
   paper's question: how much better must the branch predictor get
   (measured as instructions between mispredictions) to spend a given
   fraction of cycles near the machine's peak issue rate — and how
   does the requirement scale as the issue width doubles? *)

module Trends = Fom_model.Trends
module Iw = Fom_model.Iw_characteristic
module Table = Fom_util.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gzip" in
  let config = Fom_workloads.Spec2000.find name in
  let program = Fom_trace.Program.generate config in
  let params = Fom_model.Params.baseline in
  let inputs = Fom_analysis.Characterize.inputs ~params program ~n:100_000 in
  let iw =
    Iw.make ~alpha:inputs.Fom_model.Inputs.alpha ~beta:inputs.Fom_model.Inputs.beta
      ~avg_latency:inputs.Fom_model.Inputs.avg_latency ()
  in
  let current_distance =
    int_of_float (1.0 /. Float.max 1e-6 inputs.Fom_model.Inputs.mispredictions_per_instr)
  in
  Printf.printf "%s: alpha %.2f beta %.2f latency %.2f\n" name iw.Iw.alpha iw.Iw.beta
    iw.Iw.avg_latency;
  Printf.printf "measured distance between mispredictions: %d instructions\n\n" current_distance;

  (* Figure 18 for this workload's characteristic. *)
  let widths = [ 4; 8; 16 ] in
  let fractions = [ 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let header =
    "% time near width" :: List.map (fun w -> Printf.sprintf "issue %d" w) widths
  in
  let rows =
    List.map
      (fun fraction ->
        Table.float_cell ~decimals:0 (100.0 *. fraction)
        :: List.map
             (fun width ->
               string_of_int (Trends.mispred_distance_for_fraction ~iw ~width ~fraction ()))
             widths)
      fractions
  in
  Table.print ~header rows;
  let n4 = Trends.mispred_distance_for_fraction ~iw ~width:4 ~fraction:0.3 () in
  let n8 = Trends.mispred_distance_for_fraction ~iw ~width:8 ~fraction:0.3 () in
  Printf.printf
    "\ndoubling the issue width from 4 to 8 multiplies the requirement by %.1fx (paper: ~4x)\n\n"
    (float_of_int n8 /. float_of_int n4);

  (* Figure 19: the ramp this workload actually experiences. *)
  print_endline "issue ramp between two mispredictions (first 30 cycles):";
  let trajectories =
    List.map
      (fun w -> (w, Trends.issue_trajectory ~iw ~interval:current_distance ~width:w ()))
      [ 2; 4; 8 ]
  in
  let header = "cycle" :: List.map (fun (w, _) -> Printf.sprintf "issue %d" w) trajectories in
  let rows =
    List.init 30 (fun c ->
        string_of_int c
        :: List.map
             (fun (_, t) ->
               if c < Array.length t then Table.float_cell ~decimals:2 t.(c) else "-")
             trajectories)
  in
  Table.print ~header rows
