(* Bring your own trace: export, inspect, re-import, model.

     dune exec examples/external_trace.exe -- [trace-file]

   Without an argument the example exports a synthetic gzip trace to a
   temporary file first — stand-in for a trace produced by any other
   tool — then characterizes and models the *file*, exactly as one
   would with a real instruction trace. The text format is documented
   in [Fom_trace.Source]; anything that can emit

     fom-trace 1
     <class> <pc-hex> <mem-hex|-> <T|N|-> <target-hex|-> <dep>...

   can drive the model. *)

let () =
  let path, cleanup =
    if Array.length Sys.argv > 1 then (Sys.argv.(1), false)
    else begin
      let path = Filename.temp_file "fom-demo" ".trace" in
      let program = Fom_trace.Program.generate (Fom_workloads.Spec2000.find "gzip") in
      Fom_trace.Source.save ~path (Fom_trace.Source.of_program program) ~n:100_000;
      Printf.printf "exported a 100k-instruction synthetic trace to %s\n" path;
      (path, true)
    end
  in
  Fun.protect
    ~finally:(fun () -> if cleanup then Sys.remove path)
    (fun () ->
      let source = Fom_trace.Source.load ~path in
      Printf.printf "loaded trace: %s\n\n" (Fom_trace.Source.label source);

      let params = Fom_model.Params.baseline in
      let curve, profile, inputs =
        Fom_analysis.Characterize.curve_and_inputs_of_source ~params source ~n:100_000
      in
      Printf.printf "IW characteristic: I = %.2f * W^%.2f (r2 %.3f), mean latency %.2f\n"
        (Fom_analysis.Iw_curve.alpha curve)
        (Fom_analysis.Iw_curve.beta curve)
        curve.Fom_analysis.Iw_curve.fit.Fom_util.Fit.r2 inputs.Fom_model.Inputs.avg_latency;
      Printf.printf "events per 1000 instructions: %.1f mispredictions, %.1f long misses\n\n"
        (1000.0 *. inputs.Fom_model.Inputs.mispredictions_per_instr)
        (1000.0 *. inputs.Fom_model.Inputs.long_misses_per_instr);
      ignore profile;

      let breakdown = Fom_model.Cpi.evaluate params inputs in
      Format.printf "%a@.@." Fom_model.Cpi.pp breakdown;

      (* The same file drives the detailed simulator. *)
      let sim =
        Fom_uarch.Simulate.run_source Fom_uarch.Config.baseline source ~n:100_000
      in
      Printf.printf "detailed simulation of the trace file: CPI %.3f (model %.3f, %+.1f%%)\n"
        (Fom_uarch.Stats.cpi sim)
        (Fom_model.Cpi.total breakdown)
        (100.0
        *. (Fom_model.Cpi.total breakdown -. Fom_uarch.Stats.cpi sim)
        /. Fom_uarch.Stats.cpi sim))
