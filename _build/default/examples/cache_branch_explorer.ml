(* Substrate exploration: sweep cache geometry and branch predictors
   over a workload and watch the model inputs and CPI respond.

     dune exec examples/cache_branch_explorer.exe -- [workload]

   This exercises the cache and predictor substrates through the
   public API — the kind of what-if study an analytical model makes
   cheap: every row is one functional profile plus a microsecond-scale
   model evaluation, no cycle-level simulation. *)

module Hierarchy = Fom_cache.Hierarchy
module Geometry = Fom_cache.Geometry
module Predictor = Fom_branch.Predictor
module Cpi = Fom_model.Cpi
module Table = Fom_util.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "twolf" in
  let program = Fom_trace.Program.generate (Fom_workloads.Spec2000.find name) in
  let params = Fom_model.Params.baseline in
  let n = 100_000 in

  Printf.printf "workload: %s\n" name;

  (* L1 data cache size sweep (paper baseline: 4K 4-way 128B). *)
  print_endline "\nL1 size sweep (both L1s, 4-way, 128B lines):";
  let rows =
    List.map
      (fun kib ->
        let geometry = Geometry.make ~size:(kib * 1024) ~assoc:4 ~line:128 in
        let cache =
          { Hierarchy.baseline with Hierarchy.l1i = Real geometry; l1d = Real geometry }
        in
        let inputs = Fom_analysis.Characterize.inputs ~cache ~params program ~n in
        let b = Cpi.evaluate params inputs in
        [
          Printf.sprintf "%d KiB" kib;
          Table.float_cell ~decimals:1
            (1000.0 *. inputs.Fom_model.Inputs.short_misses_per_instr);
          Table.float_cell ~decimals:1 (1000.0 *. inputs.Fom_model.Inputs.long_misses_per_instr);
          Table.float_cell ~decimals:1 (1000.0 *. inputs.Fom_model.Inputs.l1i_misses_per_instr);
          Table.float_cell (Cpi.total b);
        ])
      [ 1; 2; 4; 8; 16; 64 ]
  in
  Table.print ~header:[ "L1 size"; "short/ki"; "long/ki"; "L1I/ki"; "model CPI" ] rows;

  (* Associativity sweep at the baseline size. *)
  print_endline "\nL1D associativity sweep (4 KiB, 128B lines):";
  let rows =
    List.map
      (fun assoc ->
        let geometry = Geometry.make ~size:4096 ~assoc ~line:128 in
        let cache = { Hierarchy.baseline with Hierarchy.l1d = Real geometry } in
        let inputs = Fom_analysis.Characterize.inputs ~cache ~params program ~n in
        [
          string_of_int assoc;
          Table.float_cell ~decimals:1
            (1000.0 *. inputs.Fom_model.Inputs.short_misses_per_instr);
          Table.float_cell ~decimals:1 (1000.0 *. inputs.Fom_model.Inputs.long_misses_per_instr);
        ])
      [ 1; 2; 4; 8 ]
  in
  Table.print ~header:[ "ways"; "short/ki"; "long/ki" ] rows;

  (* Branch predictor sweep (paper baseline: 8K-entry gShare). *)
  print_endline "\npredictor sweep:";
  let predictors =
    [
      ("always taken", Predictor.Always_taken);
      ("bimodal 1K", Predictor.Bimodal 10);
      ("bimodal 8K", Predictor.Bimodal 13);
      ("gshare 1K", Predictor.Gshare 10);
      ("gshare 8K (paper)", Predictor.Gshare 13);
      ("gshare 64K", Predictor.Gshare 16);
    ]
  in
  let rows =
    List.map
      (fun (label, predictor) ->
        let inputs = Fom_analysis.Characterize.inputs ~predictor ~params program ~n in
        let b = Cpi.evaluate params inputs in
        [
          label;
          Table.float_cell ~decimals:2
            (1000.0 *. inputs.Fom_model.Inputs.mispredictions_per_instr);
          Table.float_cell b.Cpi.branch;
          Table.float_cell (Cpi.total b);
        ])
      predictors
  in
  Table.print ~header:[ "predictor"; "mispred/ki"; "branch CPI"; "model CPI" ] rows
