(* Full validation sweep: the paper's Figure 15/16 on all 12 workloads.

     dune exec examples/model_vs_sim.exe -- [instructions] [seed]

   Optional arguments: instruction count per workload (default
   150000) and a replacement RNG seed (to check that the accuracy
   claim is not an artifact of one trace draw). *)

module Cpi = Fom_model.Cpi
module Table = Fom_util.Table

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150_000 in
  let seed = if Array.length Sys.argv > 2 then Some (int_of_string Sys.argv.(2)) else None in
  let params = Fom_model.Params.baseline in
  let errs = ref [] in
  let rows =
    List.map
      (fun config ->
        let config =
          match seed with
          | Some s ->
              Fom_workloads.Spec2000.with_seed (s + Hashtbl.hash config.Fom_trace.Config.name)
                config
          | None -> config
        in
        let program = Fom_trace.Program.generate config in
        let inputs = Fom_analysis.Characterize.inputs ~params program ~n in
        let b = Cpi.evaluate params inputs in
        let sim = Fom_uarch.Simulate.run Fom_uarch.Config.baseline program ~n in
        let sim_cpi = Fom_uarch.Stats.cpi sim in
        let err = 100.0 *. (Cpi.total b -. sim_cpi) /. sim_cpi in
        errs := Float.abs err :: !errs;
        [
          config.Fom_trace.Config.name;
          Table.float_cell sim_cpi;
          Table.float_cell (Cpi.total b);
          Table.float_cell ~decimals:1 err;
          Table.float_cell b.Cpi.steady;
          Table.float_cell b.Cpi.branch;
          Table.float_cell (b.Cpi.l1i +. b.Cpi.l2i);
          Table.float_cell b.Cpi.dcache;
        ])
      Fom_workloads.Spec2000.all
  in
  Table.print
    ~header:[ "benchmark"; "sim CPI"; "model CPI"; "err%"; "ideal"; "branch"; "I$"; "D$" ]
    rows;
  let errs = Array.of_list !errs in
  Printf.printf "\nmean |error| %.1f%%, max %.1f%% over %d instructions per workload\n"
    (Fom_util.Stats.mean errs) (Fom_util.Stats.max errs) n;
  print_endline "(paper: 5.8% average, 13% worst case)"
