(* Quickstart: model one workload end to end.

     dune exec examples/quickstart.exe

   The flow is the paper's Section 5 recipe: generate (or obtain) a
   trace, derive the model inputs from trace analysis alone, evaluate
   the first-order model, and — optionally — sanity-check against the
   detailed simulator. *)

let () =
  (* 1. A workload: one of the SPECint2000-like presets. *)
  let config = Fom_workloads.Spec2000.find "gzip" in
  let program = Fom_trace.Program.generate config in

  (* 2. The machine: the paper's baseline 4-wide, 5-stage, 48-entry
     window, 128-entry ROB superscalar. *)
  let params = Fom_model.Params.baseline in

  (* 3. Trace analysis: IW power law + functional miss profiling.
     No cycle-level simulation is involved. *)
  let curve, profile, inputs =
    Fom_analysis.Characterize.curve_and_inputs ~params program ~n:100_000
  in
  Printf.printf "workload %s: alpha %.2f, beta %.2f, mean latency %.2f\n"
    inputs.Fom_model.Inputs.name
    (Fom_analysis.Iw_curve.alpha curve)
    (Fom_analysis.Iw_curve.beta curve)
    inputs.Fom_model.Inputs.avg_latency;
  Printf.printf "mispredictions %.1f/k-instr, long misses %.1f/k-instr\n"
    (1000.0 *. inputs.Fom_model.Inputs.mispredictions_per_instr)
    (1000.0 *. inputs.Fom_model.Inputs.long_misses_per_instr);
  Printf.printf "branches profiled: %d\n\n" profile.Fom_analysis.Profile.branches;

  (* 4. The model: CPI decomposed into steady state plus independent
     miss-event penalties (paper eq. 1). *)
  let breakdown = Fom_model.Cpi.evaluate params inputs in
  Format.printf "%a@.@." Fom_model.Cpi.pp breakdown;

  (* 5. Cross-check against the detailed cycle-level simulator. *)
  let sim = Fom_uarch.Simulate.run Fom_uarch.Config.baseline program ~n:100_000 in
  let sim_cpi = Fom_uarch.Stats.cpi sim in
  let model_cpi = Fom_model.Cpi.total breakdown in
  Printf.printf "detailed simulation CPI %.3f, model CPI %.3f (%.1f%% error)\n" sim_cpi
    model_cpi
    (100.0 *. (model_cpi -. sim_cpi) /. sim_cpi)
