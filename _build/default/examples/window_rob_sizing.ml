(* Design-space study: issue-window and ROB sizing through the model.

     dune exec examples/window_rob_sizing.exe -- [workload]

   This is the kind of sweep the analytical model exists for: once a
   workload is characterized (one trace analysis), every machine
   configuration is a microsecond-scale model evaluation. The example
   sweeps window and ROB sizes, prints the model's CPI surface, and
   spot-checks two corners against the detailed simulator. *)

module Params = Fom_model.Params
module Cpi = Fom_model.Cpi
module Table = Fom_util.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "twolf" in
  let program = Fom_trace.Program.generate (Fom_workloads.Spec2000.find name) in
  let n = 100_000 in
  Printf.printf "workload: %s\n\n" name;

  (* Window sweep (ROB fixed at 128). The window enters the model
     through the steady-state point on the IW characteristic and
     through the drain/ramp transients. *)
  let inputs_for params = Fom_analysis.Characterize.inputs ~params program ~n in
  print_endline "issue-window sweep (ROB 128):";
  let base_inputs = inputs_for Params.baseline in
  let rows =
    List.map
      (fun window_size ->
        let params = { Params.baseline with Params.window_size } in
        let b = Cpi.evaluate params base_inputs in
        let iw = Cpi.characteristic params base_inputs in
        [
          string_of_int window_size;
          Table.float_cell ~decimals:2
            (Fom_model.Iw_characteristic.steady_state_ipc iw ~window:window_size);
          Table.float_cell b.Cpi.branch;
          Table.float_cell (Cpi.total b);
        ])
      [ 8; 16; 32; 48; 64; 128 ]
  in
  Table.print ~header:[ "window"; "steady IPC"; "branch CPI"; "model CPI" ] rows;

  (* ROB sweep (window fixed at 48). The ROB enters through the
     long-miss group window (more reach, more overlap) and the
     rob-fill correction. *)
  print_endline "\nROB sweep (window 48):";
  let rows =
    List.map
      (fun rob_size ->
        let params = { Params.baseline with Params.rob_size } in
        (* The group window depends on the ROB, so re-profile. *)
        let inputs = inputs_for params in
        let b = Cpi.evaluate params inputs in
        [
          string_of_int rob_size;
          Table.float_cell ~decimals:2 (Fom_model.Inputs.long_group_factor inputs);
          Table.float_cell b.Cpi.dcache;
          Table.float_cell (Cpi.total b);
        ])
      [ 48; 64; 96; 128; 192; 256 ]
  in
  Table.print ~header:[ "rob"; "long-miss group factor"; "D$ CPI"; "model CPI" ] rows;

  (* Spot-check the corners against the simulator. *)
  print_endline "\nspot checks against detailed simulation:";
  List.iter
    (fun (window_size, rob_size) ->
      let params = { Params.baseline with Params.window_size; rob_size } in
      let machine =
        { Fom_uarch.Config.baseline with Fom_uarch.Config.window_size; rob_size }
      in
      let inputs = inputs_for params in
      let model = Cpi.total (Cpi.evaluate params inputs) in
      let sim = Fom_uarch.Stats.cpi (Fom_uarch.Simulate.run machine program ~n) in
      Printf.printf "  window %3d rob %3d: model %.3f sim %.3f (%+.1f%%)\n" window_size
        rob_size model sim
        (100.0 *. (model -. sim) /. sim))
    [ (16, 48); (48, 128); (128, 256) ]
