(* Pipeline-depth trend study (paper Section 6.1 / Figure 17), driven
   by a *measured* workload characteristic instead of the paper's
   generic square law.

     dune exec examples/pipeline_depth_study.exe -- [workload]

   For the chosen workload the example measures its IW power law and
   misprediction distance, then asks: how would this workload's
   performance move as the front end deepens, at several issue
   widths, and where is its BIPS-optimal depth? *)

module Trends = Fom_model.Trends
module Iw = Fom_model.Iw_characteristic
module Table = Fom_util.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gzip" in
  let config = Fom_workloads.Spec2000.find name in
  let program = Fom_trace.Program.generate config in
  let params = Fom_model.Params.baseline in
  let inputs = Fom_analysis.Characterize.inputs ~params program ~n:100_000 in
  let iw =
    Iw.make ~alpha:inputs.Fom_model.Inputs.alpha ~beta:inputs.Fom_model.Inputs.beta
      ~avg_latency:inputs.Fom_model.Inputs.avg_latency ()
  in
  let interval =
    max 10 (int_of_float (1.0 /. Float.max 1e-6 inputs.Fom_model.Inputs.mispredictions_per_instr))
  in
  Printf.printf "%s: alpha %.2f beta %.2f latency %.2f, %d instructions between mispredictions\n\n"
    name iw.Iw.alpha iw.Iw.beta iw.Iw.avg_latency interval;
  let widths = [ 2; 3; 4; 8 ] in
  let depths = [ 1; 2; 5; 10; 20; 35; 55; 80; 100 ] in
  let ipc_rows = Trends.ipc_vs_depth ~iw ~interval ~widths ~depths () in
  let header = "depth" :: List.map (fun w -> Printf.sprintf "IPC@%d" w) widths in
  let rows =
    List.map
      (fun d ->
        string_of_int d
        :: List.map (fun w -> Table.float_cell ~decimals:2 (List.assoc d (List.assoc w ipc_rows))) widths)
      depths
  in
  Table.print ~header rows;
  print_newline ();
  let all_depths = List.init 100 (fun i -> i + 1) in
  let bips_rows = Trends.bips_vs_depth ~iw ~interval ~widths ~depths:all_depths () in
  List.iter
    (fun w ->
      let row = List.assoc w bips_rows in
      let opt = Trends.optimal_depth row in
      Printf.printf "issue %d: optimal front-end depth %d stages (%.2f BIPS)\n" w opt
        (List.assoc opt row))
    widths
