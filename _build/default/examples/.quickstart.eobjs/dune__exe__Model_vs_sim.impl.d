examples/model_vs_sim.ml: Array Float Fom_analysis Fom_model Fom_trace Fom_uarch Fom_util Fom_workloads Hashtbl List Printf Sys
