examples/issue_width_study.mli:
