examples/external_trace.ml: Array Filename Fom_analysis Fom_model Fom_trace Fom_uarch Fom_util Fom_workloads Format Fun Printf Sys
