examples/quickstart.ml: Fom_analysis Fom_model Fom_trace Fom_uarch Fom_workloads Format Printf
