examples/window_rob_sizing.mli:
