examples/pipeline_depth_study.ml: Array Float Fom_analysis Fom_model Fom_trace Fom_util Fom_workloads List Printf Sys
