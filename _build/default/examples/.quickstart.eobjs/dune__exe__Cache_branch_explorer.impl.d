examples/cache_branch_explorer.ml: Array Fom_analysis Fom_branch Fom_cache Fom_model Fom_trace Fom_util Fom_workloads List Printf Sys
