examples/pipeline_depth_study.mli:
