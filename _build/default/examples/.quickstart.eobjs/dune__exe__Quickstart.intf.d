examples/quickstart.mli:
