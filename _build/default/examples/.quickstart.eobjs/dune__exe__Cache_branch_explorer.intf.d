examples/cache_branch_explorer.mli:
