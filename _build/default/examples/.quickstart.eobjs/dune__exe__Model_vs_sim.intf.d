examples/model_vs_sim.mli:
