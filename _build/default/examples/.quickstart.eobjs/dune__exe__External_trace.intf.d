examples/external_trace.mli:
