examples/window_rob_sizing.ml: Array Fom_analysis Fom_model Fom_trace Fom_uarch Fom_util Fom_workloads List Printf Sys
