type t = {
  width : int;
  pipeline_depth : int;
  window_size : int;
  rob_size : int;
  short_delay : int;
  long_delay : int;
  dtlb_walk : int;
  fetch_buffer : int;
}

let baseline =
  {
    width = 4;
    pipeline_depth = 5;
    window_size = 48;
    rob_size = 128;
    short_delay = 8;
    long_delay = 200;
    dtlb_walk = 30;
    fetch_buffer = 0;
  }

let validate t =
  assert (t.width >= 1);
  assert (t.pipeline_depth >= 1);
  assert (t.window_size >= 1);
  assert (t.rob_size >= t.window_size);
  assert (t.short_delay >= 1);
  assert (t.long_delay >= t.short_delay);
  assert (t.dtlb_walk >= 1);
  assert (t.fetch_buffer >= 0)
