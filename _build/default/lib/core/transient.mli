(** Analytic transients on the IW characteristic.

    The miss-event penalty models (paper Section 4) are built from two
    transients iterated numerically on the characteristic, exactly as
    the paper's Figure 8 does for the square-law curve:

    - {!drain}: the window empties from its steady-state occupancy
      with fetch stopped (a mispredicted branch or an exhausted front
      end); issue decays along the curve. Its penalty is the excess
      over issuing the same instructions at the steady rate.
    - {!ramp_up}: the window refills from empty at the dispatch width
      while issue climbs back along the curve (the "leaky bucket").

    For branch mispredictions drain and ramp-up penalties add; for
    I-cache and long D-cache misses they offset (the paper's key
    observations 2 and 3). *)

type result = {
  cycles : float;  (** transient duration *)
  instructions : float;  (** instructions issued during the transient *)
  penalty : float;  (** [cycles - instructions / steady_ipc] *)
}

val drain : Iw_characteristic.t -> window:int -> result
(** Empty the window from its steady-state occupancy until at most one
    instruction remains (the paper assumes the mispredicted branch is
    then the oldest and issues). *)

val ramp_up : ?epsilon:float -> Iw_characteristic.t -> window:int -> result
(** Refill from empty at the machine's dispatch width (the
    characteristic's [issue_width]; a finite width is required) until
    issue reaches within [epsilon] (default 0.1, relative) of the
    steady-state rate. The asymptotic tail is cut off at [epsilon],
    matching the paper's graphical reading of Figure 8. *)

type interval = {
  total_cycles : float;  (** pipeline fill plus issue time *)
  ipc : float;  (** useful instructions per cycle over the interval *)
  issue_per_cycle : float array;  (** per-cycle issue rates, fill included *)
}

val interval :
  Iw_characteristic.t -> window:int -> pipeline_depth:int -> instructions:int ->
  interval
(** The paper's Section 6 inter-misprediction interval: after a
    misprediction resolves, the front end refills ([pipeline_depth]
    dead cycles), then [instructions] useful instructions are
    dispatched at the machine width and issued along the
    characteristic, including the final natural drain once dispatch
    runs out. Requires a finite issue width. *)
