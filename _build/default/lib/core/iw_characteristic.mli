(** The IW characteristic: average issue rate as a function of window
    occupancy (paper Section 3).

    The unit-latency, unlimited-width characteristic follows a power
    law [I = alpha * W^beta] (Riseman/Foster, Michaud et al., paper
    Figures 4–5). Two corrections produce a specific machine's
    characteristic:

    - Little's law for non-unit latencies: if the mean instruction
      latency is [L], the issue rate at a given occupancy divides by
      [L] ([I_L = I_1 / L]);
    - saturation at the maximum issue width (paper Figure 6): the
      curve follows the unlimited-width power law until it reaches the
      width, then stays there (Jouppi's approximation). *)

type t = {
  alpha : float;  (** power-law coefficient (unit latency) *)
  beta : float;  (** power-law exponent *)
  avg_latency : float;  (** mean instruction latency [L] (>= 1) *)
  issue_width : float;  (** saturation limit; [infinity] = unlimited *)
}

val make :
  alpha:float -> beta:float -> ?avg_latency:float -> ?issue_width:float ->
  unit -> t
(** Defaults: unit latency, unlimited width. Requires positive
    [alpha], [beta] in (0, 1], [avg_latency >= 1]. *)

val of_fit : ?avg_latency:float -> ?issue_width:float -> Fom_util.Fit.power_law -> t
(** Adopt a fitted unit-latency power law. *)

val square_law : t
(** The paper's illustrative average characteristic: alpha 1, beta 0.5
    (used for Figure 8 and Section 6). *)

val issue_rate : t -> float -> float
(** [issue_rate t w]: mean instructions issued per cycle with [w]
    instructions in the window — [min (issue_width, alpha * w^beta /
    avg_latency, w)] (never more than the occupancy). *)

val unclipped_rate : t -> float -> float
(** The power law with latency correction but no width clipping. *)

val occupancy_for_rate : t -> float -> float
(** Inverse of {!unclipped_rate}: the occupancy at which the unlimited
    curve reaches the given rate. *)

val steady_state_ipc : t -> window:int -> float
(** Sustained issue rate with the window kept full: [issue_rate t
    window]. This is the background performance level of the paper's
    Figure 1. *)

val steady_state_occupancy : t -> window:int -> float
(** Window occupancy sustained in steady state: the full window if the
    curve saturates the width beyond it, otherwise the occupancy where
    the curve meets the width. *)
