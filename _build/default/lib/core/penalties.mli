(** Per-event penalty models (paper Section 4).

    All penalties are in cycles per miss-event and are built from the
    {!Transient} engine on a machine-specific {!Iw_characteristic}. *)

val branch_misprediction :
  Iw_characteristic.t -> Params.t -> burst:float -> float
(** Equations 2–3: [pipeline_depth + (window_drain + ramp_up) / n],
    where [n] is the mean misprediction burst size ([n = 1] gives the
    isolated penalty, the upper bound). The penalty exceeds the
    front-end depth — the paper's first headline observation. *)

val branch_misprediction_paper : Params.t -> float
(** The paper's Section 5 simplification: the midpoint between the
    isolated penalty and the pure pipeline depth, computed on the
    square-law characteristic — 7.5 cycles for the five-stage
    baseline. *)

val icache_miss : Iw_characteristic.t -> Params.t -> delay:int -> float
(** Equations 4–5 with [n = 1]: [delay + ramp_up - window_drain]. The
    drain and ramp-up offset, so the penalty is approximately the fill
    [delay] and independent of the front-end depth — the paper's
    second headline observation. A non-zero [params.fetch_buffer]
    hides [fetch_buffer / width] cycles of the delay (Section 7,
    extension 2). Clamped at zero. *)

val dcache_long_miss : ?rob_fill:float -> Params.t -> group_factor:float -> float
(** Equations 6–8: the isolated penalty is the memory delay minus
    [rob_fill] (default 0, the paper's approximation — valid when the
    missed load is old at issue), scaled by the overlap factor
    [sum_i f_LDM(i)/i] — misses within a ROB-size of instructions
    share one penalty. *)

val rob_fill_estimate : Iw_characteristic.t -> Params.t -> float
(** First-order [rob_fill]: when a missed load issues promptly, the
    ROB still holds only its steady-state occupancy (window backlog
    plus in-flight instructions by Little's law) and fills behind the
    load at the dispatch width. *)
