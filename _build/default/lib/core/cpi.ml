module Iw = Iw_characteristic

type branch_mode = Measured_burst | Paper_constant
type dcache_mode = Rob_fill_corrected | Paper_delay

type breakdown = {
  steady : float;
  branch : float;
  l1i : float;
  l2i : float;
  dcache : float;
  dtlb : float;
}

let total b = b.steady +. b.branch +. b.l1i +. b.l2i +. b.dcache +. b.dtlb
let ipc b = 1.0 /. total b

let characteristic (params : Params.t) (inputs : Inputs.t) =
  Iw.make ~alpha:inputs.Inputs.alpha ~beta:inputs.Inputs.beta
    ~avg_latency:inputs.Inputs.avg_latency
    ~issue_width:(float_of_int params.Params.width) ()

let evaluate ?(branch_mode = Measured_burst) ?(dcache_mode = Rob_fill_corrected) params inputs
    =
  Params.validate params;
  Inputs.validate inputs;
  let iw = characteristic params inputs in
  let rob_fill =
    match dcache_mode with
    | Rob_fill_corrected -> Penalties.rob_fill_estimate iw params
    | Paper_delay -> 0.0
  in
  let steady = 1.0 /. Iw.steady_state_ipc iw ~window:params.Params.window_size in
  let branch_penalty =
    match branch_mode with
    | Measured_burst ->
        Penalties.branch_misprediction iw params ~burst:(Inputs.mispred_burst_mean inputs)
    | Paper_constant -> Penalties.branch_misprediction_paper params
  in
  {
    steady;
    branch = inputs.Inputs.mispredictions_per_instr *. branch_penalty;
    l1i =
      inputs.Inputs.l1i_misses_per_instr
      *. Penalties.icache_miss iw params ~delay:params.Params.short_delay;
    l2i =
      inputs.Inputs.l2i_misses_per_instr
      *. Penalties.icache_miss iw params ~delay:params.Params.long_delay;
    dcache =
      inputs.Inputs.long_misses_per_instr
      *. Penalties.dcache_long_miss ~rob_fill params
           ~group_factor:(Inputs.long_group_factor inputs);
    dtlb =
      (* TLB walks act like (shorter) long misses: blocked retirement
         for the walk, overlapping within a ROB reach (Section 7). *)
      inputs.Inputs.dtlb_misses_per_instr
      *. float_of_int params.Params.dtlb_walk
      *. Inputs.dtlb_group_factor inputs;
  }

let stack b =
  [
    ("ideal", b.steady);
    ("L1 I-cache", b.l1i);
    ("L2 I-cache", b.l2i);
    ("L2 D-cache", b.dcache);
    ("branch mispredictions", b.branch);
    ("D-TLB", b.dtlb);
  ]

let pp fmt b =
  Format.fprintf fmt
    "@[<v>CPI %.3f (IPC %.3f)@,\
     \ ideal   %.3f@,\
     \ branch  %.3f@,\
     \ L1 I$   %.3f@,\
     \ L2 I$   %.3f@,\
     \ D-cache %.3f@,\
     \ D-TLB   %.3f@]"
    (total b) (ipc b) b.steady b.branch b.l1i b.l2i b.dcache b.dtlb
