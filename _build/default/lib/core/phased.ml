let combine weighted =
  assert (weighted <> []);
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  assert (total > 0.0);
  let mean field =
    List.fold_left (fun acc (w, b) -> acc +. (w *. field b)) 0.0 weighted /. total
  in
  {
    Cpi.steady = mean (fun b -> b.Cpi.steady);
    branch = mean (fun b -> b.Cpi.branch);
    l1i = mean (fun b -> b.Cpi.l1i);
    l2i = mean (fun b -> b.Cpi.l2i);
    dcache = mean (fun b -> b.Cpi.dcache);
    dtlb = mean (fun b -> b.Cpi.dtlb);
  }
