module Fu_set = Fom_isa.Fu_set
module Opclass = Fom_isa.Opclass

let saturation_ipc fu ~mix =
  List.fold_left
    (fun acc cls ->
      let weight = mix cls in
      let count = Fu_set.of_class fu cls in
      if weight <= 0.0 || count = max_int then acc
      else Float.min acc (float_of_int count /. weight))
    infinity Opclass.all

let effective_width fu ~mix ~width = Float.min (float_of_int width) (saturation_ipc fu ~mix)

let binding_class fu ~mix =
  let bound = saturation_ipc fu ~mix in
  if Float.is_finite bound then
    List.find_opt
      (fun cls ->
        let weight = mix cls in
        let count = Fu_set.of_class fu cls in
        weight > 0.0 && count < max_int
        && Float.abs ((float_of_int count /. weight) -. bound) < 1e-9)
      Opclass.all
  else None

let with_fu_limits fu ~mix (iw : Iw_characteristic.t) =
  let bound = saturation_ipc fu ~mix in
  { iw with Iw_characteristic.issue_width = Float.min iw.Iw_characteristic.issue_width bound }
