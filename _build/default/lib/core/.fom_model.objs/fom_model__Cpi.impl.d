lib/core/cpi.ml: Format Inputs Iw_characteristic Params Penalties
