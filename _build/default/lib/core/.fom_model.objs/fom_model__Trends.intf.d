lib/core/trends.mli: Iw_characteristic
