lib/core/inputs.ml: Float Fom_util
