lib/core/iw_characteristic.ml: Float Fom_util
