lib/core/transient.mli: Iw_characteristic
