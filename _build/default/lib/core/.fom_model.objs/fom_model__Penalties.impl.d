lib/core/penalties.ml: Float Iw_characteristic Params Transient
