lib/core/trends.ml: Array Iw_characteristic List Stdlib Transient
