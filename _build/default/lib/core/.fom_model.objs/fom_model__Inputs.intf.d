lib/core/inputs.mli: Fom_util
