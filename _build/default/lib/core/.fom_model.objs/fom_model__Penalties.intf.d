lib/core/penalties.mli: Iw_characteristic Params
