lib/core/cpi.mli: Format Inputs Iw_characteristic Params
