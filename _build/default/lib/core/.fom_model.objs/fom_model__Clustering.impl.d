lib/core/clustering.ml: Iw_characteristic
