lib/core/params.ml:
