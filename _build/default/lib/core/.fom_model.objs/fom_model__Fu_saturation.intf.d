lib/core/fu_saturation.mli: Fom_isa Iw_characteristic
