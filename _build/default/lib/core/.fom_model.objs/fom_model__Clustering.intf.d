lib/core/clustering.mli: Iw_characteristic
