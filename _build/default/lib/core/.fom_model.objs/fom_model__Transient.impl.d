lib/core/transient.ml: Array Float Iw_characteristic List
