lib/core/phased.ml: Cpi List
