lib/core/phased.mli: Cpi
