lib/core/iw_characteristic.mli: Fom_util
