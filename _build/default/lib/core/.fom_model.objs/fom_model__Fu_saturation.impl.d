lib/core/fu_saturation.ml: Float Fom_isa Iw_characteristic List
