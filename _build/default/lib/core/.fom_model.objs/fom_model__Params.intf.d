lib/core/params.mli:
