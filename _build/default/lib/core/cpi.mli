(** CPI composition (paper equation 1).

    [CPI = CPI_steadystate + CPI_brmisp + CPI_icachemiss +
    CPI_dcachemiss] — the miss-event penalties are independent to
    first order (paper Figure 2), so each component is a rate times a
    per-event penalty, and they add. *)

type branch_mode =
  | Measured_burst
      (** per-workload characteristic and measured burst sizes *)
  | Paper_constant
      (** the paper's Section 5 midpoint constant (7.5 cycles on the
          five-stage baseline) *)

type dcache_mode =
  | Rob_fill_corrected
      (** subtract the analytic {!Penalties.rob_fill_estimate} from
          the isolated long-miss penalty — an extension for workloads
          whose miss loads issue young *)
  | Paper_delay  (** the paper's [penalty = long_delay] approximation *)

type breakdown = {
  steady : float;  (** 1 / steady-state IPC *)
  branch : float;
  l1i : float;  (** I-fetches filled from the L2 *)
  l2i : float;  (** I-fetches filled from memory *)
  dcache : float;  (** long data misses *)
  dtlb : float;  (** TLB walks (0 without a TLB) — Section 7 extension *)
}

val total : breakdown -> float
val ipc : breakdown -> float

val evaluate :
  ?branch_mode:branch_mode -> ?dcache_mode:dcache_mode -> Params.t -> Inputs.t -> breakdown
(** Run the full first-order model. Defaults: [Measured_burst] and
    [Rob_fill_corrected]. *)

val characteristic : Params.t -> Inputs.t -> Iw_characteristic.t
(** The machine-specific IW characteristic the evaluation uses:
    the workload's fitted power law, Little's-law corrected by its
    mean latency, clipped at the machine width. *)

val stack : breakdown -> (string * float) list
(** Labeled components in the paper's Figure 16 stacking order:
    ideal, L1 I-cache, L2 I-cache, L2 D-cache, branch, plus the TLB
    extension term. *)

val pp : Format.formatter -> breakdown -> unit
