(** Partitioned issue windows / clustered functional units (paper
    Section 7, item 3) — first-order model adjustment.

    With [k] round-robin clusters, a consumer lands in its producer's
    cluster with probability [1/k], so each dependence edge pays the
    one-cycle bypass with probability [(k-1)/k]. To first order this
    lengthens every dependence chain like extra instruction latency,
    so it folds into the Little's-law term: the effective mean latency
    grows by [deps_per_instr * (k-1)/k * bypass] cycles. Per-cluster
    width and window sizes are unchanged in aggregate (k clusters of
    width/k each), so only the latency correction applies at this
    order. *)

val latency_penalty :
  clusters:int -> ?bypass:float -> ?deps_per_instr:float -> unit -> float
(** Expected extra cycles per instruction on the critical path.
    Defaults: one bypass cycle, one dependence per instruction. *)

val effective_characteristic :
  clusters:int -> ?bypass:float -> ?deps_per_instr:float ->
  Iw_characteristic.t -> Iw_characteristic.t
(** The characteristic with the clustering latency folded into its
    mean latency. [clusters = 1] is the identity. *)
