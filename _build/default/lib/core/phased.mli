(** Per-phase model composition (paper Section 7).

    When a workload's behaviour shifts between regimes, characterize
    each phase separately and combine the per-phase CPIs weighted by
    instruction share — CPI is cycles per instruction, so the whole-run
    CPI is exactly the instruction-weighted mean of the phase CPIs
    (transient effects at phase boundaries are second-order for phases
    much longer than a ROB drain). *)

val combine : (float * Cpi.breakdown) list -> Cpi.breakdown
(** [combine [(w1, b1); ...]] with non-negative weights (instruction
    shares; they are normalized internally). Each component of the
    result is the weighted mean of the phase components. Requires a
    non-empty list with positive total weight. *)
