(** Limited functional units (paper Section 7, extension 1).

    With fully-pipelined units, class [c] can start at most [count_c]
    instructions per cycle, so sustained IPC is bounded by
    [count_c / mix_c] for every class. The binding class lowers the
    machine's saturation level below its nominal issue width, which
    plugs straight into the IW characteristic as a reduced effective
    width (paper: "we can generate a lower saturation level than the
    maximum issue width"). *)

val saturation_ipc : Fom_isa.Fu_set.t -> mix:(Fom_isa.Opclass.t -> float) -> float
(** Smallest [count_c / mix_c] over classes with positive mix;
    [infinity] for an unbounded set. *)

val effective_width :
  Fom_isa.Fu_set.t -> mix:(Fom_isa.Opclass.t -> float) -> width:int -> float
(** [min (width, saturation_ipc)]. *)

val binding_class :
  Fom_isa.Fu_set.t -> mix:(Fom_isa.Opclass.t -> float) -> Fom_isa.Opclass.t option
(** The class that limits throughput, when one does. *)

val with_fu_limits :
  Fom_isa.Fu_set.t -> mix:(Fom_isa.Opclass.t -> float) ->
  Iw_characteristic.t -> Iw_characteristic.t
(** Clip a characteristic's issue width at the FU saturation level. *)
