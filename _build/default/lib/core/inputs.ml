type t = {
  name : string;
  instructions : int;
  alpha : float;
  beta : float;
  fit_r2 : float;
  avg_latency : float;
  mispredictions_per_instr : float;
  mispred_bursts : Fom_util.Distribution.t;
  l1i_misses_per_instr : float;
  l2i_misses_per_instr : float;
  short_misses_per_instr : float;
  long_misses_per_instr : float;
  long_miss_groups : Fom_util.Distribution.t;
  dtlb_misses_per_instr : float;
  dtlb_groups : Fom_util.Distribution.t;
}

let frac x = x >= 0.0 && x <= 1.0

let validate t =
  assert (t.instructions > 0);
  assert (t.alpha > 0.0);
  assert (t.beta > 0.0 && t.beta <= 1.0);
  assert (t.avg_latency >= 1.0);
  assert (frac t.mispredictions_per_instr);
  assert (frac t.l1i_misses_per_instr);
  assert (frac t.l2i_misses_per_instr);
  assert (frac t.short_misses_per_instr);
  assert (frac t.long_misses_per_instr);
  assert (frac t.dtlb_misses_per_instr)

let mispred_burst_mean t =
  if Fom_util.Distribution.total t.mispred_bursts = 0 then 1.0
  else Fom_util.Distribution.mean t.mispred_bursts

(* Each group of overlapping misses costs one isolated penalty, so the
   average per-miss factor is groups/misses = 1/mean-group-size. This
   equals the paper's sum over the per-miss distribution f_LDM(i)/i. *)
let group_factor dist =
  if Fom_util.Distribution.total dist = 0 then 1.0
  else 1.0 /. Float.max 1.0 (Fom_util.Distribution.mean dist)

let long_group_factor t = group_factor t.long_miss_groups
let dtlb_group_factor t = group_factor t.dtlb_groups
let no_dtlb = (0.0, Fom_util.Distribution.create ())
