(** Microarchitecture trend studies (paper Section 6).

    Both studies assume the paper's setting: an average square-law
    characteristic and branch mispredictions as the limiting
    miss-event, with one branch in five instructions and a 5%
    misprediction rate (100 instructions between mispredictions)
    unless overridden. *)

val default_mispred_interval : int
(** 100: one branch in five, 5% mispredicted. *)

val ipc_vs_depth :
  ?iw:Iw_characteristic.t -> ?window:int -> ?interval:int ->
  widths:int list -> depths:int list -> unit -> (int * (int * float) list) list
(** Figure 17a: for each issue width, IPC as a function of front-end
    depth. Deeper pipes erode the advantage of wider issue. The
    default characteristic is the square law clipped at each width;
    default window 48. Returns [(width, [(depth, ipc); ...]); ...]. *)

val bips_vs_depth :
  ?iw:Iw_characteristic.t -> ?window:int -> ?interval:int ->
  ?total_logic_ps:float -> ?overhead_ps:float ->
  widths:int list -> depths:int list -> unit -> (int * (int * float) list) list
(** Figure 17b: absolute performance in billions of instructions per
    second, with cycle time [total_logic_ps / depth + overhead_ps]
    (defaults 8200 and 90 ps, from Sprangle & Carmean). The optimum
    depth shifts shorter as issue widens. *)

val optimal_depth : (int * float) list -> int
(** Depth with the highest performance in one {!bips_vs_depth} row. *)

val mispred_distance_for_fraction :
  ?iw:Iw_characteristic.t -> ?window:int -> ?pipeline_depth:int ->
  width:int -> fraction:float -> unit -> int
(** Figure 18: the smallest number of instructions between
    mispredictions such that the machine spends [fraction] of its
    cycles within 12.5% of the issue width. The paper's law: doubling
    the width requires quadrupling this distance. *)

val issue_trajectory :
  ?iw:Iw_characteristic.t -> ?window:int -> ?pipeline_depth:int -> ?interval:int ->
  width:int -> unit -> float array
(** Figure 19: per-cycle issue rate between two mispredictions
    (pipeline-fill dead cycles included). *)
