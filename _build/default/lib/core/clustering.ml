let latency_penalty ~clusters ?(bypass = 1.0) ?(deps_per_instr = 1.0) () =
  assert (clusters >= 1);
  assert (bypass >= 0.0 && deps_per_instr >= 0.0);
  deps_per_instr *. bypass *. float_of_int (clusters - 1) /. float_of_int clusters

let effective_characteristic ~clusters ?bypass ?deps_per_instr (iw : Iw_characteristic.t) =
  let penalty = latency_penalty ~clusters ?bypass ?deps_per_instr () in
  { iw with Iw_characteristic.avg_latency = iw.Iw_characteristic.avg_latency +. penalty }
