type mix = {
  load : float;
  store : float;
  branch : float;
  jump : float;
  mul : float;
  div : float;
}

type deps = {
  short_p : float;
  short_mean : float;
  long_max : int;
  nsrc_weights : float array;
}

type control = {
  regions : int;
  blocks_per_region : int;
  chaotic_frac : float;
  chaotic_low : float;
  chaotic_high : float;
  pattern_frac : float;
  pattern_max_period : int;
  loop_trip_mean : float;
  bias : float;
}

type memory = {
  local_frac : float;
  random_frac : float;
  stream_frac : float;
  chase_frac : float;
  local_region : int;
  random_region : int;
  stream_region : int;
  chase_region : int;
  stream_stride : int;
  chase_chains : int;
}

type t = {
  name : string;
  seed : int;
  mix : mix;
  deps : deps;
  control : control;
  memory : memory;
  latencies : Fom_isa.Latency.t;
}

let frac x = x >= 0.0 && x <= 1.0

let validate t =
  let m = t.mix in
  assert (frac m.load && frac m.store && frac m.branch && frac m.jump);
  assert (frac m.mul && frac m.div);
  assert (m.load +. m.store +. m.branch +. m.jump +. m.mul +. m.div <= 1.0 +. 1e-9);
  assert (m.branch +. m.jump > 0.0);
  let d = t.deps in
  assert (frac d.short_p);
  assert (d.short_mean >= 1.0);
  assert (d.long_max >= 1);
  assert (Array.length d.nsrc_weights = 3);
  assert (Array.for_all (fun w -> w >= 0.0) d.nsrc_weights);
  assert (Array.fold_left ( +. ) 0.0 d.nsrc_weights > 0.0);
  let c = t.control in
  assert (c.regions >= 1 && c.blocks_per_region >= 2);
  assert (frac c.chaotic_frac && frac c.pattern_frac);
  assert (c.chaotic_frac +. c.pattern_frac <= 1.0 +. 1e-9);
  assert (frac c.chaotic_low && frac c.chaotic_high && c.chaotic_low <= c.chaotic_high);
  assert (c.pattern_max_period >= 2);
  assert (c.loop_trip_mean >= 2.0);
  assert (frac c.bias);
  let mm = t.memory in
  assert (frac mm.local_frac && frac mm.random_frac && frac mm.stream_frac && frac mm.chase_frac);
  let total = mm.local_frac +. mm.random_frac +. mm.stream_frac +. mm.chase_frac in
  assert (Float.abs (total -. 1.0) < 1e-6);
  assert (mm.local_region > 0 && mm.random_region > 0 && mm.stream_region > 0 && mm.chase_region > 0);
  assert (mm.stream_stride > 0 && mm.stream_stride mod 8 = 0);
  assert (mm.chase_chains >= 0)

let alu_frac t =
  let m = t.mix in
  1.0 -. (m.load +. m.store +. m.branch +. m.jump +. m.mul +. m.div)

let mean_block_len t = 1.0 /. (t.mix.branch +. t.mix.jump)

let class_weight t cls =
  let m = t.mix in
  match cls with
  | Fom_isa.Opclass.Alu -> alu_frac t
  | Fom_isa.Opclass.Mul -> m.mul
  | Fom_isa.Opclass.Div -> m.div
  | Fom_isa.Opclass.Load -> m.load
  | Fom_isa.Opclass.Store -> m.store
  | Fom_isa.Opclass.Branch -> m.branch
  | Fom_isa.Opclass.Jump -> m.jump
