module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg

type t = { label : string; fresh : unit -> unit -> Instr.t }

let label t = t.label
let fresh t = t.fresh ()
let of_factory ~label fresh = { label; fresh }

let of_program program =
  {
    label = program.Program.config.Config.name;
    fresh =
      (fun () ->
        let stream = Stream.create program in
        fun () -> Stream.next stream);
  }

let of_instrs ?(label = "recorded") instrs =
  assert (Array.length instrs > 0);
  Array.iteri (fun i (ins : Instr.t) -> assert (ins.Instr.index = i)) instrs;
  let len = Array.length instrs in
  {
    label;
    fresh =
      (fun () ->
        let position = ref 0 in
        fun () ->
          let p = !position in
          incr position;
          let k = p / len and off = p mod len in
          if k = 0 then instrs.(off)
          else
            (* Wrapped replay: re-base indices and dependences by the
               number of completed copies. *)
            let ins = instrs.(off) in
            {
              ins with
              Instr.index = p;
              deps = Array.map (fun d -> d + (k * len)) ins.Instr.deps;
            });
  }

let record t ~n =
  let next = fresh t in
  Array.init n (fun _ -> next ())

(* --- text format --- *)

let format_magic = "fom-trace 1"

let class_of_string s =
  List.find_opt (fun c -> String.equal (Opclass.to_string c) s) Opclass.all

let save ~path t ~n =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (format_magic ^ "\n");
      let next = fresh t in
      for _ = 1 to n do
        let ins = next () in
        let mem = match ins.Instr.mem with Some a -> Printf.sprintf "%x" a | None -> "-" in
        let dir, target =
          match ins.Instr.ctrl with
          | Some c -> ((if c.Instr.taken then "T" else "N"), Printf.sprintf "%x" c.Instr.target)
          | None -> ("-", "-")
        in
        let deps =
          ins.Instr.deps |> Array.to_list |> List.map string_of_int |> String.concat " "
        in
        Printf.fprintf oc "%s %x %s %s %s%s%s\n"
          (Opclass.to_string ins.Instr.opclass)
          ins.Instr.pc mem dir target
          (if deps = "" then "" else " ")
          deps
      done)

let parse_line ~index ~next_dst line =
  match String.split_on_char ' ' (String.trim line) with
  | cls_s :: pc_s :: mem_s :: dir_s :: target_s :: dep_fields -> (
      match class_of_string cls_s with
      | None -> failwith (Printf.sprintf "unknown instruction class %S in %S" cls_s line)
      | Some opclass ->
          let parse_hex what s =
            match int_of_string_opt ("0x" ^ s) with
            | Some v -> v
            | None -> failwith (Printf.sprintf "bad %s %S in %S" what s line)
          in
          let pc = parse_hex "pc" pc_s in
          let mem = if mem_s = "-" then None else Some (parse_hex "address" mem_s) in
          let ctrl =
            match (dir_s, target_s) with
            | "-", "-" -> None
            | dir, target ->
                Some { Instr.target = parse_hex "target" target; taken = dir = "T" }
          in
          let deps =
            dep_fields
            |> List.filter (fun f -> f <> "")
            |> List.map (fun f ->
                   match int_of_string_opt f with
                   | Some d when d >= 0 && d < index -> d
                   | Some _ -> failwith (Printf.sprintf "dependence %s not before line in %S" f line)
                   | None -> failwith (Printf.sprintf "bad dependence %S in %S" f line))
            |> Array.of_list
          in
          let dst =
            match opclass with
            | Opclass.Alu | Opclass.Mul | Opclass.Div | Opclass.Load ->
                next_dst := (!next_dst mod (Reg.count - 1)) + 1;
                Some (Reg.of_int !next_dst)
            | Opclass.Store | Opclass.Branch | Opclass.Jump -> None
          in
          Instr.make ~index ~pc ~opclass ?dst ~deps ?mem ?ctrl ())
  | _ -> failwith (Printf.sprintf "malformed trace line %S" line)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match input_line ic with
      | magic when String.trim magic = format_magic -> ()
      | magic -> failwith (Printf.sprintf "not a fom trace (header %S)" magic)
      | exception End_of_file -> failwith "empty trace file");
      let next_dst = ref 0 in
      let instrs = ref [] in
      let index = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             instrs := parse_line ~index:!index ~next_dst line :: !instrs;
             incr index
           end
         done
       with End_of_file -> ());
      if !instrs = [] then failwith "trace file has no instructions";
      of_instrs ~label:path (Array.of_list (List.rev !instrs)))
