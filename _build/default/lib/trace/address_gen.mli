(** Effective-address generators for synthetic memory instructions.

    Each static load/store owns one generator; its dynamic instances
    draw successive effective addresses from it. The three kinds span
    the locality regimes that matter to the first-order model:

    - [Stride] walks a region sequentially (array streaming): every
      [line_size / stride]-th access opens a new line, so miss events
      arrive in regular, closely-spaced groups — the clustered long
      misses of the paper's Section 4.3 when the region exceeds the L2.
    - [Random] touches a region uniformly: the region size against each
      cache level's capacity sets the miss rates (working-set model).
    - [Chase] is like [Random] but models pointer chasing; the stream
      layer additionally serializes each chase load on its own previous
      instance, producing the low-ILP, long-miss-bound behaviour of
      benchmarks like mcf. *)

type kind =
  | Stride of { stride : int }  (** sequential walk with a byte stride *)
  | Random  (** uniform within the region *)
  | Chase  (** uniform within the region, serialized by the stream *)

type region = { base : int; size : int }
(** A byte range [base, base + size). [size] must be positive and a
    multiple of 8. *)

type t
(** Mutable generator state. *)

val create : ?seed_rng:Fom_util.Rng.t -> kind -> region -> t
(** Fresh generator over a region; [Random]/[Chase] draw from
    [seed_rng] (a dedicated split stream). *)

val kind : t -> kind
val region : t -> region

val next : t -> int
(** Next effective address, 8-byte aligned, within the region. *)

val is_chase : t -> bool
