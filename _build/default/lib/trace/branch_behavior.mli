(** Direction behaviour of synthetic conditional branches.

    Each static branch owns one behaviour; its dynamic instances draw
    successive outcomes. The mixture of behaviours in a workload sets
    the gShare misprediction rate:

    - [Biased] branches (taken with a probability near 0 or 1) are
      learned almost perfectly by any two-bit scheme.
    - [Loop] branches are taken [trip - 1] times then fall through;
      predictors miss roughly once per loop exit.
    - [Pattern] branches repeat a fixed direction sequence; gShare
      learns them when the pattern fits in its history.
    - [Chaotic] branches flip an independent coin each execution and
      are unlearnable: a chaotic branch taken with probability p costs
      about min(p, 1-p) mispredictions per execution. *)

type kind =
  | Biased of float  (** taken with this fixed probability *)
  | Loop of int  (** back-edge of a loop with this trip count (>= 1) *)
  | Pattern of bool array  (** periodic direction sequence (non-empty) *)
  | Chaotic of float  (** independent coin with this taken probability *)

type t
(** Mutable behaviour state. *)

val create : ?seed_rng:Fom_util.Rng.t -> kind -> t
(** Fresh behaviour; stochastic kinds draw from a dedicated split of
    [seed_rng]. *)

val kind : t -> kind

val next : t -> bool
(** Next resolved direction. *)

val expected_taken_rate : kind -> float
(** Long-run fraction of taken outcomes, for calibration and tests. *)
