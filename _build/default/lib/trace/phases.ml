module Instr = Fom_isa.Instr

type phase = { config : Config.t; instructions : int }

let schedule_length phases = List.fold_left (fun acc p -> acc + p.instructions) 0 phases

let source phases =
  assert (phases <> []);
  List.iter (fun p -> assert (p.instructions > 0)) phases;
  let programs = List.map (fun p -> (Program.generate p.config, p.instructions)) phases in
  let label =
    String.concat "+" (List.map (fun p -> p.config.Config.name) phases)
  in
  let fresh () =
    let remaining = ref [] in
    let current = ref None in
    let phase_base = ref 0 in
    let produced_in_phase = ref 0 in
    let global = ref 0 in
    let activate () =
      (match !remaining with
      | [] -> remaining := programs
      | _ -> ());
      match !remaining with
      | (program, budget) :: rest ->
          remaining := rest;
          current := Some (Stream.create program, budget);
          phase_base := !global;
          produced_in_phase := 0
      | [] -> assert false
    in
    fun () ->
      (match !current with
      | Some (_, budget) when !produced_in_phase < budget -> ()
      | Some _ | None -> activate ());
      let stream, _ = Option.get !current in
      let ins = Stream.next stream in
      incr produced_in_phase;
      let index = !global in
      incr global;
      (* Rebase the phase-local index and dependences to the global
         numbering. *)
      {
        ins with
        Instr.index;
        deps = Array.map (fun d -> d + !phase_base) ins.Instr.deps;
      }
  in
  Source.of_factory ~label fresh
