lib/trace/branch_behavior.ml: Array Fom_util
