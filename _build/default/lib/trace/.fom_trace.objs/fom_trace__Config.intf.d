lib/trace/config.mli: Fom_isa
