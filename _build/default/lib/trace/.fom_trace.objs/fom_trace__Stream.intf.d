lib/trace/stream.mli: Fom_isa Program
