lib/trace/program.ml: Address_gen Array Branch_behavior Config Float Fom_isa Fom_util List
