lib/trace/phases.mli: Config Source
