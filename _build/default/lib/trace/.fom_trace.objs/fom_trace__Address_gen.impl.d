lib/trace/address_gen.ml: Fom_util
