lib/trace/source.ml: Array Config Fom_isa Fun List Printf Program Stream String
