lib/trace/program.mli: Address_gen Branch_behavior Config Fom_isa
