lib/trace/source.mli: Fom_isa Program
