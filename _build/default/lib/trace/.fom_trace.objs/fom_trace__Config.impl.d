lib/trace/config.ml: Array Float Fom_isa
