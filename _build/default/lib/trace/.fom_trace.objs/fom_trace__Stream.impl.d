lib/trace/stream.ml: Address_gen Array Branch_behavior Config Fom_isa Fom_util Option Program Stdlib
