lib/trace/address_gen.mli: Fom_util
