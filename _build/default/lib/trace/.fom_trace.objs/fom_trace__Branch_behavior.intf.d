lib/trace/branch_behavior.mli: Fom_util
