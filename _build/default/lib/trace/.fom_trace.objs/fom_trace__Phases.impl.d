lib/trace/phases.ml: Array Config Fom_isa List Option Program Source Stream String
