(** Static synthetic programs.

    [generate] builds an immutable control-flow graph from a
    {!Config.t}: regions of basic blocks, each block a run of body
    instructions closed by a control instruction. Internal branch
    edges only go forward within a region; the region's last block
    carries the loop back-edge, and jump terminators transfer to other
    regions. This guarantees the dynamic walk always makes progress
    while exercising loops, forward branches and far control transfers.

    The program carries no mutable state: address generators and branch
    behaviours are stored as specifications and instantiated per
    {!Stream}, so independent consumers of the same program observe
    identical traces. *)

type static = {
  uid : int;  (** index into the flat static-instruction array *)
  pc : int;  (** byte address ([code_base + 4 * uid]) *)
  opclass : Fom_isa.Opclass.t;
  dst : Fom_isa.Reg.t option;
  nsrc : int;  (** register sources to sample per dynamic instance *)
  agen_spec : (Address_gen.kind * Address_gen.region) option;
  behavior_spec : Branch_behavior.kind option;
  chase : bool;  (** serialized on its own previous dynamic instance *)
}

type block = {
  first : int;  (** uid of the first instruction *)
  len : int;  (** instructions including the terminator *)
  taken_succ : int;  (** successor block id on taken *)
  fall_succ : int;  (** successor block id on fall-through *)
}

type t = private {
  config : Config.t;
  statics : static array;
  blocks : block array;
}

val generate : Config.t -> t
(** Deterministic in [config.seed]. *)

val code_base : int
(** Byte address of the first static instruction. *)

val entry : t -> int
(** Entry block id (0). *)

val static_count : t -> int

val footprint_bytes : t -> int
(** Static code size: drives the I-cache behaviour. *)

val block_of_uid : t -> int -> int
(** Enclosing block id of a static instruction. *)

val terminator : t -> int -> static
(** [terminator t b] is the control instruction closing block [b]. *)
