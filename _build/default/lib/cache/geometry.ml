type t = { size : int; assoc : int; line : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make ~size ~assoc ~line =
  assert (size > 0 && assoc > 0 && line > 0);
  assert (is_power_of_two line);
  assert (size mod (assoc * line) = 0);
  assert (is_power_of_two (size / (assoc * line)));
  { size; assoc; line }

let sets t = t.size / (t.assoc * t.line)
let lines t = t.size / t.line
let line_address t addr = addr land lnot (t.line - 1)
let set_index t addr = addr / t.line land (sets t - 1)
let tag t addr = addr / t.line / sets t

let l1_baseline = make ~size:4096 ~assoc:4 ~line:128
let l2_baseline = make ~size:(512 * 1024) ~assoc:4 ~line:128

let pp fmt t =
  Format.fprintf fmt "%dB/%d-way/%dB-line (%d sets)" t.size t.assoc t.line (sets t)
