(** A set-associative cache with true-LRU replacement.

    Purely functional-correctness level: it tracks which lines are
    resident, not their contents. Timing is the caller's business
    ({!Hierarchy} assigns latencies to hit levels). *)

type t

val create : Geometry.t -> t
(** Empty cache. *)

val geometry : t -> Geometry.t

val access : t -> int -> bool
(** [access t addr] returns [true] on hit. On a miss the line is
    allocated, evicting the set's LRU line; on a hit the line becomes
    most-recently used. *)

val probe : t -> int -> bool
(** Like {!access} but with no side effect at all. *)

val resident : t -> int -> bool
(** Alias of {!probe}, for readability in invariant checks. *)

val accesses : t -> int
(** Accesses made so far. *)

val misses : t -> int
(** Misses so far. *)

val miss_rate : t -> float
(** Misses per access; 0 before any access. *)

val reset_stats : t -> unit
(** Zero the counters without touching cache contents (for warmup). *)

val clear : t -> unit
(** Empty the cache and zero the counters. *)
