lib/cache/geometry.ml: Format
