lib/cache/geometry.mli: Format
