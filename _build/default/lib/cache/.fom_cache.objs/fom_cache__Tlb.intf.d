lib/cache/tlb.mli:
