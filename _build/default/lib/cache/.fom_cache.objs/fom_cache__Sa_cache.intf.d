lib/cache/sa_cache.mli: Geometry
