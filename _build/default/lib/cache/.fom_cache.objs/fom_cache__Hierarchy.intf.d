lib/cache/hierarchy.mli: Geometry
