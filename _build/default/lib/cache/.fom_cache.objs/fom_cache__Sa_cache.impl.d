lib/cache/sa_cache.ml: Array Geometry Option
