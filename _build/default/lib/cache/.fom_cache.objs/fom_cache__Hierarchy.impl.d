lib/cache/hierarchy.ml: Geometry Sa_cache
