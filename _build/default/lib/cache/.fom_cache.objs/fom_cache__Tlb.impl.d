lib/cache/tlb.ml: Geometry Sa_cache
