(* Each set stores [assoc] tags with an age stamp; the LRU victim is
   the smallest stamp. Sets are small (4-way baseline), so linear scans
   beat fancier structures. Tag -1 marks an invalid way. *)
type t = {
  geometry : Geometry.t;
  tags : int array;  (* sets * assoc *)
  stamps : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create geometry =
  let n = Geometry.sets geometry * geometry.Geometry.assoc in
  {
    geometry;
    tags = Array.make n (-1);
    stamps = Array.make n 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let geometry t = t.geometry

let find t addr =
  let g = t.geometry in
  let base = Geometry.set_index g addr * g.Geometry.assoc in
  let tag = Geometry.tag g addr in
  let rec scan way =
    if way >= g.Geometry.assoc then None
    else if t.tags.(base + way) = tag then Some (base + way)
    else scan (way + 1)
  in
  scan 0

let probe t addr = Option.is_some (find t addr)
let resident = probe

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  match find t addr with
  | Some slot ->
      t.stamps.(slot) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      let g = t.geometry in
      let base = Geometry.set_index g addr * g.Geometry.assoc in
      let victim = ref base in
      for way = 1 to g.Geometry.assoc - 1 do
        if t.stamps.(base + way) < t.stamps.(!victim) then victim := base + way
      done;
      t.tags.(!victim) <- Geometry.tag g addr;
      t.stamps.(!victim) <- t.clock;
      false

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  reset_stats t
