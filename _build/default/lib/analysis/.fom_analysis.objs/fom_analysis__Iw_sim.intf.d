lib/analysis/iw_sim.mli: Fom_isa Fom_trace
