lib/analysis/iw_curve.ml: Array Float Fom_trace Fom_util Iw_sim List
