lib/analysis/profile.ml: Array Fom_branch Fom_cache Fom_isa Fom_trace Fom_util List Option
