lib/analysis/iw_curve.mli: Fom_isa Fom_trace Fom_util
