lib/analysis/characterize.ml: Float Fom_model Fom_trace Fom_util Iw_curve Profile
