lib/analysis/profile.mli: Fom_branch Fom_cache Fom_isa Fom_trace Fom_util
