lib/analysis/iw_sim.ml: Array Fom_isa Fom_trace Option
