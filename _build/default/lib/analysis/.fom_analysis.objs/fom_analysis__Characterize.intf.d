lib/analysis/characterize.mli: Fom_branch Fom_cache Fom_isa Fom_model Fom_trace Iw_curve Profile
