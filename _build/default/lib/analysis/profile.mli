(** Functional (timing-free) trace profiling.

    One pass over the trace drives the caches and the branch predictor
    functionally and collects every rate and distribution the model
    needs — the paper's "simple trace-driven simulations of caches and
    branch predictors" (Section 5, step 5). No cycle-level machinery
    is involved. *)

type grouping =
  | Dependence_aware
      (** a long miss joins the open group only if it is within the
          group window of the group *leader* (only then can it enter
          the ROB while the leader's miss is outstanding) and does not
          transitively depend on a group member (a dependent miss
          serializes). Extension of the paper's analysis — its stated
          future-work item on overlap modeling. *)
  | Paper_naive
      (** the paper's Section 4.3 reading: consecutive misses within
          [rob_size] instructions of each other chain into one group,
          dependences ignored. Kept for the ablation bench. *)

type t = {
  instructions : int;
  class_counts : (Fom_isa.Opclass.t * int) list;
  avg_latency : float;
      (** mean instruction latency with short-miss service folded in
          (long misses excluded — they are modeled separately) *)
  branches : int;  (** conditional branches *)
  mispredictions : int;
  mispred_bursts : Fom_util.Distribution.t;
      (** burst = consecutive mispredictions within [burst_window]
          instructions of each other *)
  l1i_misses : int;  (** instruction fetches served by the L2 *)
  l2i_misses : int;  (** instruction fetches served by memory *)
  short_misses : int;  (** load L1D misses served by the L2 *)
  long_misses : int;  (** load misses served by memory *)
  long_miss_groups : Fom_util.Distribution.t;
      (** group = consecutive long misses within [group_window]
          instructions (the ROB size) of each other: the paper's
          [f_LDM] *)
  dtlb_misses : int;  (** load TLB misses (0 without a TLB) *)
  dtlb_groups : Fom_util.Distribution.t;
      (** TLB-miss group sizes (leader-anchored, ROB window) *)
}

val run :
  ?cache:Fom_cache.Hierarchy.config ->
  ?predictor:Fom_branch.Predictor.spec ->
  ?latencies:Fom_isa.Latency.t ->
  ?burst_window:int ->
  ?group_window:int ->
  ?grouping:grouping ->
  ?dtlb:Fom_cache.Tlb.spec ->
  Fom_trace.Program.t -> n:int -> t
(** Profile [n] instructions. Defaults: the paper's baseline cache
    hierarchy and 8K gShare, default latencies, burst window 48 (the
    issue-window size), group window 128 (the ROB size), and
    {!Dependence_aware} grouping. *)

val run_source :
  ?cache:Fom_cache.Hierarchy.config ->
  ?predictor:Fom_branch.Predictor.spec ->
  ?latencies:Fom_isa.Latency.t ->
  ?burst_window:int ->
  ?group_window:int ->
  ?grouping:grouping ->
  ?dtlb:Fom_cache.Tlb.spec ->
  Fom_trace.Source.t -> n:int -> t
(** {!run} over any replayable source (e.g. an imported trace). *)

val class_fraction : t -> Fom_isa.Opclass.t -> float

val per_instr : t -> int -> float
(** Normalize a count by the profiled instruction count. *)
