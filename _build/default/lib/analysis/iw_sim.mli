(** Idealized window-limited dataflow simulation.

    The paper's Section 3 measurement: ideal caches and branch
    prediction, unbounded functional units, unbounded (or optionally
    limited) issue width, instant window refill — the only constraint
    is the issue-window size, plus the trace's true dependences. With
    unit latencies this produces the implementation-independent IW
    curves of Figure 4; with an issue-width limit it produces the
    saturating curves of Figure 6. This is a simple trace-driven
    simulation, not a detailed one — the distinction the paper leans
    on. *)

val ipc :
  ?latencies:Fom_isa.Latency.t -> ?issue_limit:int ->
  Fom_trace.Program.t -> window:int -> n:int -> float
(** [ipc program ~window ~n]: average instructions issued per cycle
    over the first [n] instructions. Default latencies are unit;
    default issue width is unbounded. *)

val ipc_of_source :
  ?latencies:Fom_isa.Latency.t -> ?issue_limit:int ->
  Fom_trace.Source.t -> window:int -> n:int -> float
(** {!ipc} over any replayable source (e.g. an imported trace). *)
