(** Measured IW curves and their power-law fits (paper Table 1,
    Figures 4–5). *)

type point = { window : int; ipc : float }

type t = {
  points : point list;  (** measured, in increasing window order *)
  fit : Fom_util.Fit.power_law;  (** the log-log line fit *)
}

val default_windows : int list
(** 4, 8, 16, 32, 64, 128, 256 — the paper's Figure 4 range. *)

val measure :
  ?windows:int list -> ?n:int -> ?latencies:Fom_isa.Latency.t ->
  ?issue_limit:int -> Fom_trace.Program.t -> t
(** Run the idealized simulation at each window size and fit. Defaults:
    {!default_windows}, 30_000 instructions per point, unit latencies,
    unbounded issue — the implementation-independent curve. *)

val measure_source :
  ?windows:int list -> ?n:int -> ?latencies:Fom_isa.Latency.t ->
  ?issue_limit:int -> Fom_trace.Source.t -> t
(** {!measure} over any replayable source. *)

val alpha : t -> float
val beta : t -> float

val log2_points : t -> (float * float) list
(** [(log2 window, log2 ipc)] pairs, for Figure 4/5-style output. *)
