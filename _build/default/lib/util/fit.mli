(** Least-squares line and power-law fitting.

    The paper fits issue-window characteristics to [I = alpha * W^beta]
    by fitting a line on a log2-log2 scale (Section 3, Table 1,
    Figure 5). *)

type line = { slope : float; intercept : float; r2 : float }
(** A fitted line [y = slope * x + intercept] with its coefficient of
    determination. *)

val line : (float * float) array -> line
(** Ordinary least squares on (x, y) points. Requires at least two points
    with distinct x. *)

type power_law = { alpha : float; beta : float; r2 : float }
(** A fitted power law [y = alpha * x^beta]. *)

val power_law : (float * float) array -> power_law
(** [power_law points] fits on log2/log2 axes, exactly as the paper does.
    All coordinates must be positive. *)

val eval_line : line -> float -> float
(** Evaluate a fitted line. *)

val eval_power_law : power_law -> float -> float
(** Evaluate a fitted power law. *)
