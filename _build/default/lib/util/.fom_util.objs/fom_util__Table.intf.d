lib/util/table.mli:
