lib/util/csv.ml: Fun List String
