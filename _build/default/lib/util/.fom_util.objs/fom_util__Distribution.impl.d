lib/util/distribution.ml: Hashtbl List Option
