lib/util/csv.mli:
