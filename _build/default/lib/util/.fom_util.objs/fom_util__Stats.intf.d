lib/util/stats.mli:
