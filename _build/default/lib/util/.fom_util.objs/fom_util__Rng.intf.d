lib/util/rng.mli:
