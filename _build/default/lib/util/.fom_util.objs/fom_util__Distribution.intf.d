lib/util/distribution.mli:
