lib/util/fit.mli:
