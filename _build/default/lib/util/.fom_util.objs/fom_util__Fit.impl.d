lib/util/fit.ml: Array Float Stats
