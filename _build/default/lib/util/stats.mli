(** Descriptive statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min : float array -> float
(** Smallest sample. Requires a non-empty array. *)

val max : float array -> float
(** Largest sample. Requires a non-empty array. *)

val sum : float array -> float
(** Sum of samples. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [0,100], by linear interpolation on the
    sorted samples. Requires a non-empty array. *)

val weighted_mean : (float * float) array -> float
(** [weighted_mean pairs] where each pair is (value, weight). 0 when the
    total weight is 0. *)

val geometric_mean : float array -> float
(** Geometric mean of positive samples; 0 on an empty array. *)

val mean_abs_error : float array -> float array -> float
(** [mean_abs_error reference candidate] is the mean of
    |candidate - reference| / |reference| over pairs with a non-zero
    reference. Arrays must have equal length. *)

val max_abs_error : float array -> float array -> float
(** Worst-case relative error, same convention as {!mean_abs_error}. *)

module Acc : sig
  (** Streaming accumulator: count, mean, variance, min, max in O(1)
      memory (Welford's algorithm). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val min : t -> float
  val max : t -> float
end
