(** Empirical discrete distributions over small non-negative integers.

    Used for the paper's long data-cache-miss group-size distribution
    [f_LDM(i)] (Section 4.3, eq. 8) and for misprediction burst sizes. *)

type t
(** A frequency table over integer outcomes. *)

val create : unit -> t
(** Empty distribution. *)

val add : t -> int -> unit
(** [add t k] records one observation of outcome [k]. Requires [k >= 0]. *)

val add_many : t -> int -> int -> unit
(** [add_many t k n] records [n] observations of [k]. *)

val total : t -> int
(** Number of recorded observations. *)

val count : t -> int -> int
(** Observations of a given outcome. *)

val probability : t -> int -> float
(** [probability t k] is the empirical frequency of [k]; 0 when the
    distribution is empty. *)

val support : t -> int list
(** Outcomes with non-zero count, in increasing order. *)

val mean : t -> float
(** Empirical mean outcome. *)

val expect : t -> (int -> float) -> float
(** [expect t f] is the empirical expectation of [f]. In the paper's
    eq. 8 this is used with [f i = 1 / i] over miss-group sizes. *)

val of_list : (int * int) list -> t
(** Build from (outcome, count) pairs. *)

val to_list : t -> (int * int) list
(** Dump (outcome, count) pairs in increasing outcome order. *)
