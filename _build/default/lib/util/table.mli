(** Plain-text table and series rendering for the experiment harness.

    The bench executable prints each reproduced table/figure as an
    aligned text table (for tables and bar charts) or as an x/y series
    listing (for curves), so the output can be compared line-by-line
    with the paper's exhibits. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a table with column widths fitted to
    the content. The default alignment is [Left] for the first column
    and [Right] for the rest. Rows shorter than the header are padded
    with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** {!render} followed by [print_string]. *)

val float_cell : ?decimals:int -> float -> string
(** Format a float with a fixed number of decimals (default 3). *)

val series :
  title:string -> x_label:string -> y_labels:string list ->
  (float * float list) list -> string
(** [series ~title ~x_label ~y_labels points] renders a multi-column
    curve: one row per x value, one column per named series. *)

val heading : string -> string
(** Render a section heading with an underline, for harness output. *)
