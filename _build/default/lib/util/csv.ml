let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line fields = String.concat "," (List.map escape fields) ^ "\n"

let render ~header rows =
  String.concat "" (line header :: List.map line rows)

let write_file ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header rows))
