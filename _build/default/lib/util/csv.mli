(** Minimal CSV writing, for exporting harness tables.

    RFC-4180-style quoting: fields containing commas, quotes or
    newlines are quoted, with embedded quotes doubled. *)

val escape : string -> string
(** Quote one field if needed. *)

val line : string list -> string
(** One CSV record, newline-terminated. *)

val render : header:string list -> string list list -> string
(** Header plus rows. *)

val write_file : path:string -> header:string list -> string list list -> unit
(** {!render} to a file, creating or truncating it. *)
