type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        cells
    in
    "  " ^ String.concat "  " padded
  in
  let rule =
    "  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let float_cell ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let series ~title ~x_label ~y_labels points =
  let header = x_label :: y_labels in
  let rows =
    List.map
      (fun (x, ys) -> float_cell ~decimals:2 x :: List.map float_cell ys)
      points
  in
  title ^ "\n" ^ render ~header rows

let heading s =
  let bar = String.make (String.length s) '=' in
  "\n" ^ s ^ "\n" ^ bar ^ "\n"
