lib/branch/predictor.mli:
