lib/branch/predictor.ml: Array Bytes Char Stdlib
