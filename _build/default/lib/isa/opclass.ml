type t = Alu | Mul | Div | Load | Store | Branch | Jump

let all = [ Alu; Mul; Div; Load; Store; Branch; Jump ]
let is_memory = function Load | Store -> true | Alu | Mul | Div | Branch | Jump -> false
let is_control = function Branch | Jump -> true | Alu | Mul | Div | Load | Store -> false

let to_string = function
  | Alu -> "alu"
  | Mul -> "mul"
  | Div -> "div"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Jump -> "jump"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
