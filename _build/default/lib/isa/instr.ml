type ctrl = { target : int; taken : bool }

type t = {
  index : int;
  pc : int;
  opclass : Opclass.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  deps : int array;
  mem : int option;
  ctrl : ctrl option;
}

let make ~index ~pc ~opclass ?dst ?(srcs = []) ?(deps = [||]) ?mem ?ctrl () =
  assert (index >= 0);
  assert (List.length srcs <= 2);
  assert (Array.for_all (fun d -> d >= 0 && d < index) deps);
  assert (Opclass.is_memory opclass = Option.is_some mem);
  assert (Opclass.is_control opclass = Option.is_some ctrl);
  { index; pc; opclass; dst; srcs; deps; mem; ctrl }

let is_load t = Opclass.equal t.opclass Opclass.Load
let is_store t = Opclass.equal t.opclass Opclass.Store
let is_branch t = Opclass.equal t.opclass Opclass.Branch
let is_control t = Opclass.is_control t.opclass

let pp fmt t =
  Format.fprintf fmt "#%d pc=0x%x %a" t.index t.pc Opclass.pp t.opclass;
  Option.iter (fun d -> Format.fprintf fmt " %a<-" Reg.pp d) t.dst;
  List.iter (fun s -> Format.fprintf fmt " %a" Reg.pp s) t.srcs;
  Option.iter (fun a -> Format.fprintf fmt " [0x%x]" a) t.mem;
  Option.iter
    (fun c -> Format.fprintf fmt " %s->0x%x" (if c.taken then "T" else "N") c.target)
    t.ctrl
