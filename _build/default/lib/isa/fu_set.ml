type t = {
  alu : int;
  mul : int;
  div : int;
  load : int;
  store : int;
  branch : int;
  jump : int;
}

let unbounded =
  {
    alu = max_int;
    mul = max_int;
    div = max_int;
    load = max_int;
    store = max_int;
    branch = max_int;
    jump = max_int;
  }

let make ?(alu = max_int) ?(mul = max_int) ?(div = max_int) ?(load = max_int)
    ?(store = max_int) ?(branch = max_int) ?(jump = max_int) () =
  let t = { alu; mul; div; load; store; branch; jump } in
  assert (alu >= 1 && mul >= 1 && div >= 1 && load >= 1);
  assert (store >= 1 && branch >= 1 && jump >= 1);
  t

let of_class t = function
  | Opclass.Alu -> t.alu
  | Opclass.Mul -> t.mul
  | Opclass.Div -> t.div
  | Opclass.Load -> t.load
  | Opclass.Store -> t.store
  | Opclass.Branch -> t.branch
  | Opclass.Jump -> t.jump

let is_unbounded t = t = unbounded
