(** Architectural register names.

    The synthetic ISA has a flat integer register file. Only true (RAW)
    dependences matter to the modeled machine — the paper's processor
    renames registers, so WAR/WAW hazards never constrain issue — and a
    register name is exactly a dependence tag. *)

type t = private int
(** A register index in [0, count - 1]. *)

val count : int
(** Number of architectural registers (32). *)

val of_int : int -> t
(** [of_int i] checks bounds. *)

val to_int : t -> int
(** Raw index. *)

val zero_reg : t
(** Register 0, conventionally the hard-wired zero: writes to it create
    no dependence and readers of it are always ready. *)

val is_zero : t -> bool
(** Whether this is {!zero_reg}. *)

val pp : Format.formatter -> t -> unit
(** Prints as [r<i>]. *)

val equal : t -> t -> bool
