lib/isa/instr.ml: Array Format List Opclass Option Reg
