lib/isa/latency.mli: Opclass
