lib/isa/instr.mli: Format Opclass Reg
