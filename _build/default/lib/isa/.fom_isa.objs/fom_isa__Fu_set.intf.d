lib/isa/fu_set.mli: Opclass
