lib/isa/reg.ml: Format Int
