lib/isa/fu_set.ml: Opclass
