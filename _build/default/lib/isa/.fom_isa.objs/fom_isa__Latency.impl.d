lib/isa/latency.ml: List Opclass
