(** Operation classes of the synthetic RISC-like ISA.

    The modeled machine has an unbounded number of functional units of
    each type (paper, Section 1), so an operation class only determines
    the execution latency and whether the instruction touches memory or
    redirects control. *)

type t =
  | Alu  (** single-cycle integer operation *)
  | Mul  (** integer multiply *)
  | Div  (** integer divide (long-latency) *)
  | Load  (** memory read; latency also depends on the data cache *)
  | Store  (** memory write *)
  | Branch  (** conditional branch *)
  | Jump  (** unconditional direct jump / call / return *)

val all : t list
(** Every class, in declaration order. *)

val is_memory : t -> bool
(** Loads and stores. *)

val is_control : t -> bool
(** Branches and jumps. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
