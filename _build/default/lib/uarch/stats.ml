type t = {
  instructions : int;
  cycles : int;
  branch_mispredictions : int;
  l1i_misses : int;
  l2i_misses : int;
  short_data_misses : int;
  long_data_misses : int;
  dtlb_misses : int;
  mispredictions_under_long_miss : int;
  imisses_under_long_miss : int;
  window_at_branch_issue : float;
  rob_ahead_of_long_miss : float;
  mean_window_occupancy : float;
  mean_rob_occupancy : float;
}

let ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.instructions /. float_of_int t.cycles

let cpi t =
  if t.instructions = 0 then 0.0 else float_of_int t.cycles /. float_of_int t.instructions

let per_instruction count t =
  if t.instructions = 0 then 0.0 else float_of_int count /. float_of_int t.instructions

let mispredictions_per_instruction t = per_instruction t.branch_mispredictions t
let long_misses_per_instruction t = per_instruction t.long_data_misses t

let pp fmt t =
  Format.fprintf fmt
    "@[<v>instructions      %d@,\
     cycles            %d@,\
     IPC               %.3f@,\
     mispredictions    %d (%.4f/instr)@,\
     L1I misses        %d@,\
     L2I misses        %d@,\
     short data misses %d@,\
     long data misses  %d (%.4f/instr)@,\
     dtlb misses       %d@,\
     mispred under long miss %d@,\
     imiss under long miss   %d@,\
     window @@ branch issue   %.2f@,\
     rob ahead of long miss  %.2f@,\
     mean window occupancy   %.2f@,\
     mean rob occupancy      %.2f@]"
    t.instructions t.cycles (ipc t) t.branch_mispredictions
    (mispredictions_per_instruction t)
    t.l1i_misses t.l2i_misses t.short_data_misses t.long_data_misses
    (long_misses_per_instruction t)
    t.dtlb_misses
    t.mispredictions_under_long_miss t.imisses_under_long_miss
    t.window_at_branch_issue t.rob_ahead_of_long_miss t.mean_window_occupancy
    t.mean_rob_occupancy
