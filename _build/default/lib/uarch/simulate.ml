let run_source config source ~n =
  let machine = Machine.create config (Fom_trace.Source.fresh source) in
  Machine.run machine ~n

let run config program ~n = run_source config (Fom_trace.Source.of_program program) ~n

let run_config config workload ~n = run config (Fom_trace.Program.generate workload) ~n

type event_penalty = { events : int; penalty_per_event : float }

let isolate ~base ~faulty ~events program ~n =
  let faulty_stats = run faulty program ~n in
  let base_stats = run base program ~n in
  let n_events = events faulty_stats in
  let delta = faulty_stats.Stats.cycles - base_stats.Stats.cycles in
  {
    events = n_events;
    penalty_per_event =
      (if n_events = 0 then 0.0 else float_of_int delta /. float_of_int n_events);
  }
