(** The detailed cycle-level simulator.

    Trace-driven, correct-path timing simulation of the paper's
    first-order superscalar machine. Per simulated cycle, in order:
    retire (up to width, in order, completed only), issue (oldest
    first from the window, up to width, operands ready), dispatch
    (front-end pipe into window and ROB, stalling when either is
    full), fetch (up to width; an I-cache miss stalls fetch for the
    fill delay; a mispredicted conditional branch stops fetch of
    useful instructions until the branch completes, after which the
    refilled front end costs its depth — the paper's Figure 7
    transient). Loads probe the data hierarchy at issue: an L1 hit
    costs the L1 latency, an L2 hit the short-miss latency, an L2 miss
    the memory latency; misses overlap freely (unbounded MSHRs), and a
    long-miss load at the ROB head blocks retirement — the paper's
    Section 4.3 mechanism. Wrong-path instructions are not simulated:
    with oldest-first issue they never displace useful issue slots
    (paper, Section 4.1).

    The paper's five Figure 2 configurations are obtained purely by
    idealizing caches/predictor in the {!Config.t}. *)

type t

val create : Config.t -> (unit -> Fom_isa.Instr.t) -> t
(** [create config next] builds a machine pulling instructions from
    [next] (typically [Fom_trace.Stream.next]). *)

exception Cycle_limit_exceeded
(** Raised when the simulation exceeds its cycle budget — a deadlock
    guard; it should never fire for well-formed traces. *)

val run : ?cycle_limit:int -> t -> n:int -> Stats.t
(** Simulate until [n] instructions retire. The default cycle limit is
    [250 * n + 100_000] (an all-miss trace cannot be slower). *)

val run_recorded : ?cycle_limit:int -> t -> n:int -> Stats.t * int array * int array
(** Like {!run}, additionally recording the per-cycle issue counts and
    the cycles at which a mispredicted branch resolved (fetch
    restarts) — the raw material for empirical issue-ramp curves
    (paper Figure 19) and issue-rate distributions. *)
