type t = {
  width : int;
  pipeline_depth : int;
  window_size : int;
  rob_size : int;
  unbounded_issue : bool;
  latencies : Fom_isa.Latency.t;
  cache : Fom_cache.Hierarchy.config;
  predictor : Fom_branch.Predictor.spec;
  fu_limits : Fom_isa.Fu_set.t;
  dtlb : Fom_cache.Tlb.spec option;
  fetch_buffer : int;
  clusters : int;
}

let baseline =
  {
    width = 4;
    pipeline_depth = 5;
    window_size = 48;
    rob_size = 128;
    unbounded_issue = false;
    latencies = Fom_isa.Latency.default;
    cache = Fom_cache.Hierarchy.baseline;
    predictor = Fom_branch.Predictor.default_spec;
    fu_limits = Fom_isa.Fu_set.unbounded;
    dtlb = None;
    fetch_buffer = 0;
    clusters = 1;
  }

let validate t =
  assert (t.width >= 1);
  assert (t.pipeline_depth >= 1);
  assert (t.window_size >= 1);
  assert (t.rob_size >= t.window_size);
  assert (t.fetch_buffer >= 0);
  assert (t.clusters >= 1);
  assert (t.width mod t.clusters = 0);
  assert (t.window_size mod t.clusters = 0)

let ideal ?width ?window_size t =
  {
    t with
    width = Option.value width ~default:t.width;
    window_size = Option.value window_size ~default:t.window_size;
    cache = Fom_cache.Hierarchy.all_ideal;
    predictor = Fom_branch.Predictor.Ideal;
  }

let with_cache cache t = { t with cache }
let with_predictor predictor t = { t with predictor }
let with_depth pipeline_depth t = { t with pipeline_depth }
let with_width width t = { t with width }
let with_fu_limits fu_limits t = { t with fu_limits }
let with_dtlb spec t = { t with dtlb = Some spec }
let with_fetch_buffer fetch_buffer t = { t with fetch_buffer }
let with_clusters clusters t = { t with clusters }
