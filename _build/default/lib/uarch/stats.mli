(** Statistics collected by a detailed simulation run. *)

type t = {
  instructions : int;  (** instructions retired *)
  cycles : int;
  (* miss events *)
  branch_mispredictions : int;
  l1i_misses : int;  (** instruction fetches served by the L2 *)
  l2i_misses : int;  (** instruction fetches served by memory *)
  short_data_misses : int;  (** load L1D misses served by the L2 *)
  long_data_misses : int;  (** load L2 misses served by memory *)
  dtlb_misses : int;  (** load TLB misses (0 without a TLB) *)
  (* overlap accounting for the Figure 2 compensation *)
  mispredictions_under_long_miss : int;
      (** mispredicted branches fetched while a long data miss was
          outstanding *)
  imisses_under_long_miss : int;
      (** instruction-cache misses suffered while a long data miss was
          outstanding *)
  (* model-validation probes *)
  window_at_branch_issue : float;
      (** mean useful instructions left in the window when a
          mispredicted branch issues (paper: about 1.3) *)
  rob_ahead_of_long_miss : float;
      (** mean instructions ahead of a long-miss load in the ROB when
          it issues (paper: about 9) *)
  mean_window_occupancy : float;
  mean_rob_occupancy : float;
}

val ipc : t -> float
val cpi : t -> float

val mispredictions_per_instruction : t -> float
val long_misses_per_instruction : t -> float

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)
