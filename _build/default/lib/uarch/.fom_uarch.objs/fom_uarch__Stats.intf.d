lib/uarch/stats.mli: Format
