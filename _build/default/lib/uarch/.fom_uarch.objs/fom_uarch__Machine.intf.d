lib/uarch/machine.mli: Config Fom_isa Stats
