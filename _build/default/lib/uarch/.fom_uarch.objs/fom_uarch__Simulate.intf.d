lib/uarch/simulate.mli: Config Fom_trace Stats
