lib/uarch/stats.ml: Format
