lib/uarch/config.mli: Fom_branch Fom_cache Fom_isa
