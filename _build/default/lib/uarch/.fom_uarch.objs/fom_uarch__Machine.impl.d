lib/uarch/machine.ml: Array Config Fom_branch Fom_cache Fom_isa Fom_util List Option Queue Stats Stdlib
