lib/uarch/config.ml: Fom_branch Fom_cache Fom_isa Option
