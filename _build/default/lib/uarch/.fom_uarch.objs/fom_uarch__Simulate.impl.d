lib/uarch/simulate.ml: Fom_trace Machine Stats
