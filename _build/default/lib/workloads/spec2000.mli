(** SPECint2000-like synthetic workload presets.

    The paper evaluates on the 12 SPECint2000 benchmarks. We cannot run
    SPEC binaries here, so each benchmark is replaced by a synthetic
    workload whose first-order statistics are calibrated to the
    benchmark's published character (see DESIGN.md, substitution table):

    - gzip: mid-range ILP (paper: alpha 1.3, beta 0.5, latency 1.5),
      bursty mispredictions, tiny code footprint.
    - vortex: high ILP (beta 0.7), large code footprint (I-cache bound),
      well-predicted branches.
    - vpr: low ILP (beta 0.3), high mean latency (2.2), hard branches,
      noticeable long misses.
    - mcf: pointer chasing — long d-cache misses dominate CPI.
    - twolf: long misses plus many mispredictions.
    - gcc, crafty, eon, gap, parser, perlbmk, bzip2: intermediate
      points spanning the remaining behaviours (see each preset's
      comment in the implementation).

    All presets share the ISA latency profile and differ only in the
    statistics the model consumes. *)

val all : Fom_trace.Config.t list
(** The 12 presets, in the paper's (alphabetical) bar-chart order:
    bzip2, crafty, eon, gap, gcc, gzip, mcf, parser, perlbmk, twolf,
    vortex, vpr. *)

val names : string list
(** Names of {!all}, in order. *)

val find : string -> Fom_trace.Config.t
(** Look up a preset by name.
    @raise Not_found if the name is not one of {!names}. *)

val with_seed : int -> Fom_trace.Config.t -> Fom_trace.Config.t
(** Re-seed a preset (e.g. for replication studies). *)
