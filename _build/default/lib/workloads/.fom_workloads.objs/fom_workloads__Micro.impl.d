lib/workloads/micro.ml: Fom_isa Fom_trace List String
