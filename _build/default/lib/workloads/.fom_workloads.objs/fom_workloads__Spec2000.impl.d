lib/workloads/spec2000.ml: Fom_isa Fom_trace List String
