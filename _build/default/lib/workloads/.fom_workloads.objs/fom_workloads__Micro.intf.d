lib/workloads/micro.mli: Fom_trace
