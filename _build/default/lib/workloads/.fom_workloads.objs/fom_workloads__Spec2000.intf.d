lib/workloads/spec2000.mli: Fom_trace
