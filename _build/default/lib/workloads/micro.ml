module Config = Fom_trace.Config

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* A neutral scaffold the stress presets specialize: ALU-only mix with
   sparse, predictable control and all-local memory. *)
let scaffold name seed =
  {
    Config.name;
    seed;
    mix =
      { Config.load = 0.0; store = 0.0; branch = 0.09; jump = 0.01; mul = 0.0; div = 0.0 };
    deps =
      { Config.short_p = 0.8; short_mean = 3.0; long_max = 128; nsrc_weights = [| 1.0; 0.0; 0.0 |] };
    control =
      {
        Config.regions = 2;
        blocks_per_region = 8;
        chaotic_frac = 0.0;
        chaotic_low = 0.3;
        chaotic_high = 0.7;
        pattern_frac = 0.0;
        pattern_max_period = 8;
        loop_trip_mean = 16.0;
        bias = 0.0;
      };
    memory =
      {
        Config.local_frac = 1.0;
        random_frac = 0.0;
        stream_frac = 0.0;
        chase_frac = 0.0;
        local_region = kib 2;
        random_region = kib 64;
        stream_region = mib 2;
        chase_region = mib 8;
        stream_stride = 8;
        chase_chains = 0;
      };
    latencies = Fom_isa.Latency.unit;
  }

let serial_chain =
  let c = scaffold "serial-chain" 201 in
  {
    c with
    Config.deps =
      { Config.short_p = 1.0; short_mean = 1.0; long_max = 1; nsrc_weights = [| 0.0; 1.0; 0.0 |] };
  }

let independent = scaffold "independent" 202

let pointer_chase =
  let c = scaffold "pointer-chase" 203 in
  {
    c with
    Config.mix = { c.Config.mix with Config.load = 0.25 };
    memory =
      {
        c.Config.memory with
        Config.local_frac = 0.0;
        chase_frac = 1.0;
        chase_region = mib 16;
        chase_chains = 1;
      };
  }

let streaming =
  let c = scaffold "streaming" 204 in
  {
    c with
    Config.mix = { c.Config.mix with Config.load = 0.25; store = 0.05 };
    memory = { c.Config.memory with Config.local_frac = 0.0; stream_frac = 1.0 };
  }

let branchy =
  let c = scaffold "branchy" 205 in
  {
    c with
    Config.mix = { c.Config.mix with Config.branch = 0.24; jump = 0.01 };
    control =
      { c.Config.control with Config.chaotic_frac = 0.5; chaotic_low = 0.4; chaotic_high = 0.6 };
  }

let loopy =
  let c = scaffold "loopy" 206 in
  { c with Config.control = { c.Config.control with Config.loop_trip_mean = 64.0 } }

let all = [ serial_chain; independent; pointer_chase; streaming; branchy; loopy ]

let find name = List.find (fun (c : Config.t) -> String.equal c.Config.name name) all
