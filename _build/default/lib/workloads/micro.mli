(** Micro-workloads with analytically known behaviour.

    Unlike the SPECint2000-like presets, these are single-behaviour
    stress workloads whose model quantities are predictable in closed
    form, which makes them useful both as unit-test fixtures and as
    probes when studying one mechanism in isolation:

    - {!serial_chain}: every value-producing instruction depends on
      its predecessor — IPC is 1 at any window size (unit latency).
    - {!independent}: no register dependences — the window-limited
      issue rate equals the window (unbounded width) or the width.
    - {!pointer_chase}: one dependent load chain over a
      memory-exceeding region — serialized long misses, the worst
      case for the paper's overlap assumption.
    - {!streaming}: sequential walks over memory-exceeding regions —
      independent, regularly spaced long misses, the best case.
    - {!branchy}: dense, unlearnable branches — misprediction-bound.
    - {!loopy}: tiny, perfectly predictable loop nest — near-ideal. *)

val serial_chain : Fom_trace.Config.t
val independent : Fom_trace.Config.t
val pointer_chase : Fom_trace.Config.t
val streaming : Fom_trace.Config.t
val branchy : Fom_trace.Config.t
val loopy : Fom_trace.Config.t

val all : Fom_trace.Config.t list
(** Every micro-workload, in the order above. *)

val find : string -> Fom_trace.Config.t
(** Look up by name.
    @raise Not_found for unknown names. *)
