module Config = Fom_trace.Config
module Latency = Fom_isa.Latency

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* A mid-road SPECint-like starting point; every preset overrides the
   fields that give the benchmark its published character. *)
let base name seed =
  {
    Config.name;
    seed;
    mix =
      {
        Config.load = 0.24;
        store = 0.10;
        branch = 0.17;
        jump = 0.03;
        mul = 0.01;
        div = 0.001;
      };
    deps =
      {
        Config.short_p = 0.85;
        short_mean = 3.0;
        long_max = 256;
        nsrc_weights = [| 0.15; 0.50; 0.35 |];
      };
    control =
      {
        Config.regions = 4;
        blocks_per_region = 24;
        chaotic_frac = 0.02;
        chaotic_low = 0.25;
        chaotic_high = 0.75;
        pattern_frac = 0.05;
        pattern_max_period = 24;
        loop_trip_mean = 24.0;
        bias = 0.005;
      };
    memory =
      {
        Config.local_frac = 0.85;
        random_frac = 0.10;
        stream_frac = 0.04;
        chase_frac = 0.01;
        local_region = kib 2;
        random_region = kib 96;
        stream_region = mib 2;
        chase_region = mib 8;
        stream_stride = 8;
        chase_chains = 0;
      };
    latencies = Latency.default;
  }

(* bzip2: regular compression loops — few I-misses, streaming data,
   predictable branches, mid ILP. *)
let bzip2 =
  let c = base "bzip2" 101 in
  {
    c with
    Config.control = { c.control with chaotic_frac = 0.012; pattern_frac = 0.10 };
    memory = { c.memory with local_frac = 0.78; random_frac = 0.12; stream_frac = 0.09; chase_frac = 0.01 };
  }

(* crafty: chess search — big code, lots of well-predicted branches,
   high ILP, tiny data working set. *)
let crafty =
  let c = base "crafty" 102 in
  {
    c with
    Config.mix = { c.mix with branch = 0.14; jump = 0.06 };
    deps = { c.deps with short_p = 0.7; short_mean = 2.5; nsrc_weights = [| 0.22; 0.48; 0.30 |] };
    control = { c.control with regions = 40; blocks_per_region = 28; chaotic_frac = 0.012; loop_trip_mean = 10.0 };
    memory = { c.memory with local_frac = 0.93; random_frac = 0.06; stream_frac = 0.008; chase_frac = 0.002 };
  }

(* eon: C++ ray tracer — large instruction footprint, very predictable
   control, almost no data misses. *)
let eon =
  let c = base "eon" 103 in
  {
    c with
    Config.mix = { c.mix with branch = 0.12; jump = 0.06; mul = 0.06 };
    deps = { c.deps with short_p = 0.75; short_mean = 2.5 };
    control = { c.control with regions = 44; blocks_per_region = 24; chaotic_frac = 0.006; loop_trip_mean = 8.0 };
    memory = { c.memory with local_frac = 0.95; random_frac = 0.045; stream_frac = 0.004; chase_frac = 0.001 };
  }

(* gap: group theory — high ILP even past mispredicted branches (the
   paper's outlier with 8 useful instructions left in the window),
   noticeable I-misses and clustered long d-misses. *)
let gap =
  let c = base "gap" 104 in
  {
    c with
    Config.mix = { c.mix with branch = 0.14; jump = 0.06 };
    deps = { Config.short_p = 0.65; short_mean = 3.0; long_max = 384; nsrc_weights = [| 0.28; 0.47; 0.25 |] };
    control = { c.control with regions = 36; blocks_per_region = 24; chaotic_frac = 0.006; loop_trip_mean = 14.0 };
    memory = { c.memory with local_frac = 0.83; random_frac = 0.10; stream_frac = 0.06; chase_frac = 0.01 };
  }

(* gcc: compiler — jumpy control flow with moderate everything; the
   paper's runs show negligible I-cache misses for the input used, so
   the footprint stays modest. *)
let gcc =
  let c = base "gcc" 105 in
  {
    c with
    Config.control = { c.control with regions = 6; blocks_per_region = 28; chaotic_frac = 0.03; loop_trip_mean = 12.0 };
    memory = { c.memory with local_frac = 0.86; random_frac = 0.11; stream_frac = 0.02; chase_frac = 0.01 };
  }

(* gzip: small hot loops (tiny code footprint), bursty hard-to-predict
   branches; paper: alpha 1.3, beta 0.5, mean latency 1.5. *)
let gzip =
  let c = base "gzip" 106 in
  {
    c with
    Config.mix = { c.mix with mul = 0.08 };
    control =
      { c.control with regions = 2; blocks_per_region = 16; chaotic_frac = 0.10;
        chaotic_low = 0.3; chaotic_high = 0.7; loop_trip_mean = 32.0 };
    memory = { c.memory with local_frac = 0.80; random_frac = 0.13; stream_frac = 0.06; chase_frac = 0.01 };
  }

(* mcf: pointer-chasing network simplex — long d-cache misses dominate
   (70% of CPI in the paper), low ILP. *)
let mcf =
  let c = base "mcf" 107 in
  {
    c with
    Config.mix = { c.mix with load = 0.30; store = 0.08 };
    deps = { c.deps with short_p = 0.85; short_mean = 2.5 };
    control = { c.control with regions = 2; blocks_per_region = 12; chaotic_frac = 0.03; loop_trip_mean = 40.0 };
    memory =
      { c.memory with local_frac = 0.62; random_frac = 0.12; stream_frac = 0.10;
        chase_frac = 0.16; chase_region = mib 16 };
  }

(* parser: dictionary lookups — moderate mispredictions, moderate
   short misses, mid ILP, noticeable I-misses. *)
let parser =
  let c = base "parser" 108 in
  {
    c with
    Config.mix = { c.mix with branch = 0.14; jump = 0.06 };
    control = { c.control with regions = 30; blocks_per_region = 24; chaotic_frac = 0.015; loop_trip_mean = 10.0 };
    memory = { c.memory with local_frac = 0.80; random_frac = 0.15; stream_frac = 0.03; chase_frac = 0.02 };
  }

(* perlbmk: interpreter dispatch — large code footprint, indirect-ish
   jumpy control, branchy. *)
let perlbmk =
  let c = base "perlbmk" 109 in
  {
    c with
    Config.mix = { c.mix with branch = 0.15; jump = 0.06 };
    control = { c.control with regions = 44; blocks_per_region = 26; chaotic_frac = 0.012; loop_trip_mean = 8.0 };
    memory = { c.memory with local_frac = 0.88; random_frac = 0.09; stream_frac = 0.02; chase_frac = 0.01 };
  }

(* twolf: place and route — long d-misses (60% of CPI) plus many
   mispredictions; low-mid ILP. *)
let twolf =
  let c = base "twolf" 110 in
  {
    c with
    Config.mix = { c.mix with load = 0.27; mul = 0.03; branch = 0.14; jump = 0.05 };
    deps = { c.deps with short_p = 0.85; short_mean = 2.5 };
    control =
      { c.control with regions = 24; blocks_per_region = 20; chaotic_frac = 0.045;
        chaotic_low = 0.3; chaotic_high = 0.7; loop_trip_mean = 8.0 };
    memory =
      { c.memory with local_frac = 0.70; random_frac = 0.14; stream_frac = 0.06;
        chase_frac = 0.10; chase_region = mib 12 };
  }

(* vortex: OO database — the paper's high-ILP extreme (beta 0.7) with a
   big instruction footprint and well-predicted branches. *)
let vortex =
  let c = base "vortex" 111 in
  {
    c with
    Config.mix = { c.mix with branch = 0.13; jump = 0.07 };
    deps =
      { Config.short_p = 0.70; short_mean = 2.2; long_max = 512; nsrc_weights = [| 0.25; 0.48; 0.27 |] };
    control = { c.control with regions = 52; blocks_per_region = 26; chaotic_frac = 0.002; loop_trip_mean = 24.0 };
    memory = { c.memory with local_frac = 0.88; random_frac = 0.10; stream_frac = 0.015; chase_frac = 0.005 };
  }

(* vpr: the paper's low-ILP extreme (beta 0.3) with high mean latency
   (2.2 cycles) and hard branches. *)
let vpr =
  let c = base "vpr" 112 in
  {
    c with
    Config.mix = { c.mix with load = 0.26; mul = 0.20; div = 0.025 };
    deps = { Config.short_p = 0.97; short_mean = 2.0; long_max = 64; nsrc_weights = [| 0.04; 0.46; 0.50 |] };
    control =
      { c.control with regions = 3; blocks_per_region = 20; chaotic_frac = 0.04;
        chaotic_low = 0.3; chaotic_high = 0.7; loop_trip_mean = 16.0 };
    memory =
      { c.memory with local_frac = 0.74; random_frac = 0.16; stream_frac = 0.05; chase_frac = 0.05 };
  }

let all = [ bzip2; crafty; eon; gap; gcc; gzip; mcf; parser; perlbmk; twolf; vortex; vpr ]
let names = List.map (fun (c : Config.t) -> c.Config.name) all

let find name =
  List.find (fun (c : Config.t) -> String.equal c.Config.name name) all

let with_seed seed (c : Config.t) = { c with Config.seed }
