(* fom: command-line front end to the first-order superscalar model.

   Subcommands mirror the paper's workflow:
     iw        measure a workload's IW curve and power-law fit
     profile   functional cache/predictor profiling of a trace
     model     evaluate the first-order model (inputs + CPI breakdown)
     simulate  run the detailed cycle-level simulator
     compare   model vs simulation across workloads
     trends    the Section 6 pipeline-depth and issue-width studies *)

open Cmdliner

let all_workloads = Fom_workloads.Spec2000.all @ Fom_workloads.Micro.all

let workload_names =
  String.concat ", " (List.map (fun c -> c.Fom_trace.Config.name) all_workloads)

let lookup_workload name =
  match List.find (fun c -> String.equal c.Fom_trace.Config.name name) all_workloads with
  | config -> Ok config
  | exception Not_found ->
      Error (Printf.sprintf "unknown workload %S (expected one of: %s)" name workload_names)

let workload_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (lookup_workload s) in
  let print fmt (c : Fom_trace.Config.t) = Format.pp_print_string fmt c.Fom_trace.Config.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    value
    & opt workload_conv (Fom_workloads.Spec2000.find "gzip")
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:(Printf.sprintf "Workload: %s." workload_names))

let instructions_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "instructions" ] ~docv:"N" ~doc:"Instructions to analyze/simulate.")

let seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Override the workload's RNG seed.")

let width_arg =
  Arg.(value & opt int 4 & info [ "width" ] ~docv:"W" ~doc:"Machine width (fetch..retire).")

let depth_arg =
  Arg.(value & opt int 5 & info [ "depth" ] ~docv:"D" ~doc:"Front-end pipeline depth.")

let window_arg =
  Arg.(value & opt int 48 & info [ "window" ] ~docv:"SIZE" ~doc:"Issue window entries.")

let rob_arg = Arg.(value & opt int 128 & info [ "rob" ] ~docv:"SIZE" ~doc:"Reorder buffer entries.")

let program_of config seed =
  let config =
    match seed with Some s -> Fom_workloads.Spec2000.with_seed s config | None -> config
  in
  Fom_trace.Program.generate config

let params_of width depth window rob =
  {
    Fom_model.Params.width;
    pipeline_depth = depth;
    window_size = window;
    rob_size = rob;
    short_delay = 8;
    long_delay = 200;
    dtlb_walk = 30;
    fetch_buffer = 0;
  }

let machine_of width depth window rob =
  {
    Fom_uarch.Config.baseline with
    Fom_uarch.Config.width;
    pipeline_depth = depth;
    window_size = window;
    rob_size = rob;
  }

(* fom iw *)
let iw_cmd =
  let run config seed n =
    let program = program_of config seed in
    let curve = Fom_analysis.Iw_curve.measure ~n program in
    Printf.printf "workload %s: I = %.2f * W^%.2f (r2 %.3f)\n"
      config.Fom_trace.Config.name
      (Fom_analysis.Iw_curve.alpha curve)
      (Fom_analysis.Iw_curve.beta curve)
      curve.Fom_analysis.Iw_curve.fit.Fom_util.Fit.r2;
    let rows =
      List.map
        (fun p ->
          [
            string_of_int p.Fom_analysis.Iw_curve.window;
            Fom_util.Table.float_cell ~decimals:2 p.Fom_analysis.Iw_curve.ipc;
          ])
        curve.Fom_analysis.Iw_curve.points
    in
    Fom_util.Table.print ~header:[ "window"; "IPC" ] rows
  in
  let term = Term.(const run $ workload_arg $ seed_arg $ instructions_arg 30_000) in
  Cmd.v (Cmd.info "iw" ~doc:"Measure the IW curve and its power-law fit (paper Section 3).") term

(* fom profile *)
let profile_cmd =
  let run config seed n =
    let program = program_of config seed in
    let p = Fom_analysis.Profile.run program ~n in
    let ki count = 1000.0 *. float_of_int count /. float_of_int n in
    Printf.printf "workload %s over %d instructions\n" config.Fom_trace.Config.name n;
    Printf.printf "mean latency (short misses folded in): %.2f cycles\n"
      p.Fom_analysis.Profile.avg_latency;
    let rows =
      [
        [ "branches"; Printf.sprintf "%.1f" (ki p.Fom_analysis.Profile.branches) ];
        [ "mispredictions"; Printf.sprintf "%.2f" (ki p.Fom_analysis.Profile.mispredictions) ];
        [ "L1I misses"; Printf.sprintf "%.2f" (ki p.Fom_analysis.Profile.l1i_misses) ];
        [ "L2I misses"; Printf.sprintf "%.2f" (ki p.Fom_analysis.Profile.l2i_misses) ];
        [ "short data misses"; Printf.sprintf "%.2f" (ki p.Fom_analysis.Profile.short_misses) ];
        [ "long data misses"; Printf.sprintf "%.2f" (ki p.Fom_analysis.Profile.long_misses) ];
      ]
    in
    Fom_util.Table.print ~header:[ "event"; "per 1000 instructions" ] rows;
    print_endline "long-miss group sizes (size: groups):";
    List.iter
      (fun (size, count) -> Printf.printf "  %3d: %d\n" size count)
      (Fom_util.Distribution.to_list p.Fom_analysis.Profile.long_miss_groups)
  in
  let term = Term.(const run $ workload_arg $ seed_arg $ instructions_arg 100_000) in
  Cmd.v
    (Cmd.info "profile" ~doc:"Functional cache/branch-predictor trace profiling (Section 5).")
    term

(* fom model *)
let model_cmd =
  let run config seed n width depth window rob =
    let program = program_of config seed in
    let params = params_of width depth window rob in
    let inputs = Fom_analysis.Characterize.inputs ~params program ~n in
    Printf.printf "inputs: alpha %.2f beta %.2f latency %.2f; per-ki rates: br %.2f, l1i %.2f, long %.2f (group factor %.2f)\n"
      inputs.Fom_model.Inputs.alpha inputs.Fom_model.Inputs.beta
      inputs.Fom_model.Inputs.avg_latency
      (1000.0 *. inputs.Fom_model.Inputs.mispredictions_per_instr)
      (1000.0 *. inputs.Fom_model.Inputs.l1i_misses_per_instr)
      (1000.0 *. inputs.Fom_model.Inputs.long_misses_per_instr)
      (Fom_model.Inputs.long_group_factor inputs);
    Format.printf "%a@." Fom_model.Cpi.pp (Fom_model.Cpi.evaluate params inputs)
  in
  let term =
    Term.(
      const run $ workload_arg $ seed_arg $ instructions_arg 100_000 $ width_arg $ depth_arg
      $ window_arg $ rob_arg)
  in
  Cmd.v (Cmd.info "model" ~doc:"Evaluate the first-order model (paper eq. 1).") term

(* fom simulate *)
let simulate_cmd =
  let ideal_flags =
    Arg.(
      value
      & vflag_all []
          [
            (`Icache, info [ "ideal-icache" ] ~doc:"Perfect instruction cache.");
            (`Dcache, info [ "ideal-dcache" ] ~doc:"Perfect data cache.");
            (`Branch, info [ "ideal-branch" ] ~doc:"Perfect branch prediction.");
          ])
  in
  let run config seed n width depth window rob ideals =
    let program = program_of config seed in
    let machine = machine_of width depth window rob in
    let cache = machine.Fom_uarch.Config.cache in
    let cache =
      if List.mem `Icache ideals then { cache with Fom_cache.Hierarchy.l1i = Ideal } else cache
    in
    let cache =
      if List.mem `Dcache ideals then { cache with Fom_cache.Hierarchy.l1d = Ideal } else cache
    in
    let machine = { machine with Fom_uarch.Config.cache } in
    let machine =
      if List.mem `Branch ideals then
        { machine with Fom_uarch.Config.predictor = Fom_branch.Predictor.Ideal }
      else machine
    in
    let stats = Fom_uarch.Simulate.run machine program ~n in
    Format.printf "%a@." Fom_uarch.Stats.pp stats
  in
  let term =
    Term.(
      const run $ workload_arg $ seed_arg $ instructions_arg 100_000 $ width_arg $ depth_arg
      $ window_arg $ rob_arg $ ideal_flags)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the detailed cycle-level simulator.") term

(* fom compare *)
let compare_cmd =
  let all_flag =
    Arg.(value & flag & info [ "all" ] ~doc:"Compare across all twelve workloads.")
  in
  let run config seed n width depth window rob all =
    let params = params_of width depth window rob in
    let machine = machine_of width depth window rob in
    let configs = if all then Fom_workloads.Spec2000.all else [ config ] in
    let errs = ref [] in
    let rows =
      List.map
        (fun config ->
          let program = program_of config seed in
          let inputs = Fom_analysis.Characterize.inputs ~params program ~n in
          let model = Fom_model.Cpi.total (Fom_model.Cpi.evaluate params inputs) in
          let sim = Fom_uarch.Stats.cpi (Fom_uarch.Simulate.run machine program ~n) in
          let err = 100.0 *. (model -. sim) /. sim in
          errs := Float.abs err :: !errs;
          [
            config.Fom_trace.Config.name;
            Fom_util.Table.float_cell sim;
            Fom_util.Table.float_cell model;
            Fom_util.Table.float_cell ~decimals:1 err;
          ])
        configs
    in
    Fom_util.Table.print ~header:[ "workload"; "sim CPI"; "model CPI"; "err%" ] rows;
    if all then
      Printf.printf "mean |error| %.1f%%, max %.1f%%\n"
        (Fom_util.Stats.mean (Array.of_list !errs))
        (Fom_util.Stats.max (Array.of_list !errs))
  in
  let term =
    Term.(
      const run $ workload_arg $ seed_arg $ instructions_arg 150_000 $ width_arg $ depth_arg
      $ window_arg $ rob_arg $ all_flag)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Model CPI against detailed simulation (paper Figure 15).") term

(* fom trace *)
let trace_cmd =
  let path_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let run config seed n path =
    let program = program_of config seed in
    Fom_trace.Source.save ~path (Fom_trace.Source.of_program program) ~n;
    Printf.printf "wrote %d instructions of %s to %s\n" n config.Fom_trace.Config.name path
  in
  let term = Term.(const run $ workload_arg $ seed_arg $ instructions_arg 100_000 $ path_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Export a workload's instruction trace in the text format accepted back by the \
          analysis tools (see Fom_trace.Source).")
    term

(* fom workloads *)
let workloads_cmd =
  let run n =
    let rows =
      List.map
        (fun config ->
          let program = Fom_trace.Program.generate config in
          let profile = Fom_analysis.Profile.run program ~n in
          let curve = Fom_analysis.Iw_curve.measure ~n:(n / 5) program in
          let ki count = 1000.0 *. float_of_int count /. float_of_int n in
          [
            config.Fom_trace.Config.name;
            Fom_util.Table.float_cell ~decimals:2 (Fom_analysis.Iw_curve.alpha curve);
            Fom_util.Table.float_cell ~decimals:2 (Fom_analysis.Iw_curve.beta curve);
            Fom_util.Table.float_cell ~decimals:2 profile.Fom_analysis.Profile.avg_latency;
            Fom_util.Table.float_cell ~decimals:1 (ki profile.Fom_analysis.Profile.mispredictions);
            Fom_util.Table.float_cell ~decimals:1 (ki profile.Fom_analysis.Profile.l1i_misses);
            Fom_util.Table.float_cell ~decimals:1 (ki profile.Fom_analysis.Profile.short_misses);
            Fom_util.Table.float_cell ~decimals:1 (ki profile.Fom_analysis.Profile.long_misses);
          ])
        all_workloads
    in
    Fom_util.Table.print
      ~header:
        [ "workload"; "alpha"; "beta"; "latency"; "br/ki"; "l1i/ki"; "short/ki"; "long/ki" ]
      rows
  in
  let term = Term.(const run $ instructions_arg 50_000) in
  Cmd.v
    (Cmd.info "workloads" ~doc:"Characterize every bundled workload preset.")
    term

(* fom check *)
let check_cmd =
  let workload_opt =
    Arg.(
      value
      & opt (some workload_conv) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"Check only this workload (default: every bundled workload).")
  in
  let deep_flag =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also characterize each workload (IW fit + profile) and validate the derived \
             model inputs.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the deep sweep (default: $(b,FOM_JOBS) or the machine's \
             core count). The sweep is deterministic: $(b,--jobs 1) reports exactly what a \
             parallel run reports.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the deep sweep's characterizations across runs in $(docv), keyed by a \
             content digest of the effective workload configuration (derived seed \
             included), the model parameters and $(b,-n). Corrupt or stale entries are \
             recomputed and surface in the report as FOM-E006/FOM-E007 warnings.")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print an observability metrics table (pool, memo, cache and simulator \
             counters) after the report; the report itself is unchanged.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the run to $(docv) (load in Perfetto or \
             chrome://tracing).")
  in
  let run width depth window rob workload deep n jobs cache_dir seed metrics trace_out =
    let module C = Fom_check.Checker in
    let module D = Fom_check.Diagnostic in
    if metrics || trace_out <> None then Fom_obs.Sink.enable ();
    let params = params_of width depth window rob in
    let machine = machine_of width depth window rob in
    let workloads = match workload with Some w -> [ w ] | None -> all_workloads in
    let reroot prefix =
      List.map (fun d ->
          D.make ~severity:d.D.severity ~code:d.D.code
            ~path:(prefix ^ "." ^ d.D.path)
            d.D.message)
    in
    (* With --seed, each workload characterizes under its own derived
       seed: the root generator is split into per-task seeds *before*
       the parallel fan-out, so the report is independent of worker
       count and scheduling order. *)
    let task_seeds =
      Option.map
        (fun root ->
          Fom_util.Rng.split_seeds (Fom_util.Rng.create root) (List.length workloads))
        seed
    in
    let cache =
      if deep then Option.map (fun dir -> Fom_exec.Cache.create ~dir) cache_dir else None
    in
    let deep_diags (index, config) =
      let prefix = "workload." ^ config.Fom_trace.Config.name in
      (* The effective configuration (derived seed folded in) is what
         the digest must describe, so recompute it here rather than
         inside Program.generate. *)
      let config =
        match Option.map (fun a -> a.(index)) task_seeds with
        | Some s -> Fom_workloads.Spec2000.with_seed s config
        | None -> config
      in
      match
        let compute () =
          Fom_analysis.Characterize.inputs ~params (Fom_trace.Program.generate config) ~n
        in
        match cache with
        | None -> compute ()
        | Some c ->
            Fom_exec.Cache.get c
              ~key:
                (Fom_exec.Cache.digest
                   [
                     "check-inputs";
                     Fom_exec.Cache.part config;
                     Fom_exec.Cache.part params;
                     string_of_int n;
                   ])
              compute
      with
      | inputs -> reroot prefix (Fom_model.Inputs.check inputs)
      | exception C.Invalid ds -> reroot prefix ds
    in
    (* The deep sweep defaults to the machine's recommended domain
       count (sequential on a single core); an explicit --jobs beyond
       it is honored but flagged FOM-E004. *)
    let jobs_diags, deep_results =
      if not deep then ([], [])
      else
        let resolved, warnings = Fom_exec.Pool.resolve_jobs ?requested:jobs () in
        ( warnings,
          Fom_exec.Pool.with_pool ~jobs:resolved (fun pool ->
              Fom_exec.Pool.map pool ~f:deep_diags
                (List.mapi (fun index config -> (index, config)) workloads)) )
    in
    let cache_diags =
      match cache with Some c -> Fom_exec.Cache.drain_diagnostics c | None -> []
    in
    let diags =
      C.all
        (Fom_model.Params.check params
        :: Fom_uarch.Config.check machine
        :: jobs_diags
        :: cache_diags
        :: List.map Fom_trace.Config.check workloads
        @ deep_results)
    in
    Format.printf "%a@." C.pp_report diags;
    (match cache with
    | Some c ->
        let hits, misses = Fom_exec.Cache.stats c in
        Printf.printf "cache: %d hits, %d misses in %s\n" hits misses
          (Option.value cache_dir ~default:"")
    | None -> ());
    if metrics then begin
      let header, rows = Fom_obs.Export.metrics_rows () in
      print_newline ();
      Fom_util.Table.print ~header rows
    end;
    (match trace_out with
    | None -> ()
    | Some path ->
        Fom_obs.Export.write_chrome_trace ~path;
        Printf.printf "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n" path);
    if C.has_errors diags then exit 1
  in
  let term =
    Term.(
      const run $ width_arg $ depth_arg $ window_arg $ rob_arg $ workload_opt $ deep_flag
      $ instructions_arg 20_000 $ jobs_arg $ cache_dir_arg $ seed_arg $ metrics_flag
      $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate the machine parameters and workload configurations, reporting every \
          diagnostic (exit 1 if any is an error).")
    term

(* fom trends *)
let trends_cmd =
  let run () =
    let widths = [ 2; 3; 4; 8 ] in
    let depths = List.init 100 (fun i -> i + 1) in
    let rows = Fom_model.Trends.bips_vs_depth ~widths ~depths () in
    List.iter
      (fun w ->
        Printf.printf "issue %d: optimal front-end depth %d stages\n" w
          (Fom_model.Trends.optimal_depth (List.assoc w rows)))
      widths;
    let n4 = Fom_model.Trends.mispred_distance_for_fraction ~width:4 ~fraction:0.3 () in
    let n8 = Fom_model.Trends.mispred_distance_for_fraction ~width:8 ~fraction:0.3 () in
    Printf.printf
      "instructions between mispredictions for 30%% time near peak: %d (width 4) -> %d (width 8), %.1fx\n"
      n4 n8
      (float_of_int n8 /. float_of_int n4)
  in
  let term = Term.(const run $ const ()) in
  Cmd.v (Cmd.info "trends" ~doc:"The Section 6 microarchitecture trend studies.") term

let () =
  let doc = "the first-order superscalar processor model (Karkhanis & Smith, ISCA 2004)" in
  let info = Cmd.info "fom" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ iw_cmd; profile_cmd; model_cmd; simulate_cmd; compare_cmd; trends_cmd; workloads_cmd; trace_cmd; check_cmd ]))
