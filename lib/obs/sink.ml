let enable ?(span_capacity = 1 lsl 16) () =
  Span.set_capacity span_capacity;
  Span.reset ();
  Metrics.reset ();
  Atomic.set Gate.enabled true

let disable () = Atomic.set Gate.enabled false
let enabled () = Gate.is_on ()
