let enabled = Atomic.make false
let is_on () = Atomic.get enabled
