(** The global recording gate (internal to [Fom_obs]).

    A single atomic flag read by every instrumentation site before it
    touches a buffer or a metric cell. The default is [false] — the
    no-op sink — so instrumented hot paths cost one atomic load and a
    branch, and results stay bit-identical whether or not a consumer
    ever looks at the observability layer. Use {!Sink.enable} /
    {!Sink.disable} rather than flipping this directly. *)

val enabled : bool Atomic.t

val is_on : unit -> bool
(** [Atomic.get enabled]. *)
