(** Named counters, gauges, and histograms.

    Metrics are registered once by name — typically at module
    initialization of the instrumented library — and updated from any
    domain through atomic cells, so recording never takes a lock. All
    updates are gated on the global sink ({!Sink.enable}): with the
    default no-op sink an update is one atomic load and a branch, and
    no cross-domain cache-line traffic happens at all.

    Registration is idempotent: asking for ["pool.tasks"] twice
    returns the same counter. Asking for a name already registered as
    a different kind raises a [FOM-O001] diagnostic — metric names are
    a global namespace (see the README glossary).

    {!snapshot} returns every registered metric sorted by name, so
    exports are deterministic regardless of registration or update
    order. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a monotonically increasing counter. *)

val gauge : string -> gauge
(** Register (or look up) a last-value-wins gauge. *)

val histogram : string -> histogram
(** Register (or look up) a histogram of non-negative integer values
    bucketed by powers of two: bucket [i] counts values [v] with
    [2^(i-1) <= v < 2^i] (bucket 0 counts zeros; negative values clamp
    to zero). *)

val add : counter -> int -> unit
val incr : counter -> unit
val set : gauge -> int -> unit
val observe : histogram -> int -> unit

type hist_snapshot = {
  count : int;  (** total observations *)
  sum : int;  (** sum of observed values *)
  buckets : (int * int) list;
      (** non-empty buckets as [(inclusive upper bound, count)],
          ascending *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}
(** All lists sorted by metric name. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). Called by
    {!Sink.enable} so each enabled session starts from scratch. *)
