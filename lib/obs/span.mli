(** Nested spans recorded into per-domain, preallocated ring buffers.

    A span is a named begin/end pair on the domain that executed it.
    Each domain owns a private buffer (reached through domain-local
    storage, so recording takes no lock and allocates nothing on the
    hot path: two [int] array stores and a monotonic clock read per
    event). Buffers are fixed-capacity — when one fills, further
    events on that domain are counted as dropped rather than recorded,
    so an over-instrumented run degrades gracefully instead of
    resizing mid-flight.

    Names are interned once ({!id}) — typically at module
    initialization — so recording passes a small integer, not a
    string.

    With the default no-op sink ({!Sink}), {!with_} runs its thunk
    directly: one atomic load and a branch, nothing recorded.

    Reading a buffer back ({!events}) while another domain is still
    writing it is a data race; call it only after the parallel section
    has completed (the pool's [shutdown]/[with_pool] join, or any
    other happens-before edge). *)

type id
(** An interned span name. *)

val id : string -> id
(** Intern [name]. Idempotent; takes the intern lock, so call it once
    per site, not per event. *)

val enter : id -> unit
(** Record a begin event on the calling domain. *)

val leave : id -> unit
(** Record an end event on the calling domain. *)

val with_ : id -> (unit -> 'a) -> 'a
(** [with_ id f] runs [f] inside a span: begin, run, end — the end is
    recorded even when [f] raises. When the sink is disabled this is
    just [f ()]. *)

type phase = Begin | End

type event = { domain : int; name : string; phase : phase; ts_ns : int }
(** One recorded event: the recording domain's id, the span name, and
    a monotonic timestamp (non-decreasing within a domain). *)

val events : unit -> event list
(** Every recorded event, grouped by buffer in creation order, each
    buffer's events in recording order. See the data-race caveat
    above. *)

val dropped : unit -> int
(** Events discarded because a domain's buffer was full. *)

val set_capacity : int -> unit
(** Per-domain buffer capacity (events) used for buffers created from
    now on. Called by {!Sink.enable}; requires a positive value
    ([FOM-O002] otherwise). *)

val reset : unit -> unit
(** Discard all recorded events and retire every existing buffer
    (domains lazily create fresh ones on their next event). *)
