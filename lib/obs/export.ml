module Json = Fom_util.Json

(* One "B"/"E" trace event. Chrome wants timestamps in (fractional)
   microseconds; they are rebased to the earliest recorded event so
   the numbers stay small. *)
let duration_event ~name ~ph ~tid ~us =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "fom");
      ("ph", Json.String ph);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("ts", Json.Float us);
    ]

let thread_name_event ~tid =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain %d" tid)) ]);
    ]

let chrome_trace () =
  let events = Span.events () in
  let t0 =
    List.fold_left (fun acc (e : Span.event) -> Stdlib.min acc e.Span.ts_ns) max_int events
  in
  let us ts_ns = float_of_int (ts_ns - t0) /. 1000.0 in
  (* Group by domain, preserving each domain's recording order: begin/
     end nesting is per domain, and balancing (dropping stray ends,
     synthesizing missing ends) must follow that per-domain order. *)
  let domains = List.sort_uniq compare (List.map (fun (e : Span.event) -> e.Span.domain) events) in
  let per_domain d =
    let mine = List.filter (fun (e : Span.event) -> e.Span.domain = d) events in
    let depth = ref 0 in
    let open_names = ref [] in
    let last_ts = ref 0 in
    let rendered =
      List.filter_map
        (fun (e : Span.event) ->
          last_ts := e.Span.ts_ns;
          match e.Span.phase with
          | Span.Begin ->
              incr depth;
              open_names := e.Span.name :: !open_names;
              Some (duration_event ~name:e.Span.name ~ph:"B" ~tid:d ~us:(us e.Span.ts_ns))
          | Span.End ->
              if !depth = 0 then None (* stray end: its begin predates this session *)
              else begin
                decr depth;
                open_names := (match !open_names with _ :: rest -> rest | [] -> []);
                Some (duration_event ~name:e.Span.name ~ph:"E" ~tid:d ~us:(us e.Span.ts_ns))
              end)
        mine
    in
    (* Close spans still open at export time (buffer filled before the
       end event, or the span genuinely outlives the export). *)
    let closers =
      List.map (fun name -> duration_event ~name ~ph:"E" ~tid:d ~us:(us !last_ts)) !open_names
    in
    (thread_name_event ~tid:d :: rendered) @ closers
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.concat_map per_domain domains));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome_trace ~path = Json.write_file ~path (chrome_trace ())

let hist_json (h : Metrics.hist_snapshot) =
  Json.Obj
    [
      ("count", Json.Int h.Metrics.count);
      ("sum", Json.Int h.Metrics.sum);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, count) -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int count) ])
             h.Metrics.buckets) );
    ]

let metrics_json () =
  let s = Metrics.snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.gauges));
      ("histograms", Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) s.Metrics.histograms));
      ( "spans",
        Json.Obj
          [
            ("events", Json.Int (List.length (Span.events ())));
            ("dropped", Json.Int (Span.dropped ()));
          ] );
    ]

let metrics_rows () =
  let s = Metrics.snapshot () in
  let counter_rows = List.map (fun (n, v) -> [ n; "counter"; string_of_int v ]) s.Metrics.counters in
  let gauge_rows = List.map (fun (n, v) -> [ n; "gauge"; string_of_int v ]) s.Metrics.gauges in
  let hist_rows =
    List.map
      (fun (n, (h : Metrics.hist_snapshot)) ->
        let mean =
          if h.Metrics.count = 0 then 0.0
          else float_of_int h.Metrics.sum /. float_of_int h.Metrics.count
        in
        [
          n;
          "histogram";
          Printf.sprintf "count %d, sum %d, mean %.1f" h.Metrics.count h.Metrics.sum mean;
        ])
      s.Metrics.histograms
  in
  let span_rows =
    [
      [ "spans.events"; "counter"; string_of_int (List.length (Span.events ())) ];
      [ "spans.dropped"; "counter"; string_of_int (Span.dropped ()) ];
    ]
  in
  ( [ "metric"; "kind"; "value" ],
    List.sort compare (counter_rows @ gauge_rows @ hist_rows @ span_rows) )
