(* Per-domain event buffers. A buffer is written only by its owning
   domain (reached through domain-local storage), so recording is
   lock-free; the registry of buffers and the name intern table are
   the only locked structures, touched at buffer creation and name
   registration, never per event.

   An event is two ints: a tag [2 * name_id + phase] and a timestamp.
   Timestamps are clamped non-decreasing per buffer so a span's end
   never precedes its begin even if the clock source misbehaves. *)

type id = int

type buffer = {
  domain : int;
  created : int;  (* registration order, for stable export *)
  epoch : int;  (* buffers from older epochs are retired, see reset *)
  tags : int array;
  ts : int array;
  mutable len : int;
  mutable dropped : int;
  mutable last_ts : int;
}

let lock = Mutex.create ()
let names : (string, int) Hashtbl.t = Hashtbl.create 64

let id name =
  Mutex.lock lock;
  let i =
    match Hashtbl.find_opt names name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length names in
        Hashtbl.add names name i;
        i
  in
  Mutex.unlock lock;
  i

let default_capacity = 1 lsl 16
let capacity = Atomic.make default_capacity

let set_capacity n =
  Fom_check.Checker.ensure ~code:"FOM-O002" ~path:"obs.span_capacity" (n > 0)
    "span buffer capacity must be positive";
  Atomic.set capacity n

let epoch = Atomic.make 0
let buffers : buffer list ref = ref []

let dummy =
  { domain = -1; created = -1; epoch = -1; tags = [||]; ts = [||]; len = 0; dropped = 0; last_ts = 0 }

let key = Domain.DLS.new_key (fun () -> dummy)

let fresh () =
  Mutex.lock lock;
  let b =
    {
      domain = (Domain.self () :> int);
      created = List.length !buffers;
      epoch = Atomic.get epoch;
      tags = Array.make (Atomic.get capacity) 0;
      ts = Array.make (Atomic.get capacity) 0;
      len = 0;
      dropped = 0;
      last_ts = 0;
    }
  in
  buffers := b :: !buffers;
  Mutex.unlock lock;
  Domain.DLS.set key b;
  b

let my_buffer () =
  let b = Domain.DLS.get key in
  if b.epoch = Atomic.get epoch then b else fresh ()

let emit tag =
  if Gate.is_on () then begin
    let b = my_buffer () in
    if b.len >= Array.length b.tags then b.dropped <- b.dropped + 1
    else begin
      let t = Clock.now_ns () in
      let t = if t < b.last_ts then b.last_ts else t in
      b.last_ts <- t;
      b.tags.(b.len) <- tag;
      b.ts.(b.len) <- t;
      b.len <- b.len + 1
    end
  end

let enter i = emit (2 * i)
let leave i = emit ((2 * i) + 1)

let with_ i f =
  if not (Gate.is_on ()) then f ()
  else begin
    enter i;
    Fun.protect ~finally:(fun () -> leave i) f
  end

type phase = Begin | End

type event = { domain : int; name : string; phase : phase; ts_ns : int }

let snapshot_registry () =
  Mutex.lock lock;
  let current = Atomic.get epoch in
  let bufs =
    List.sort
      (fun a b -> compare a.created b.created)
      (List.filter (fun b -> b.epoch = current) !buffers)
  in
  let name_of = Array.make (Hashtbl.length names) "" in
  Hashtbl.iter (fun n i -> name_of.(i) <- n) names;
  Mutex.unlock lock;
  (bufs, name_of)

let events () =
  let bufs, name_of = snapshot_registry () in
  List.concat_map
    (fun b ->
      List.init b.len (fun k ->
          let tag = b.tags.(k) in
          {
            domain = b.domain;
            name = name_of.(tag / 2);
            phase = (if tag land 1 = 0 then Begin else End);
            ts_ns = b.ts.(k);
          }))
    bufs

let dropped () =
  let bufs, _ = snapshot_registry () in
  List.fold_left (fun acc b -> acc + b.dropped) 0 bufs

let reset () =
  Mutex.lock lock;
  ignore (Atomic.fetch_and_add epoch 1);
  buffers := [];
  Mutex.unlock lock
