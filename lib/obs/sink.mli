(** The observability sink: off by default, explicitly enabled.

    The default sink is a no-op: every instrumentation site — span
    begins/ends, counter bumps, histogram observations — checks one
    atomic flag and does nothing else, so instrumented code paths stay
    allocation-free and results (stdout, CSV, JSON numbers) are
    bit-identical whether or not observability is on. Harnesses enable
    recording only when the user asks for it ([--metrics] /
    [--trace-out]).

    Diagnostic codes ([FOM-Oxxx], "observability"):
    - [FOM-O001] — a metric name registered twice with different kinds
    - [FOM-O002] — non-positive span buffer capacity *)

val enable : ?span_capacity:int -> unit -> unit
(** Start recording: reset all metrics and span buffers, size new
    per-domain span buffers at [span_capacity] events (default
    [65536]), and open the gate. Call before the work to observe —
    ideally before worker domains spawn, so every domain's buffer
    belongs to the current session. *)

val disable : unit -> unit
(** Close the gate. Recorded data stays readable through
    {!Span.events} / {!Metrics.snapshot} / {!Export}. *)

val enabled : unit -> bool
