(** Exporters: Chrome trace-event JSON and metrics snapshots.

    {!chrome_trace} renders the recorded spans in the Chrome
    trace-event format — an object with a ["traceEvents"] array of
    ["B"]/["E"] duration events — loadable in Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing]. One trace
    thread ([tid]) per recording domain, timestamps in microseconds
    relative to the earliest recorded event. Begin events whose end
    was never recorded (a domain's buffer filled, or a span was open
    when the data was exported) are closed synthetically at the
    domain's last timestamp so the file always balances.

    Like {!Span.events}, call these only after parallel sections have
    completed. *)

val chrome_trace : unit -> Fom_util.Json.t

val write_chrome_trace : path:string -> unit
(** [chrome_trace] serialized through {!Fom_util.Json.write_file}. *)

val metrics_json : unit -> Fom_util.Json.t
(** The {!Metrics.snapshot} plus span-buffer statistics as a JSON
    object: [{"counters": {...}, "gauges": {...}, "histograms":
    {name: {"count", "sum", "buckets": [{"le", "count"}]}}, "spans":
    {"events", "dropped"}}]. Deterministically ordered by name. *)

val metrics_rows : unit -> string list * string list list
(** [(header, rows)] for {!Fom_util.Table.print}: one row per metric,
    sorted by name — the human summary of {!metrics_json}. *)
