(** Monotonic time source for span timestamps.

    Wraps the CLOCK_MONOTONIC stub already shipped with the Bechamel
    toolchain, so timestamps never jump backwards with wall-clock
    adjustments. Nanosecond resolution in a native [int] — 63 bits of
    nanoseconds covers ~292 years of uptime. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds. Only differences are
    meaningful; the epoch is unspecified (typically boot time). *)
