let now_ns () = Int64.to_int (Monotonic_clock.now ())
