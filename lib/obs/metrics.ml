(* Metric cells are plain atomics; the registry (name -> metric) is
   the only locked structure and is touched on registration and
   snapshot, never on update. *)

type counter = { c_name : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_cell : int Atomic.t }

(* One bucket per possible bit length of a non-negative value: bucket
   [i] counts values of [i] significant bits, i.e. 2^(i-1) <= v < 2^i,
   with zeros in bucket 0. *)
let bucket_count = 63

type histogram = { h_name : string; h_sum : int Atomic.t; h_buckets : int Atomic.t array }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_label = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register name make =
  Mutex.lock lock;
  let metric =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add registry name m;
        m
  in
  Mutex.unlock lock;
  metric

let kind_clash name found =
  Fom_check.Checker.ensure ~code:"FOM-O001" ~path:("obs.metric." ^ name) false
    (Printf.sprintf "metric %S is already registered as a %s" name (kind_label found));
  Fom_check.Checker.internal_error "unreachable after ensure false"

let counter name =
  match register name (fun () -> Counter { c_name = name; c_cell = Atomic.make 0 }) with
  | Counter c -> c
  | other -> kind_clash name other

let gauge name =
  match register name (fun () -> Gauge { g_name = name; g_cell = Atomic.make 0 }) with
  | Gauge g -> g
  | other -> kind_clash name other

let histogram name =
  match
    register name (fun () ->
        Histogram
          {
            h_name = name;
            h_sum = Atomic.make 0;
            h_buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
          })
  with
  | Histogram h -> h
  | other -> kind_clash name other

let add c n = if Gate.is_on () then ignore (Atomic.fetch_and_add c.c_cell n)
let incr c = add c 1
let set g v = if Gate.is_on () then Atomic.set g.g_cell v

let bit_length v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let observe h v =
  if Gate.is_on () then begin
    let v = if v < 0 then 0 else v in
    ignore (Atomic.fetch_and_add h.h_buckets.(bit_length v) 1);
    ignore (Atomic.fetch_and_add h.h_sum v)
  end

type hist_snapshot = { count : int; sum : int; buckets : (int * int) list }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let hist_snapshot h =
  let count = ref 0 and buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    let n = Atomic.get h.h_buckets.(i) in
    if n > 0 then begin
      count := !count + n;
      (* Inclusive upper bound of the i-bit bucket: 2^i - 1. *)
      buckets := ((1 lsl i) - 1, n) :: !buckets
    end
  done;
  { count = !count; sum = Atomic.get h.h_sum; buckets = !buckets }

let snapshot () =
  Mutex.lock lock;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock lock;
  let by_name name = List.sort (fun (a, _) (b, _) -> String.compare a b) name in
  {
    counters =
      by_name
        (List.filter_map
           (function Counter c -> Some (c.c_name, Atomic.get c.c_cell) | _ -> None)
           metrics);
    gauges =
      by_name
        (List.filter_map
           (function Gauge g -> Some (g.g_name, Atomic.get g.g_cell) | _ -> None)
           metrics);
    histograms =
      by_name
        (List.filter_map
           (function Histogram h -> Some (h.h_name, hist_snapshot h) | _ -> None)
           metrics);
  }

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> Atomic.set c.c_cell 0
      | Gauge g -> Atomic.set g.g_cell 0
      | Histogram h ->
          Atomic.set h.h_sum 0;
          Array.iter (fun cell -> Atomic.set cell 0) h.h_buckets)
    registry;
  Mutex.unlock lock
