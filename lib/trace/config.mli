(** Synthetic workload generation parameters.

    A [Config.t] fully determines a synthetic program and its dynamic
    trace (given the seed). The fields are exactly the first-order
    program statistics the paper's model consumes: instruction mix,
    register dependence-distance profile (which sets the IW power-law
    alpha/beta), branch-behaviour mixture (which sets the gShare
    misprediction rate), and memory working-set profile (which sets the
    cache miss rates and long-miss clustering). The 12 SPECint2000-like
    presets live in {!Fom_workloads}. *)

type mix = {
  load : float;
  store : float;
  branch : float;  (** conditional branches *)
  jump : float;  (** unconditional control (calls, returns) *)
  mul : float;
  div : float;
}
(** Dynamic instruction-class fractions; the remainder up to 1.0 is
    single-cycle ALU work. Fractions must be non-negative and sum to
    at most 1. [branch + jump] must be positive: it sets the mean basic
    block length [1 / (branch + jump)]. *)

type deps = {
  short_p : float;  (** probability a source dependence is short *)
  short_mean : float;  (** mean of the short geometric distance (>= 1) *)
  long_max : int;  (** long distances are uniform on [1, long_max] *)
  nsrc_weights : float array;  (** weights for 0, 1, 2 sources on ALU ops *)
}
(** Dependence distances are counted in value-producing instructions
    going backwards. Short chained dependences lower the IW beta; a
    long tail and many zero-source instructions raise it. *)

type control = {
  regions : int;  (** function-like regions (>= 1) *)
  blocks_per_region : int;  (** basic blocks per region (>= 2) *)
  chaotic_frac : float;  (** fraction of branches that are chaotic *)
  chaotic_low : float;  (** chaotic taken-probability lower bound *)
  chaotic_high : float;  (** chaotic taken-probability upper bound *)
  pattern_frac : float;  (** fraction with periodic patterns *)
  pattern_max_period : int;  (** pattern length upper bound (>= 2) *)
  loop_trip_mean : float;  (** mean loop trip count (>= 2) *)
  bias : float;  (** taken-probability magnitude of biased branches *)
}
(** The remaining branches ([1 - chaotic_frac - pattern_frac]) are
    biased: taken with probability [bias] or [1 - bias] (even split).
    Region count times blocks per region times mean block length sets
    the static code footprint, hence the I-cache behaviour. *)

type memory = {
  local_frac : float;  (** loads hitting a small hot region *)
  random_frac : float;  (** loads over a mid-size region (short misses) *)
  stream_frac : float;  (** loads streaming a large region (long misses) *)
  chase_frac : float;  (** pointer-chasing loads over a large region *)
  local_region : int;  (** bytes; should fit in L1D *)
  random_region : int;  (** bytes; should fit in L2 but not L1D *)
  stream_region : int;  (** bytes per streaming load; larger than L2 *)
  chase_region : int;  (** bytes; larger than L2 for long-miss chasing *)
  stream_stride : int;  (** bytes between consecutive stream accesses *)
  chase_chains : int;
      (** independent pointer chains: 0 gives one chain per static
          chase load (parallel lists, memory-level parallelism); 1
          serializes every chase load on one list (the worst case for
          the model's overlap assumption) *)
}
(** The four fractions must sum to 1. Stores always use the local
    region: store misses never stall the modeled machine (retirement
    is blocked only by loads), matching the paper. *)

type t = {
  name : string;
  seed : int;
  mix : mix;
  deps : deps;
  control : control;
  memory : memory;
  latencies : Fom_isa.Latency.t;
}

val check : t -> Fom_check.Diagnostic.t list
(** Collect every [FOM-Txxx] violation of the documented constraints,
    with context paths rooted at [workload.<name>]. *)

val validate : t -> unit
(** Raise {!Fom_check.Checker.Invalid} with everything {!check}
    reports at error severity; called by {!Program.generate}. *)

val alu_frac : t -> float
(** The ALU remainder of the mix. *)

val mean_block_len : t -> float
(** Mean instructions per basic block, terminator included. *)

val class_weight : t -> Fom_isa.Opclass.t -> float
(** Dynamic fraction of the given class under this mix. *)
