type kind = Stride of { stride : int } | Random | Chase

type region = { base : int; size : int }

type t = {
  kind : kind;
  region : region;
  rng : Fom_util.Rng.t;
  mutable offset : int;
}

let create ?seed_rng kind region =
  let ensure = Fom_check.Checker.ensure ~code:"FOM-T050" in
  ensure ~path:"address_gen.region.size"
    (region.size > 0 && region.size mod 8 = 0)
    "region size must be a positive multiple of 8 bytes";
  (match kind with
  | Stride { stride } ->
      ensure ~path:"address_gen.stride" (stride > 0 && stride mod 8 = 0)
        "stride must be a positive multiple of 8 bytes"
  | Random | Chase -> ());
  let rng = match seed_rng with Some r -> Fom_util.Rng.split r | None -> Fom_util.Rng.create 0 in
  { kind; region; rng; offset = 0 }

let kind t = t.kind
let region t = t.region

let align8 x = x land lnot 7

let next t =
  match t.kind with
  | Stride { stride } ->
      let addr = t.region.base + t.offset in
      t.offset <- (t.offset + stride) mod t.region.size;
      addr
  | Random | Chase ->
      t.region.base + align8 (Fom_util.Rng.int t.rng t.region.size)

let is_chase t = match t.kind with Chase -> true | Stride _ | Random -> false
