type kind =
  | Biased of float
  | Loop of int
  | Pattern of bool array
  | Chaotic of float

type t = { kind : kind; rng : Fom_util.Rng.t; mutable step : int }

let create ?seed_rng kind =
  let ensure = Fom_check.Checker.ensure in
  (match kind with
  | Biased p | Chaotic p ->
      ensure ~code:"FOM-T030" ~path:"branch_behavior.taken_probability"
        (p >= 0.0 && p <= 1.0)
        "taken probability must be within [0, 1]"
  | Loop trip ->
      ensure ~code:"FOM-T031" ~path:"branch_behavior.trip" (trip >= 1)
        "loop trip count must be at least 1"
  | Pattern a ->
      ensure ~code:"FOM-T032" ~path:"branch_behavior.pattern" (Array.length a > 0)
        "direction pattern must be non-empty");
  let rng = match seed_rng with Some r -> Fom_util.Rng.split r | None -> Fom_util.Rng.create 0 in
  { kind; rng; step = 0 }

let kind t = t.kind

let next t =
  match t.kind with
  | Biased p | Chaotic p -> Fom_util.Rng.bernoulli t.rng p
  | Loop trip ->
      let taken = t.step < trip - 1 in
      t.step <- (t.step + 1) mod trip;
      taken
  | Pattern a ->
      let out = a.(t.step) in
      t.step <- (t.step + 1) mod Array.length a;
      out

let expected_taken_rate = function
  | Biased p | Chaotic p -> p
  | Loop trip -> float_of_int (trip - 1) /. float_of_int trip
  | Pattern a ->
      let taken = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
      float_of_int taken /. float_of_int (Array.length a)
