(** Dynamic instruction streams.

    A stream walks the program's control-flow graph forever, emitting
    {!Fom_isa.Instr.t} records in program order. All mutable state
    (address generators, branch behaviours, dependence sampling) is
    instantiated at {!create}, so two streams over the same program are
    identical instruction-for-instruction — the detailed simulator, the
    functional profilers and the idealized IW simulation all observe
    the same trace. *)

type t

val create : ?seed:int -> Program.t -> t
(** Fresh stream positioned at the program entry, instruction 0.
    [?seed] overrides the config's seed for this stream's dynamic
    draws (dependence distances, addresses, branch directions) without
    regenerating the program — the hook parallel sweeps use to give
    each task an explicit {!Fom_util.Rng.split_seeds}-derived stream
    that is independent of task execution order. *)

val next : t -> Fom_isa.Instr.t
(** Emit the next dynamic instruction. Never fails: the synthetic walk
    is infinite. *)

val iter : Program.t -> n:int -> (Fom_isa.Instr.t -> unit) -> unit
(** [iter program ~n f] applies [f] to the first [n] instructions of a
    fresh stream. *)

val collect : Program.t -> n:int -> Fom_isa.Instr.t array
(** First [n] instructions of a fresh stream, materialized. *)
