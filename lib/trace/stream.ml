module Rng = Fom_util.Rng
module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg

(* Ring buffer of recent value-producing instructions: (dynamic index,
   destination register). Dependence distances are sampled in this
   producers-back space. *)
type ring = {
  idx : int array;
  reg : int array;
  mutable head : int;
  mutable count : int;
}

let ring_create capacity =
  { idx = Array.make capacity (-1); reg = Array.make capacity 0; head = 0; count = 0 }

let ring_push r index reg =
  r.idx.(r.head) <- index;
  r.reg.(r.head) <- reg;
  r.head <- (r.head + 1) mod Array.length r.idx;
  if r.count < Array.length r.idx then r.count <- r.count + 1

(* [ring_get r d] returns the producer [d] places back, 1 = newest. *)
let ring_get r d =
  assert (d >= 1 && d <= r.count);
  let cap = Array.length r.idx in
  let pos = (r.head - d + cap + cap) mod cap in
  (r.idx.(pos), r.reg.(pos))

type t = {
  program : Program.t;
  rng : Rng.t;  (* dependence-distance sampling *)
  agens : Address_gen.t option array;  (* per static uid *)
  behaviors : Branch_behavior.t option array;
  last_instance : int array;  (* last dynamic index per chase chain *)
  chase_chains : int;  (* 0 = one chain per static chase load *)
  ring : ring;
  mutable stack : int list;  (* return blocks for call-style jumps *)
  mutable stack_depth : int;
  mutable index : int;
  mutable block : int;
  mutable pos : int;  (* offset of the next instruction within block *)
}

(* Calls nest one level: a called region executes with further calls
   elided. Anything deeper lets call cycles pin the stack and freeze
   the outer region progression, starving whole regions of the code
   footprint; one bounded excursion per call keeps block visits
   uniform while still exercising far control transfers. *)
let max_call_depth = 1

let create ?seed program =
  let config = program.Program.config in
  let root = match seed with Some s -> s | None -> config.Config.seed in
  let seed_rng = Rng.create (root lxor 0x57AE) in
  let n = Program.static_count program in
  let agens = Array.make n None in
  let behaviors = Array.make n None in
  Array.iter
    (fun (s : Program.static) ->
      (match s.agen_spec with
      | Some (kind, region) ->
          agens.(s.uid) <- Some (Address_gen.create ~seed_rng kind region)
      | None -> ());
      match s.behavior_spec with
      | Some kind -> behaviors.(s.uid) <- Some (Branch_behavior.create ~seed_rng kind)
      | None -> ())
    program.Program.statics;
  {
    program;
    rng = Rng.split seed_rng;
    agens;
    behaviors;
    last_instance = Array.make (Stdlib.max n 1) (-1);
    chase_chains = config.Config.memory.Config.chase_chains;
    ring = ring_create (Stdlib.max 64 config.Config.deps.long_max);
    stack = [];
    stack_depth = 0;
    index = 0;
    block = Program.entry program;
    pos = 0;
  }

let sample_dep t =
  let deps = t.program.Program.config.Config.deps in
  if t.ring.count = 0 then None
  else
    let d =
      if Rng.bernoulli t.rng deps.short_p then
        1 + Rng.geometric t.rng (1.0 /. deps.short_mean)
      else 1 + Rng.int t.rng deps.long_max
    in
    let d = Stdlib.min d t.ring.count in
    Some (ring_get t.ring d)

let sample_deps t nsrc =
  let rec loop n acc_deps acc_srcs =
    if n = 0 then (acc_deps, acc_srcs)
    else
      match sample_dep t with
      | None -> (acc_deps, acc_srcs)
      | Some (idx, reg) -> loop (n - 1) (idx :: acc_deps) (Reg.of_int reg :: acc_srcs)
  in
  let deps, srcs = loop nsrc [] [] in
  (Array.of_list deps, srcs)

let next t =
  let program = t.program in
  let blk = program.Program.blocks.(t.block) in
  let s = program.Program.statics.(blk.first + t.pos) in
  let index = t.index in
  t.index <- index + 1;
  let is_terminator = t.pos = blk.len - 1 in
  if is_terminator then t.pos <- 0 else t.pos <- t.pos + 1;
  let mem =
    match s.agen_spec with
    | None -> None
    | Some _ -> (
        match t.agens.(s.uid) with
        | Some agen -> Some (Address_gen.next agen)
        | None ->
            Fom_check.Checker.internal_error
              "static with an address-generator spec has no generator")
  in
  let chain = if t.chase_chains > 0 then s.uid mod t.chase_chains else s.uid in
  let deps, srcs =
    if s.chase && t.last_instance.(chain) >= 0 then
      (* Pointer chase: serialized on the previous load of its chain;
         the source register is that load's result. *)
      let dst =
        match s.dst with
        | Some d -> d
        | None -> Fom_check.Checker.internal_error "chase load has no destination register"
      in
      ([| t.last_instance.(chain) |], [ dst ])
    else sample_deps t s.nsrc
  in
  if s.chase then t.last_instance.(chain) <- index;
  let ctrl =
    match s.opclass with
    | Opclass.Jump ->
        (* Call: remember where to resume once the callee region
           completes; at the depth cap the call is elided and the walk
           falls through. *)
        let succ =
          if t.stack_depth < max_call_depth then begin
            t.stack <- blk.fall_succ :: t.stack;
            t.stack_depth <- t.stack_depth + 1;
            blk.taken_succ
          end
          else blk.fall_succ
        in
        let target_blk = program.Program.blocks.(succ) in
        t.block <- succ;
        Some { Instr.target = program.Program.statics.(target_blk.first).pc; taken = true }
    | Opclass.Branch ->
        let taken =
          match t.behaviors.(s.uid) with
          | Some b -> Branch_behavior.next b
          | None ->
              Fom_check.Checker.internal_error
                "branch static has no behavior generator"
        in
        let is_loop_exit = (not taken) && blk.taken_succ <= t.block in
        let succ =
          if taken then blk.taken_succ
          else
            match (is_loop_exit, t.stack) with
            | true, return :: rest ->
                (* Region completed: return to the pending caller. *)
                t.stack <- rest;
                t.stack_depth <- t.stack_depth - 1;
                return
            | true, [] | false, _ -> blk.fall_succ
        in
        let target_blk = program.Program.blocks.(blk.taken_succ) in
        t.block <- succ;
        Some { Instr.target = program.Program.statics.(target_blk.first).pc; taken }
    | Opclass.Alu | Opclass.Mul | Opclass.Div | Opclass.Load | Opclass.Store -> None
  in
  let instr =
    Instr.make ~index ~pc:s.pc ~opclass:s.opclass ?dst:s.dst ~srcs ~deps ?mem ?ctrl ()
  in
  Option.iter (fun d -> ring_push t.ring index (Reg.to_int d)) s.dst;
  instr

let iter program ~n f =
  let t = create program in
  for _ = 1 to n do
    f (next t)
  done

let collect program ~n =
  let t = create program in
  Array.init n (fun _ -> next t)
