module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg

type t = {
  label : string;
  len : int;
  tag : int array;
  pc : int array;
  dst : int array;
  srcs : int array;
  dep_off : int array;
  dep_val : int array;
  mem : int array;
  ctrl : int array;
}

let label t = t.label
let length t = t.len

(* Source registers pack into one word: bits 0-1 the count, then one
   {!Reg.to_int} (< 32, so 8 bits are plenty) per slot. *)
let pack_srcs srcs =
  match srcs with
  | [] -> 0
  | [ a ] -> 1 lor (Reg.to_int a lsl 2)
  | [ a; b ] -> 2 lor (Reg.to_int a lsl 2) lor (Reg.to_int b lsl 10)
  | _ ->
      (* Instr.make enforces at most two sources. *)
      Fom_check.Checker.internal_error "instruction with more than two source registers"

let unpack_srcs word =
  match word land 3 with
  | 0 -> []
  | 1 -> [ Reg.of_int ((word lsr 2) land 0xff) ]
  | 2 -> [ Reg.of_int ((word lsr 2) land 0xff); Reg.of_int ((word lsr 10) land 0xff) ]
  | _ -> Fom_check.Checker.internal_error "corrupt packed source-register word"

let of_source ?label source ~n =
  let ensure = Fom_check.Checker.ensure ~code:"FOM-T130" in
  ensure ~path:"packed.n" (n > 0) "packed trace length must be positive";
  let label = match label with Some l -> l | None -> Source.label source in
  let next = Source.fresh source in
  let tag = Array.make n 0 in
  let pc = Array.make n 0 in
  let dst = Array.make n (-1) in
  let srcs = Array.make n 0 in
  let dep_off = Array.make (n + 1) 0 in
  let deps = Fom_util.Int_buffer.create ~capacity:(2 * n) () in
  let mem = Array.make n (-1) in
  let ctrl = Array.make n (-1) in
  for i = 0 to n - 1 do
    let ins = next () in
    ensure ~path:"packed.of_source" (ins.Instr.index = i)
      "source must replay instructions in dynamic index order";
    tag.(i) <- Opclass.to_int ins.Instr.opclass;
    pc.(i) <- ins.Instr.pc;
    (match ins.Instr.dst with Some d -> dst.(i) <- Reg.to_int d | None -> ());
    srcs.(i) <- pack_srcs ins.Instr.srcs;
    Array.iter (fun d -> Fom_util.Int_buffer.push deps d) ins.Instr.deps;
    dep_off.(i + 1) <- Fom_util.Int_buffer.length deps;
    (match ins.Instr.mem with
    | Some addr ->
        ensure ~path:"packed.of_source" (addr >= 0) "memory addresses must be non-negative";
        mem.(i) <- addr
    | None -> ());
    match ins.Instr.ctrl with
    | Some c ->
        ensure ~path:"packed.of_source" (c.Instr.target >= 0)
          "control targets must be non-negative";
        ctrl.(i) <- (c.Instr.target lsl 1) lor Bool.to_int c.Instr.taken
    | None -> ()
  done;
  {
    label;
    len = n;
    tag;
    pc;
    dst;
    srcs;
    dep_off;
    dep_val = Fom_util.Int_buffer.contents deps;
    mem;
    ctrl;
  }

(* Decode one instruction. Fields were validated instruction-by-
   instruction when the trace was packed, so the record is built
   directly rather than through [Instr.make] — this runs once per
   replayed instruction on the simulators' fetch paths. Past the end
   the trace wraps with re-based indices and dependences, mirroring
   {!Source.of_instrs}. *)
let instr t i =
  Fom_check.Checker.ensure ~code:"FOM-T131" ~path:"packed.instr" (i >= 0)
    "dynamic index must be non-negative";
  let off = i mod t.len in
  let rebase = i - off in
  let lo = t.dep_off.(off) and hi = t.dep_off.(off + 1) in
  {
    Instr.index = i;
    pc = t.pc.(off);
    opclass = Opclass.of_int t.tag.(off);
    dst = (if t.dst.(off) < 0 then None else Some (Reg.of_int t.dst.(off)));
    srcs = unpack_srcs t.srcs.(off);
    deps = Array.init (hi - lo) (fun k -> t.dep_val.(lo + k) + rebase);
    mem = (if t.mem.(off) < 0 then None else Some t.mem.(off));
    ctrl =
      (if t.ctrl.(off) < 0 then None
       else Some { Instr.target = t.ctrl.(off) lsr 1; taken = t.ctrl.(off) land 1 = 1 });
  }

let to_source ?(wrap = true) t =
  Source.of_factory ~label:t.label (fun () ->
      let position = ref 0 in
      fun () ->
        let i = !position in
        incr position;
        if (not wrap) && i >= t.len then
          Fom_check.Checker.ensure ~code:"FOM-T132" ~path:"packed.to_source" false
            "replay ran past the end of a non-wrapping packed trace";
        instr t i)
