(** Replayable instruction sources.

    Every consumer in this repository — the functional profiler, the
    idealized IW simulation, the detailed simulator — reads a trace as
    a plain [unit -> Instr.t] thunk. A [Source.t] is a *factory* of
    such thunks: each [fresh] call restarts the trace from the
    beginning, which is what multi-pass analyses (one pass per IW
    window size, one for the profile) need.

    Sources come from three places: the synthetic generator
    ({!of_program}), a materialized array ({!of_instrs}), or a trace
    file ({!load}) — the last is the bring-your-own-trace path for
    driving the model with instruction traces produced elsewhere.

    The file format is line-oriented text, one instruction per line
    (dynamic index is implicit), written by {!save}:

    {v
    fom-trace 1
    <class> <pc-hex> <mem-hex|-> <dir> <target-hex|-> <dep>...
    v}

    where [<class>] is an {!Fom_isa.Opclass.to_string} name, [<dir>]
    is [T]/[N] for control instructions and [-] otherwise, and each
    [<dep>] is the dynamic index of a true producer. Destination
    registers are assigned round-robin on load (only dependence
    structure matters to the model). *)

type t

val label : t -> string
(** Human-readable origin (workload name or file path). *)

val fresh : t -> unit -> Fom_isa.Instr.t
(** A thunk restarting the trace from instruction 0. *)

val of_program : ?seed:int -> Program.t -> t
(** Replay the synthetic program (each thunk is a new {!Stream}).
    [?seed] passes an explicit per-task stream seed through to
    {!Stream.create} — parallel sweeps split one root generator with
    {!Fom_util.Rng.split_seeds} *before* fanning out, so every task
    replays the same trace no matter which domain runs it. *)

val of_factory : label:string -> (unit -> unit -> Fom_isa.Instr.t) -> t
(** Wrap an arbitrary thunk factory; each call of the factory must
    restart the trace deterministically from instruction 0. *)

val of_instrs : ?label:string -> Fom_isa.Instr.t array -> t
(** Replay a materialized trace; past its end the last instructions
    repeat from the start with re-based indices, so consumers may read
    any [n]. The array must be non-empty and in index order. *)

val record : t -> n:int -> Fom_isa.Instr.t array
(** Materialize the first [n] instructions. *)

val save : path:string -> t -> n:int -> unit
(** Write the first [n] instructions in the text format above. *)

val load : path:string -> t
(** Parse a trace file into a replayable source (eagerly).
    @raise Fom_check.Checker.Invalid on malformed input, with a
    [FOM-T10x] diagnostic whose path is [file:line] (1-based) and
    whose message quotes the offending line. *)
