type mix = {
  load : float;
  store : float;
  branch : float;
  jump : float;
  mul : float;
  div : float;
}

type deps = {
  short_p : float;
  short_mean : float;
  long_max : int;
  nsrc_weights : float array;
}

type control = {
  regions : int;
  blocks_per_region : int;
  chaotic_frac : float;
  chaotic_low : float;
  chaotic_high : float;
  pattern_frac : float;
  pattern_max_period : int;
  loop_trip_mean : float;
  bias : float;
}

type memory = {
  local_frac : float;
  random_frac : float;
  stream_frac : float;
  chase_frac : float;
  local_region : int;
  random_region : int;
  stream_region : int;
  chase_region : int;
  stream_stride : int;
  chase_chains : int;
}

type t = {
  name : string;
  seed : int;
  mix : mix;
  deps : deps;
  control : control;
  memory : memory;
  latencies : Fom_isa.Latency.t;
}

let check t =
  let module C = Fom_check.Checker in
  let root = "workload." ^ t.name in
  let frac sub v = C.fraction ~code:"FOM-T001" ~path:(root ^ "." ^ sub) v in
  let at_least sub min v = C.min_int ~code:"FOM-T004" ~path:(root ^ "." ^ sub) ~min v in
  let m = t.mix in
  let d = t.deps in
  let c = t.control in
  let mm = t.memory in
  C.all
    [
      frac "mix.load" m.load;
      frac "mix.store" m.store;
      frac "mix.branch" m.branch;
      frac "mix.jump" m.jump;
      frac "mix.mul" m.mul;
      frac "mix.div" m.div;
      C.check ~code:"FOM-T002" ~path:(root ^ ".mix")
        (m.load +. m.store +. m.branch +. m.jump +. m.mul +. m.div <= 1.0 +. 1e-9)
        "instruction-class fractions must sum to at most 1 (the remainder is ALU work)";
      C.check ~code:"FOM-T003" ~path:(root ^ ".mix")
        (m.branch +. m.jump > 0.0)
        "branch + jump must be positive: it sets the mean basic-block length";
      frac "deps.short_p" d.short_p;
      C.min_float ~code:"FOM-T004" ~path:(root ^ ".deps.short_mean") ~min:1.0 d.short_mean;
      at_least "deps.long_max" 1 d.long_max;
      C.check ~code:"FOM-T005" ~path:(root ^ ".deps.nsrc_weights")
        (Array.length d.nsrc_weights = 3)
        (Printf.sprintf "needs exactly 3 weights (0, 1, 2 sources), got %d"
           (Array.length d.nsrc_weights));
      C.check ~code:"FOM-T005" ~path:(root ^ ".deps.nsrc_weights")
        (Array.for_all (fun w -> w >= 0.0) d.nsrc_weights)
        "weights must be non-negative";
      C.check ~code:"FOM-T005" ~path:(root ^ ".deps.nsrc_weights")
        (Array.fold_left ( +. ) 0.0 d.nsrc_weights > 0.0)
        "weights must have a positive sum";
      at_least "control.regions" 1 c.regions;
      at_least "control.blocks_per_region" 2 c.blocks_per_region;
      frac "control.chaotic_frac" c.chaotic_frac;
      frac "control.pattern_frac" c.pattern_frac;
      C.check ~code:"FOM-T008" ~path:(root ^ ".control")
        (c.chaotic_frac +. c.pattern_frac <= 1.0 +. 1e-9)
        "chaotic_frac + pattern_frac must not exceed 1 (the rest are biased branches)";
      frac "control.chaotic_low" c.chaotic_low;
      frac "control.chaotic_high" c.chaotic_high;
      C.check ~code:"FOM-T007" ~path:(root ^ ".control.chaotic_low")
        (c.chaotic_low <= c.chaotic_high)
        (Printf.sprintf "chaotic_low (%g) must not exceed chaotic_high (%g)" c.chaotic_low
           c.chaotic_high);
      at_least "control.pattern_max_period" 2 c.pattern_max_period;
      C.min_float ~code:"FOM-T004" ~path:(root ^ ".control.loop_trip_mean") ~min:2.0
        c.loop_trip_mean;
      frac "control.bias" c.bias;
      frac "memory.local_frac" mm.local_frac;
      frac "memory.random_frac" mm.random_frac;
      frac "memory.stream_frac" mm.stream_frac;
      frac "memory.chase_frac" mm.chase_frac;
      C.sum_to_one ~code:"FOM-T010" ~path:(root ^ ".memory")
        [
          ("local_frac", mm.local_frac);
          ("random_frac", mm.random_frac);
          ("stream_frac", mm.stream_frac);
          ("chase_frac", mm.chase_frac);
        ];
      at_least "memory.local_region" 1 mm.local_region;
      at_least "memory.random_region" 1 mm.random_region;
      at_least "memory.stream_region" 1 mm.stream_region;
      at_least "memory.chase_region" 1 mm.chase_region;
      C.check ~code:"FOM-T006" ~path:(root ^ ".memory.stream_stride")
        (mm.stream_stride > 0 && mm.stream_stride mod 8 = 0)
        (Printf.sprintf "stride must be a positive multiple of 8 bytes, got %d"
           mm.stream_stride);
      at_least "memory.chase_chains" 0 mm.chase_chains;
      Fom_isa.Latency.diagnostics t.latencies;
    ]

let validate t = Fom_check.Checker.run_exn (check t)

let alu_frac t =
  let m = t.mix in
  1.0 -. (m.load +. m.store +. m.branch +. m.jump +. m.mul +. m.div)

let mean_block_len t = 1.0 /. (t.mix.branch +. t.mix.jump)

let class_weight t cls =
  let m = t.mix in
  match cls with
  | Fom_isa.Opclass.Alu -> alu_frac t
  | Fom_isa.Opclass.Mul -> m.mul
  | Fom_isa.Opclass.Div -> m.div
  | Fom_isa.Opclass.Load -> m.load
  | Fom_isa.Opclass.Store -> m.store
  | Fom_isa.Opclass.Branch -> m.branch
  | Fom_isa.Opclass.Jump -> m.jump
