module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg

type t = { label : string; fresh : unit -> unit -> Instr.t }

let label t = t.label
let fresh t = t.fresh ()
let of_factory ~label fresh = { label; fresh }

let of_program ?seed program =
  {
    label = program.Program.config.Config.name;
    fresh =
      (fun () ->
        let stream = Stream.create ?seed program in
        fun () -> Stream.next stream);
  }

let of_instrs ?(label = "recorded") instrs =
  let ensure = Fom_check.Checker.ensure ~code:"FOM-T110" in
  ensure ~path:"source.of_instrs" (Array.length instrs > 0)
    "recorded trace must be non-empty";
  Array.iteri
    (fun i (ins : Instr.t) ->
      ensure ~path:"source.of_instrs" (ins.Instr.index = i)
        "recorded trace must be in dynamic index order")
    instrs;
  let len = Array.length instrs in
  {
    label;
    fresh =
      (fun () ->
        let position = ref 0 in
        fun () ->
          let p = !position in
          incr position;
          let k = p / len and off = p mod len in
          if k = 0 then instrs.(off)
          else
            (* Wrapped replay: re-base indices and dependences by the
               number of completed copies. *)
            let ins = instrs.(off) in
            {
              ins with
              Instr.index = p;
              deps = Array.map (fun d -> d + (k * len)) ins.Instr.deps;
            });
  }

let record t ~n =
  let next = fresh t in
  Array.init n (fun _ -> next ())

(* --- text format --- *)

let format_magic = "fom-trace 1"

let class_of_string s =
  List.find_opt (fun c -> String.equal (Opclass.to_string c) s) Opclass.all

let save ~path t ~n =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (format_magic ^ "\n");
      let next = fresh t in
      for _ = 1 to n do
        let ins = next () in
        let mem = match ins.Instr.mem with Some a -> Printf.sprintf "%x" a | None -> "-" in
        let dir, target =
          match ins.Instr.ctrl with
          | Some c -> ((if c.Instr.taken then "T" else "N"), Printf.sprintf "%x" c.Instr.target)
          | None -> ("-", "-")
        in
        let deps =
          ins.Instr.deps |> Array.to_list |> List.map string_of_int |> String.concat " "
        in
        Printf.fprintf oc "%s %x %s %s %s%s%s\n"
          (Opclass.to_string ins.Instr.opclass)
          ins.Instr.pc mem dir target
          (if deps = "" then "" else " ")
          deps
      done)

(* A parse error names the file and the 1-based line number in the
   diagnostic path ([file.trace:12]) and quotes the offending line in
   the message. *)
let parse_error ~path ~lineno ~code msg =
  raise
    (Fom_check.Checker.Invalid
       [
         Fom_check.Diagnostic.make ~code
           ~path:(Printf.sprintf "%s:%d" path lineno)
           msg;
       ])

let parse_line ~path ~lineno ~index ~next_dst line =
  match String.split_on_char ' ' (String.trim line) with
  | cls_s :: pc_s :: mem_s :: dir_s :: target_s :: dep_fields -> (
      match class_of_string cls_s with
      | None ->
          parse_error ~path ~lineno ~code:"FOM-T103"
            (Printf.sprintf "unknown instruction class %S in %S" cls_s line)
      | Some opclass ->
          let parse_hex what s =
            match int_of_string_opt ("0x" ^ s) with
            | Some v -> v
            | None ->
                parse_error ~path ~lineno ~code:"FOM-T104"
                  (Printf.sprintf "bad %s %S in %S" what s line)
          in
          let pc = parse_hex "pc" pc_s in
          let mem = if mem_s = "-" then None else Some (parse_hex "address" mem_s) in
          let ctrl =
            match (dir_s, target_s) with
            | "-", "-" -> None
            | dir, target ->
                Some { Instr.target = parse_hex "target" target; taken = dir = "T" }
          in
          let deps =
            dep_fields
            |> List.filter (fun f -> f <> "")
            |> List.map (fun f ->
                   match int_of_string_opt f with
                   | Some d when d >= 0 && d < index -> d
                   | Some d ->
                       parse_error ~path ~lineno ~code:"FOM-T105"
                         (Printf.sprintf
                            "dependence %d must name an earlier instruction (this is \
                             instruction %d) in %S"
                            d index line)
                   | None ->
                       parse_error ~path ~lineno ~code:"FOM-T104"
                         (Printf.sprintf "bad dependence %S in %S" f line))
            |> Array.of_list
          in
          let dst =
            match opclass with
            | Opclass.Alu | Opclass.Mul | Opclass.Div | Opclass.Load ->
                next_dst := (!next_dst mod (Reg.count - 1)) + 1;
                Some (Reg.of_int !next_dst)
            | Opclass.Store | Opclass.Branch | Opclass.Jump -> None
          in
          Instr.make ~index ~pc ~opclass ?dst ~deps ?mem ?ctrl ())
  | _ ->
      parse_error ~path ~lineno ~code:"FOM-T106"
        (Printf.sprintf "malformed trace line %S (expected class pc mem dir target deps...)"
           line)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match input_line ic with
      | magic when String.trim magic = format_magic -> ()
      | magic ->
          parse_error ~path ~lineno:1 ~code:"FOM-T101"
            (Printf.sprintf "not a fom trace (header %S, expected %S)" magic format_magic)
      | exception End_of_file ->
          parse_error ~path ~lineno:1 ~code:"FOM-T102" "empty trace file");
      let next_dst = ref 0 in
      let instrs = ref [] in
      let index = ref 0 in
      let lineno = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then begin
             instrs := parse_line ~path ~lineno:!lineno ~index:!index ~next_dst line :: !instrs;
             incr index
           end
         done
       with End_of_file -> ());
      if !instrs = [] then
        parse_error ~path ~lineno:!lineno ~code:"FOM-T107" "trace file has no instructions";
      of_instrs ~label:path (Array.of_list (List.rev !instrs)))
