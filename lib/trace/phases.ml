module Instr = Fom_isa.Instr

type phase = { config : Config.t; instructions : int }

let schedule_length phases = List.fold_left (fun acc p -> acc + p.instructions) 0 phases

let check phases =
  let module C = Fom_check.Checker in
  C.all
    (C.check ~code:"FOM-T040" ~path:"phases" (phases <> []) "phase schedule must be non-empty"
    :: List.mapi
         (fun i p ->
           C.min_int ~code:"FOM-T041"
             ~path:(Printf.sprintf "phases[%d].instructions" i)
             ~min:1 p.instructions)
         phases)

let source phases =
  Fom_check.Checker.run_exn (check phases);
  let programs = List.map (fun p -> (Program.generate p.config, p.instructions)) phases in
  let label =
    String.concat "+" (List.map (fun p -> p.config.Config.name) phases)
  in
  let fresh () =
    let remaining = ref [] in
    let current = ref None in
    let phase_base = ref 0 in
    let produced_in_phase = ref 0 in
    let global = ref 0 in
    let activate () =
      (match !remaining with
      | [] -> remaining := programs
      | _ -> ());
      match !remaining with
      | (program, budget) :: rest ->
          remaining := rest;
          let active = (Stream.create program, budget) in
          current := Some active;
          phase_base := !global;
          produced_in_phase := 0;
          active
      | [] -> Fom_check.Checker.internal_error "phase schedule became empty"
    in
    fun () ->
      let stream, _ =
        match !current with
        | Some ((_, budget) as active) when !produced_in_phase < budget -> active
        | Some _ | None -> activate ()
      in
      let ins = Stream.next stream in
      incr produced_in_phase;
      let index = !global in
      incr global;
      (* Rebase the phase-local index and dependences to the global
         numbering. *)
      {
        ins with
        Instr.index;
        deps = Array.map (fun d -> d + !phase_base) ins.Instr.deps;
      }
  in
  Source.of_factory ~label fresh
