(** Packed structure-of-arrays trace representation.

    A [Packed.t] materializes the first [n] instructions of a
    {!Source.t} once, into flat [int] arrays — one cache-friendly
    column per field, no per-instruction heap records. The packing is
    immutable after construction, so one packed trace is safely shared
    across an entire window sweep and across {!Fom_exec.Pool} domains
    without copying.

    The columns (all indexed by dynamic instruction, except the
    dependence columns which use compressed-sparse-row layout):

    - [tag]: operation class as {!Fom_isa.Opclass.to_int};
    - [pc]: instruction address;
    - [dst]: destination register as {!Fom_isa.Reg.to_int}, or [-1];
    - [srcs]: source registers packed into one word (bits 0-1 the
      count, then 8 bits per register);
    - [dep_off]/[dep_val]: instruction [i]'s true producers are
      [dep_val.(dep_off.(i)) .. dep_val.(dep_off.(i+1) - 1)], in
      instruction-field order;
    - [mem]: effective address, or [-1];
    - [ctrl]: [-1] for non-control instructions, else
      [(target lsl 1) lor taken].

    The record is exposed so simulation kernels can index the columns
    directly; treat every array as read-only. *)

type t = private {
  label : string;
  len : int;
  tag : int array;
  pc : int array;
  dst : int array;
  srcs : int array;
  dep_off : int array;
  dep_val : int array;
  mem : int array;
  ctrl : int array;
}

val of_source : ?label:string -> Source.t -> n:int -> t
(** Materialize the first [n] instructions ([FOM-T130] if [n <= 0];
    fields are validated as they are packed). *)

val length : t -> int
(** Number of packed instructions. *)

val label : t -> string
(** Human-readable origin, inherited from the source. *)

val instr : t -> int -> Fom_isa.Instr.t
(** Decode dynamic instruction [i] ([FOM-T131] if negative). Past the
    end the trace wraps with re-based indices and dependences, exactly
    like {!Source.of_instrs} replay. *)

val to_source : ?wrap:bool -> t -> Source.t
(** A replayable {!Source.t} decoding from the packed columns.
    [wrap] (default [true]) selects the {!Source.of_instrs} wrapping
    behaviour past the end; with [~wrap:false] reading past the end
    raises a [FOM-T132] diagnostic instead — for callers that sized
    the packing to cover the whole run and want overruns loud. *)
