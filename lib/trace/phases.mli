(** Phased workloads.

    The paper notes (Section 7) that workloads whose behaviour shifts
    over time may need each *phase* modeled separately, with the
    results combined — a single set of whole-trace statistics blurs
    distinct regimes (one IW fit across phases with different ILP, one
    miss-group distribution across different locality patterns).

    A phase schedule concatenates synthetic workloads: each phase runs
    its config's trace for its instruction budget, then the next phase
    begins; after the last phase the schedule repeats. Dynamic indices
    are globally sequential and dependences never cross a phase
    boundary (each activation restarts the phase's stream — the
    regime change is a working-set change, as in real programs). *)

type phase = {
  config : Config.t;
  instructions : int;  (** phase length per activation (> 0) *)
}

val check : phase list -> Fom_check.Diagnostic.t list
(** [FOM-T040]/[FOM-T041] diagnostics: non-empty schedule, positive
    per-phase instruction budgets. *)

val source : phase list -> Source.t
(** A replayable source cycling through the schedule. The label joins
    the phase names. Requires a non-empty schedule (raises
    {!Fom_check.Checker.Invalid} otherwise). *)

val schedule_length : phase list -> int
(** Instructions in one full pass of the schedule. *)
