module Rng = Fom_util.Rng
module Opclass = Fom_isa.Opclass
module Reg = Fom_isa.Reg

type static = {
  uid : int;
  pc : int;
  opclass : Opclass.t;
  dst : Reg.t option;
  nsrc : int;
  agen_spec : (Address_gen.kind * Address_gen.region) option;
  behavior_spec : Branch_behavior.kind option;
  chase : bool;
}

type block = {
  first : int;
  len : int;
  taken_succ : int;
  fall_succ : int;
}

type t = {
  config : Config.t;
  statics : static array;
  blocks : block array;
}

let code_base = 0x400000

(* Data regions are laid out from here; each allocation is rounded up
   to a 64 KiB boundary so regions never share cache sets spuriously. *)
let data_base = 0x10000000

type alloc = { mutable cursor : int; mutable staggers : int }

(* Region bases are staggered across cache sets: aligning every region
   identically would make concurrent streams walk the same sets in
   lockstep and thrash any set-associative cache, which real heaps do
   not do. *)
let allocate alloc size =
  let granule = 65536 in
  let stagger = alloc.staggers * 3 * 128 mod 8192 in
  alloc.staggers <- alloc.staggers + 1;
  let rounded = (size + stagger + granule - 1) / granule * granule in
  let base = alloc.cursor + stagger in
  alloc.cursor <- alloc.cursor + rounded;
  { Address_gen.base; size }

let sample_nsrc rng weights = Rng.categorical rng weights

let sample_trip rng mean =
  (* Trip counts of at least 2 with the configured mean. *)
  2 + Rng.geometric rng (1.0 /. (mean -. 1.0))

let sample_behavior rng (c : Config.control) =
  let u = Rng.float rng 1.0 in
  if u < c.chaotic_frac then
    Branch_behavior.Chaotic (c.chaotic_low +. Rng.float rng (c.chaotic_high -. c.chaotic_low))
  else if u < c.chaotic_frac +. c.pattern_frac then begin
    let period = 2 + Rng.int rng (c.pattern_max_period - 1) in
    Branch_behavior.Pattern (Array.init period (fun _ -> Rng.bool rng))
  end
  else Branch_behavior.Biased (if Rng.bool rng then c.bias else 1.0 -. c.bias)

let generate config =
  Config.validate config;
  let rng = Rng.create (config.Config.seed lxor 0x7A12) in
  let alloc = { cursor = data_base; staggers = 0 } in
  let mem = config.Config.memory in
  let local_region = allocate alloc mem.local_region in
  let random_region = allocate alloc mem.random_region in
  let chase_region = allocate alloc mem.chase_region in
  let statics = ref [] in
  let n_statics = ref 0 in
  let next_dst = ref 0 in
  let fresh_dst () =
    (* Round-robin over r1..r31; r0 stays the hard-wired zero. *)
    next_dst := (!next_dst mod (Reg.count - 1)) + 1;
    Some (Reg.of_int !next_dst)
  in
  let emit ~opclass ~dst ~nsrc ~agen_spec ~behavior_spec ~chase =
    let uid = !n_statics in
    incr n_statics;
    let s =
      { uid; pc = code_base + (4 * uid); opclass; dst; nsrc; agen_spec; behavior_spec; chase }
    in
    statics := s :: !statics;
    uid
  in
  let plain ~opclass ~nsrc =
    let dst = match opclass with
      | Opclass.Alu | Opclass.Mul | Opclass.Div -> fresh_dst ()
      | Opclass.Load | Opclass.Store | Opclass.Branch | Opclass.Jump -> None
    in
    ignore (emit ~opclass ~dst ~nsrc ~agen_spec:None ~behavior_spec:None ~chase:false)
  in
  let emit_load () =
    let u = Rng.float rng 1.0 in
    let kind, region, chase =
      if u < mem.local_frac then (Address_gen.Random, local_region, false)
      else if u < mem.local_frac +. mem.random_frac then (Address_gen.Random, random_region, false)
      else if u < mem.local_frac +. mem.random_frac +. mem.stream_frac then
        (Address_gen.Stride { stride = mem.stream_stride }, allocate alloc mem.stream_region, false)
      else (Address_gen.Chase, chase_region, true)
    in
    ignore
      (emit ~opclass:Opclass.Load ~dst:(fresh_dst ()) ~nsrc:1
         ~agen_spec:(Some (kind, region)) ~behavior_spec:None ~chase)
  in
  let emit_store () =
    ignore
      (emit ~opclass:Opclass.Store ~dst:None ~nsrc:2
         ~agen_spec:(Some (Address_gen.Random, local_region)) ~behavior_spec:None ~chase:false)
  in
  (* Body classes: the mix renormalized without control instructions.
     Classes are drawn by largest-remainder quota rather than
     independently at random, so that every block carries a
     representative slice of the mix — otherwise small hot programs
     would have a dynamic mix dominated by whichever blocks happen to
     be over-sampled. *)
  let body_classes = [| Opclass.Alu; Opclass.Mul; Opclass.Div; Opclass.Load; Opclass.Store |] in
  let body_weights = Array.map (fun c -> Config.class_weight config c) body_classes in
  let body_weight_total = Array.fold_left ( +. ) 0.0 body_weights in
  let body_emitted = Array.make (Array.length body_classes) 0.0 in
  let body_total = ref 0.0 in
  let next_body_class () =
    body_total := !body_total +. 1.0;
    let best = ref 0 and best_deficit = ref neg_infinity in
    Array.iteri
      (fun i w ->
        let deficit = (w /. body_weight_total *. !body_total) -. body_emitted.(i) in
        if deficit > !best_deficit then begin
          best := i;
          best_deficit := deficit
        end)
      body_weights;
    body_emitted.(!best) <- body_emitted.(!best) +. 1.0;
    body_classes.(!best)
  in
  let emit_body_instr () =
    match next_body_class () with
    | Opclass.Load -> emit_load ()
    | Opclass.Store -> emit_store ()
    | (Opclass.Alu | Opclass.Mul | Opclass.Div) as opclass ->
        plain ~opclass ~nsrc:(sample_nsrc rng config.Config.deps.nsrc_weights)
    | Opclass.Branch | Opclass.Jump ->
        Fom_check.Checker.internal_error "control class drawn as a body instruction"
  in
  let ctrl = config.Config.control in
  let mean_body = Float.max 1.0 (Config.mean_block_len config -. 1.0) in
  let body_len () = 1 + Rng.geometric rng (1.0 /. mean_body) in
  let jump_frac =
    config.Config.mix.jump /. (config.Config.mix.branch +. config.Config.mix.jump)
  in
  (* Jump terminators are also placed by quota. *)
  let jumps_emitted = ref 0.0 and terminators_emitted = ref 0.0 in
  let next_is_jump () =
    terminators_emitted := !terminators_emitted +. 1.0;
    let deficit = (jump_frac *. !terminators_emitted) -. !jumps_emitted in
    if deficit >= 1.0 then begin
      jumps_emitted := !jumps_emitted +. 1.0;
      true
    end
    else false
  in
  let n_blocks = ctrl.regions * ctrl.blocks_per_region in
  let region_entry r = r * ctrl.blocks_per_region in
  let blocks = ref [] in
  for r = 0 to ctrl.regions - 1 do
    for b = 0 to ctrl.blocks_per_region - 1 do
      let id = region_entry r + b in
      let first = !n_statics in
      let body = body_len () in
      for _ = 1 to body do
        emit_body_instr ()
      done;
      let last_in_region = b = ctrl.blocks_per_region - 1 in
      let taken_succ, fall_succ =
        if last_in_region then
          (* Loop back-edge: taken repeats the region, fall-through
             moves on to the next region. *)
          (region_entry r, region_entry ((r + 1) mod ctrl.regions))
        else
          (* Internal branches drive the predictor with their direction
             stream but both edges continue to the next block: the
             simulation is trace-driven and correct-path only, so path
             variability would only make the dynamic mix noisy without
             exercising anything the model consumes. *)
          (id + 1, id + 1)
      in
      let is_jump = (not last_in_region) && ctrl.regions > 1 && next_is_jump () in
      if is_jump then begin
        (* A call: control transfers to another region's entry and the
           stream's return stack brings it back to [fall_succ] when the
           callee region completes. Never the caller's own region —
           direct recursion would trap the walk between the entry and
           the call site, starving the rest of the region. *)
        let target =
          let other = Rng.int rng (ctrl.regions - 1) in
          region_entry (if other >= r then other + 1 else other)
        in
        ignore
          (emit ~opclass:Opclass.Jump ~dst:None ~nsrc:0 ~agen_spec:None
             ~behavior_spec:None ~chase:false);
        blocks := { first; len = body + 1; taken_succ = target; fall_succ = id + 1 } :: !blocks
      end
      else begin
        let behavior =
          if last_in_region then Branch_behavior.Loop (sample_trip rng ctrl.loop_trip_mean)
          else sample_behavior rng ctrl
        in
        ignore
          (emit ~opclass:Opclass.Branch ~dst:None ~nsrc:1 ~agen_spec:None
             ~behavior_spec:(Some behavior) ~chase:false);
        blocks := { first; len = body + 1; taken_succ; fall_succ } :: !blocks
      end
    done
  done;
  let blocks = Array.of_list (List.rev !blocks) in
  assert (Array.length blocks = n_blocks);
  { config; statics = Array.of_list (List.rev !statics); blocks }

let entry _t = 0
let static_count t = Array.length t.statics
let footprint_bytes t = 4 * static_count t

let block_of_uid t uid =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if t.blocks.(mid).first <= uid then search mid hi else search lo (mid - 1)
  in
  search 0 (Array.length t.blocks - 1)

let terminator t b =
  let blk = t.blocks.(b) in
  t.statics.(blk.first + blk.len - 1)
