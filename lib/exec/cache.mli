(** Persistent on-disk result cache, keyed by content digest.

    Heavy results — detailed-simulation statistics, benchmark
    characterizations — are pure functions of their configuration, so
    a repeated run (a local edit-rerun loop, a re-triggered CI job)
    can skip them entirely when nothing relevant changed. An entry's
    {!digest} key folds together everything the result depends on:

    - the workload configuration (the synthetic-trace recipe and its
      RNG seed),
    - the machine / model configuration (cache hierarchy, predictor,
      model parameters),
    - the instruction counts ([n]),
    - {!code_version} — a constant bumped whenever a code change can
      alter results, so every old entry goes stale at once.

    Configuration values enter the digest through {!part}: the
    [Marshal] bytes of a plain (closure-free) record canonically
    describe its content, and a type-layout change from editing the
    records shows up as a different digest — a miss, never a wrong
    hit.

    Entries are single files ([<digest>.fomc]) written atomically
    (temp file + rename), each carrying a
    ["<code_version>:<key>"] header that is verified before the value
    is used. Damage is never fatal: a corrupt entry is reported as a
    [FOM-E006] warning, a version-mismatched one as [FOM-E007], and in
    both cases the entry is deleted and the value recomputed.

    Diagnostic codes:
    - [FOM-E006] — cache entry unreadable/unwritable (corrupt file,
      I/O failure, permissions)
    - [FOM-E007] — stale cache entry (written by another
      {!code_version}) *)

type t

val code_version : string
(** Folded into every digest and entry header. Bump it whenever a
    change to the simulator, the analysis kernels, or the cached value
    types can alter results — all previously written entries then
    simply stop matching. *)

val create : dir:string -> t
(** Open (creating if needed, like [mkdir -p]) a cache rooted at
    [dir]. Concurrent processes may share a directory: writes are
    atomic and a racing duplicate write of the same digest is
    harmless (both sides computed the same value).
    @raise Fom_check.Checker.Invalid with [FOM-E006] if the directory
    cannot be created. *)

val dir : t -> string

val part : 'a -> string
(** A digest ingredient from any closure-free value: its [Marshal]
    bytes. *)

val digest : string list -> string
(** The cache key for a result depending on exactly [parts] (order
    matters): a hex digest of the parts and {!code_version}. Include a
    distinct leading kind tag (e.g. ["sim"], ["characterization"]) so
    results of different types can never share a key. *)

val get : t -> key:string -> (unit -> 'a) -> 'a
(** [get t ~key compute] returns the cached value for [key] (as built
    by {!digest}) or computes, persists and returns it. Type safety
    rests on the key: a key must always be demanded at the same result
    type, which the kind tag in {!digest} guarantees. Unreadable or
    stale entries are recomputed and reported via
    {!drain_diagnostics}, never raised. *)

val entry_path : t -> key:string -> string
(** The file a key persists to (exposed for tests and tooling). *)

val stats : t -> int * int
(** [(hits, misses)] so far — a run that changed nothing reports all
    hits. *)

val drain_diagnostics : t -> Fom_check.Diagnostic.t list
(** Warnings accumulated since the last drain ([FOM-E006]/[FOM-E007]),
    oldest first; harnesses print them at the end of a pass. *)
