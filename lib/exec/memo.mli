(** Future-based once-cell memoization for concurrent demand.

    A [Memo.t] maps keys to lazily computed values with an
    *exactly-once* guarantee under concurrency: the first domain to
    demand a key claims its cell and computes; every other domain
    demanding the same key while the computation is in flight waits
    for that one result instead of duplicating the work. This replaces
    the "compute outside the lock, keep whichever lands first" tables
    that let two domains each spend seconds characterizing the same
    benchmark — the ~0.5x parallel "speedup" signature.

    Waiting is productive: a demander blocked on an in-flight key
    repeatedly offers itself to the memo's pool ({!Pool.help}) —
    running queued or stolen tasks — and only sleeps on the cell's
    condition variable when the pool has nothing runnable. Correctness
    never depends on the helping; the owner can always finish on its
    own, so every waiter is woken by the owner's publish at the
    latest.

    A computation that raises is published as failed: the owner's
    exception (with its backtrace) is re-raised by every current and
    future demander of that key, deterministically, without
    recomputing.

    Compute functions may freely use the pool (nested maps are safe),
    but must not demand — directly or through tasks they wait on — a
    key that is currently being computed by the demanding domain
    itself: the direct case raises [FOM-E005] (re-entrant demand); a
    genuine cross-domain cyclic dependency would deadlock, exactly as
    it would have deadlocked a sequential evaluation in an infinite
    recursion. The sims / characterizations / packed traces this
    repository memoizes form a DAG, so no such cycle exists.

    Diagnostic codes:
    - [FOM-E005] — re-entrant demand for a key this domain is already
      computing *)

type ('k, 'v) t
(** A memo table from ['k] (hashable keys) to ['v]. *)

val create : ?pool:Pool.t -> unit -> ('k, 'v) t
(** A fresh, empty table. When [?pool] is given, demanders waiting on
    an in-flight key help drain that pool instead of sleeping. *)

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [get t key compute] returns the memoized value for [key],
    invoking [compute] exactly once per key per process — the first
    demander computes, concurrent demanders wait for its result.
    Re-raises the owner's exception if the computation failed. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** The completed value for [key], if any — [None] while the key is
    unclaimed, in flight, or failed. Never blocks. *)

val compute_count : ('k, 'v) t -> int
(** How many computations this table has ever *started* — the
    exactly-once guarantee says this equals the number of distinct
    keys demanded, regardless of worker count (asserted by the
    regression tests in [test/suite_exec.ml]). *)

val length : ('k, 'v) t -> int
(** Number of keys present (claimed, completed, or failed). *)
