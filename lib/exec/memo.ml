module Checker = Fom_check.Checker

(* Observability (no-ops unless an Fom_obs sink is enabled):
   [memo.computes] counts owned first computations, [memo.joins]
   demands served by an existing cell, and [memo.contention] every
   help-or-sleep iteration a demander spends waiting on another
   domain's in-flight compute. *)
let m_computes = Fom_obs.Metrics.counter "memo.computes"
let m_joins = Fom_obs.Metrics.counter "memo.joins"
let m_contention = Fom_obs.Metrics.counter "memo.contention"
let s_compute = Fom_obs.Span.id "memo.compute"

(* Each key owns a future cell: the first demander claims it (under
   the table lock) and computes outside any lock; later demanders find
   the claimed cell and wait on its condition — helping drain the pool
   between waits — until the owner publishes a result. The compute
   therefore runs exactly once per key per process, no matter how many
   domains demand it concurrently. *)

type 'v state =
  | In_flight of int  (* id of the owning domain *)
  | Done of 'v
  | Failed of exn * Printexc.raw_backtrace

type 'v cell = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : 'v state;
}

type ('k, 'v) t = {
  lock : Mutex.t;  (* guards the table and the counter *)
  table : ('k, 'v cell) Hashtbl.t;
  pool : Pool.t option;
  mutable computes : int;
}

let create ?pool () =
  { lock = Mutex.create (); table = Hashtbl.create 64; pool; computes = 0 }

let compute_count t =
  Mutex.lock t.lock;
  let n = t.computes in
  Mutex.unlock t.lock;
  n

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let self_id () = (Domain.self () :> int)

let publish cell state =
  Mutex.lock cell.mutex;
  cell.state <- state;
  Condition.broadcast cell.cond;
  Mutex.unlock cell.mutex

(* Wait for another domain's in-flight computation. Between checks the
   waiter helps drain the pool — running its own or stolen tasks — so
   a blocked demand costs throughput nothing while work is queued; it
   only sleeps on the cell's condition when the whole pool is idle.
   Progress does not depend on the helping: the owner can always
   finish on its own (a nested map's caller drives its own tasks), so
   a sleeping waiter is woken by the owner's publish at the latest. *)
let rec await t cell =
  Mutex.lock cell.mutex;
  match cell.state with
  | Done v ->
      Mutex.unlock cell.mutex;
      v
  | Failed (exn, bt) ->
      Mutex.unlock cell.mutex;
      Printexc.raise_with_backtrace exn bt
  | In_flight owner ->
      Mutex.unlock cell.mutex;
      if owner = self_id () then
        Checker.ensure ~code:"FOM-E005" ~path:"exec.memo" false
          "re-entrant demand: this domain is already computing this key";
      Fom_obs.Metrics.incr m_contention;
      let helped = match t.pool with Some pool -> Pool.help pool | None -> false in
      if not helped then begin
        Mutex.lock cell.mutex;
        (match cell.state with
        | In_flight _ -> Condition.wait cell.cond cell.mutex
        | Done _ | Failed _ -> ());
        Mutex.unlock cell.mutex
      end;
      await t cell

let get t key compute =
  Mutex.lock t.lock;
  let cell, owner =
    match Hashtbl.find_opt t.table key with
    | Some cell -> (cell, false)
    | None ->
        let cell =
          {
            mutex = Mutex.create ();
            cond = Condition.create ();
            state = In_flight (self_id ());
          }
        in
        Hashtbl.add t.table key cell;
        t.computes <- t.computes + 1;
        (cell, true)
  in
  Mutex.unlock t.lock;
  if not owner then begin
    Fom_obs.Metrics.incr m_joins;
    await t cell
  end
  else begin
    Fom_obs.Metrics.incr m_computes;
    match Fom_obs.Span.with_ s_compute compute with
    | v ->
        publish cell (Done v);
        v
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        publish cell (Failed (exn, bt));
        Printexc.raise_with_backtrace exn bt
  end

let find_opt t key =
  Mutex.lock t.lock;
  let cell = Hashtbl.find_opt t.table key in
  Mutex.unlock t.lock;
  match cell with
  | None -> None
  | Some cell -> (
      Mutex.lock cell.mutex;
      let state = cell.state in
      Mutex.unlock cell.mutex;
      match state with Done v -> Some v | In_flight _ | Failed _ -> None)
