(** Fixed domain-pool scheduler for embarrassingly parallel evaluation.

    The paper's value proposition is that the first-order model is
    orders of magnitude cheaper than detailed simulation; this module
    is how the repository spends that cheapness across cores. A pool
    owns a fixed set of worker domains (no work stealing, no dynamic
    resizing) and evaluates *immutable task descriptors* with
    {!map}/{!map_reduce}:

    - {b Chunked}: the task list is split into contiguous chunks that
      are enqueued once; workers take whole chunks, never individual
      tasks, so scheduling overhead is independent of task count.
    - {b Deterministic ordering}: results are delivered in task order
      regardless of which domain ran which chunk, and {!map_reduce}
      folds in task order — a [jobs = 1] pool is bit-identical to
      [jobs = N].
    - {b Exception capture}: a task that raises does not tear down the
      pool. Failures are collected per task and surfaced as
      {!Fom_check} diagnostics ([FOM-E002], or the task's own
      diagnostics re-rooted under its index); the surviving pool can
      immediately run the next batch.
    - {b Reentrant}: a task may itself call {!map} on the same pool.
      The caller of a map always helps drain the shared queue while it
      waits, so nested maps make progress even on a single domain.

    Diagnostic codes ([FOM-Exxx], "execution"):
    - [FOM-E001] — invalid job count (flag, [FOM_JOBS], or [create])
    - [FOM-E002] — a task raised a non-diagnostic exception
    - [FOM-E003] — the pool was used after {!shutdown}
    - [FOM-E004] — an explicit job count oversubscribes the machine
      (warning, from {!resolve_jobs}) *)

type t
(** A pool of worker domains. The creating domain participates in
    every {!map}, so a pool of [jobs = n] spawns [n - 1] domains and a
    [jobs = 1] pool spawns none and runs everything inline. *)

val recommended_domain_count : unit -> int
(** The runtime's recommended domain count — the point past which more
    workers stop helping. On a single-core machine this is [1], and
    harnesses that default through {!resolve_jobs} run sequentially. *)

val default_jobs : unit -> int
(** The [FOM_JOBS] environment variable if set (a positive integer,
    else a [FOM-E001] diagnostic is raised), otherwise
    {!recommended_domain_count}. *)

val resolve_jobs : ?requested:int -> unit -> int * Fom_check.Diagnostic.t list
(** Resolve a harness's worker count. With no [?requested] value this
    is {!default_jobs} — in particular, sequential when the machine
    recommends a single domain and [FOM_JOBS] is unset. An explicit
    [?requested] count wins (it must be positive — [FOM-E001]
    otherwise), but when it exceeds {!recommended_domain_count} a
    [FOM-E004] {e warning} diagnostic is returned alongside it:
    oversubscription never changes results (the pool is deterministic),
    it only wastes scheduling. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts a pool of [jobs] workers (default
    {!default_jobs}). Requires [jobs >= 1].
    @raise Fom_check.Checker.Invalid with [FOM-E001] otherwise. *)

val jobs : t -> int
(** The pool's worker count (including the calling domain). *)

val shutdown : t -> unit
(** Drain outstanding work, join the worker domains and mark the pool
    closed. Idempotent; subsequent {!map} calls raise [FOM-E003]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it
    down. *)

val try_map :
  t -> f:('a -> 'b) -> 'a list -> ('b, Fom_check.Diagnostic.t list) result list
(** [try_map pool ~f tasks] evaluates [f] over every task and returns
    one result per task, in task order. A raising task yields [Error]:
    its {!Fom_check.Checker.Invalid} diagnostics re-rooted under
    [exec.task[i]], or a single [FOM-E002] diagnostic for any other
    exception. All tasks run to completion even when some fail. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** Like {!try_map} but returns the plain results.
    @raise Fom_check.Checker.Invalid with every failed task's
    diagnostics if any task raised. *)

val map_reduce :
  t -> f:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce pool ~f ~reduce ~init tasks] maps in parallel and
    folds the results sequentially in task order, so the reduction is
    deterministic even when [reduce] is not commutative. *)
