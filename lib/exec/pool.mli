(** Work-stealing domain-pool scheduler for embarrassingly parallel
    evaluation.

    The paper's value proposition is that the first-order model is
    orders of magnitude cheaper than detailed simulation; this module
    is how the repository spends that cheapness across cores. A pool
    owns a fixed set of participating domains and evaluates *immutable
    task descriptors* with {!map}/{!map_reduce}:

    - {b Per-worker deques, steal-half}: each participating domain
      owns a deque. A batch lands on the submitting domain's deque;
      the owner works from the back (depth-first, so nested maps stay
      cache-local), idle domains steal the oldest *half* of the
      longest deque, so imbalanced batches spread geometrically. Every
      task — one detailed sim, one IW-curve window — is independently
      stealable; one slow benchmark no longer serializes a chunk.
    - {b Deterministic ordering}: results are delivered in task order
      regardless of which domain ran which task, and {!map_reduce}
      folds in task order — a [jobs = 1] pool is bit-identical to
      [jobs = N], across repeated runs.
    - {b Domain capping}: the pool never runs more domains than
      {!recommended_domain_count} — oversubscribed domains only add
      stop-the-world GC synchronization (the classic ~0.5x "speedup"
      of an oversubscribed OCaml 5 pool). The advertised {!jobs} count
      is preserved for callers that gate parallel paths on it;
      {!create}'s [?domains] overrides the cap (tests use it to force
      true multi-domain execution on single-core machines).
    - {b Exception capture}: a task that raises does not tear down the
      pool. Failures are collected per task and surfaced as
      {!Fom_check} diagnostics ([FOM-E002], or the task's own
      diagnostics re-rooted under its index); the surviving pool can
      immediately run the next batch.
    - {b Reentrant}: a task may itself call {!map} on the same pool.
      The caller of a map always drives — running its own tasks and
      stealing others — while it waits, so nested maps make progress
      even on a single domain, and {!help} lets a domain blocked on
      something else (a {!Memo} future) drain the pool instead of
      sleeping.

    Diagnostic codes ([FOM-Exxx], "execution"):
    - [FOM-E001] — invalid job or domain count (flag, [FOM_JOBS], or
      [create])
    - [FOM-E002] — a task raised a non-diagnostic exception
    - [FOM-E003] — the pool was used after {!shutdown}
    - [FOM-E004] — an explicit job count oversubscribes the machine
      (warning, from {!resolve_jobs}) *)

type t
(** A pool of worker domains. The creating domain participates in
    every {!map}, so a pool running [d] domains spawns [d - 1] and a
    single-domain pool spawns none and runs everything inline. *)

val recommended_domain_count : unit -> int
(** The runtime's recommended domain count — the point past which more
    workers stop helping. On a single-core machine this is [1], and
    harnesses that default through {!resolve_jobs} run sequentially. *)

val default_jobs : unit -> int
(** The [FOM_JOBS] environment variable if set and non-blank (a
    positive integer, else a [FOM-E001] diagnostic is raised),
    otherwise {!recommended_domain_count}. *)

val resolve_jobs : ?requested:int -> unit -> int * Fom_check.Diagnostic.t list
(** Resolve a harness's worker count; never raises. With no
    [?requested] value this follows [FOM_JOBS], falling back to
    {!recommended_domain_count} — in particular, sequential when the
    machine recommends a single domain and [FOM_JOBS] is unset. An
    explicit [?requested] count wins. Diagnostics come back alongside
    the count instead of being raised, so harnesses can report them
    through their normal channel:
    - a non-positive [?requested] count, or a malformed or
      non-positive [FOM_JOBS] value, yields a [FOM-E001] {e error}
      diagnostic and a safe sequential fallback of [1] — callers
      should treat the error as fatal ([fom check] folds it into its
      report and exits 1; the bench prints it and aborts);
    - a count exceeding {!recommended_domain_count} (requested or from
      [FOM_JOBS]) yields a [FOM-E004] {e warning}: the pool caps the
      domains it actually runs at the recommended count (see
      {!create}), so oversubscription never changes results, it only
      fails to help. *)

val create : ?jobs:int -> ?domains:int -> unit -> t
(** [create ~jobs ()] starts a pool advertising [jobs] workers
    (default {!default_jobs}). Requires [jobs >= 1]. The number of
    domains actually run is [min jobs (recommended_domain_count ())]
    unless [?domains] overrides it — results never depend on either
    count.
    @raise Fom_check.Checker.Invalid with [FOM-E001] otherwise. *)

val jobs : t -> int
(** The pool's advertised worker count (the [--jobs] request,
    including the calling domain). *)

val domains : t -> int
(** The number of domains actually participating (including the
    calling domain): [min (jobs t) (recommended_domain_count ())]
    unless [create ?domains] overrode the cap. *)

val shutdown : t -> unit
(** Drain outstanding work, join the worker domains and mark the pool
    closed. Idempotent; subsequent {!map} calls raise [FOM-E003]. *)

val with_pool : ?jobs:int -> ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it
    down. *)

val help : t -> bool
(** Run one pending task from anywhere in the pool, if any is queued:
    the caller's own deque first, else stolen from the longest one.
    [false] means nothing was runnable. This is how a domain blocked
    on something other than the pool (a {!Memo} future) stays useful
    instead of sleeping. *)

val try_map :
  t -> f:('a -> 'b) -> 'a list -> ('b, Fom_check.Diagnostic.t list) result list
(** [try_map pool ~f tasks] evaluates [f] over every task and returns
    one result per task, in task order. A raising task yields [Error]:
    its {!Fom_check.Checker.Invalid} diagnostics re-rooted under
    [exec.task[i]], or a single [FOM-E002] diagnostic for any other
    exception. All tasks run to completion even when some fail. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** Like {!try_map} but returns the plain results.
    @raise Fom_check.Checker.Invalid with every failed task's
    diagnostics if any task raised. *)

val map_reduce :
  t -> f:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce pool ~f ~reduce ~init tasks] maps in parallel and
    folds the results sequentially in task order, so the reduction is
    deterministic even when [reduce] is not commutative. *)
