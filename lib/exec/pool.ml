module Checker = Fom_check.Checker
module Diagnostic = Fom_check.Diagnostic

(* Jobs enqueued on the pool are pre-wrapped chunk closures that never
   raise: every per-task exception is captured into the caller's
   result array before the chunk closure returns. *)
type t = {
  jobs : int;
  mutex : Mutex.t;
  work : (unit -> unit) Queue.t;
  work_ready : Condition.t;  (* new work was enqueued, or shutdown *)
  progress : Condition.t;  (* some map call completed all its chunks *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let recommended_domain_count () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "FOM_JOBS" with
  | None -> recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some jobs when jobs >= 1 -> jobs
      | Some _ | None ->
          Checker.ensure ~code:"FOM-E001" ~path:"exec.FOM_JOBS" false
            "FOM_JOBS must be a positive integer";
          1)

let resolve_jobs ?requested () =
  match requested with
  | None -> (default_jobs (), [])
  | Some jobs ->
      Checker.ensure ~code:"FOM-E001" ~path:"exec.jobs" (jobs >= 1)
        "worker count must be at least 1";
      let recommended = recommended_domain_count () in
      let warnings =
        if jobs > recommended then
          [
            Diagnostic.make ~severity:Diagnostic.Warning ~code:"FOM-E004"
              ~path:"exec.jobs"
              (Printf.sprintf
                 "%d worker domains oversubscribe this machine (%d recommended); the \
                  sweep stays deterministic but expect no further speedup"
                 jobs recommended);
          ]
        else []
      in
      (jobs, warnings)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.work && not t.stopped do
    Condition.wait t.work_ready t.mutex
  done;
  match Queue.take_opt t.work with
  | None ->
      (* Stopped with an empty queue: the domain retires. *)
      Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      job ();
      worker_loop t

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  Checker.ensure ~code:"FOM-E001" ~path:"exec.jobs" (jobs >= 1)
    "worker count must be at least 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Queue.create ();
      work_ready = Condition.create ();
      progress = Condition.create ();
      stopped = false;
      workers = [];
    }
  in
  (* The calling domain is worker 0; only the remaining jobs - 1 run
     as spawned domains. *)
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run every chunk closure, helping from the calling domain: enqueue
   the chunks, then keep draining the shared queue until this call's
   chunks have all completed. Draining *any* queued chunk (possibly
   one belonging to a map issued by a task of this very pool) is what
   makes nested maps deadlock-free: a waiting caller never sleeps
   while runnable work exists. *)
let run_chunks t chunks =
  let n_chunks = Array.length chunks in
  let remaining = ref n_chunks in
  let wrap chunk () =
    chunk ();
    Mutex.lock t.mutex;
    decr remaining;
    if !remaining = 0 then Condition.broadcast t.progress;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    Checker.ensure ~code:"FOM-E003" ~path:"exec.map" false
      "pool was used after shutdown"
  end;
  Array.iter (fun chunk -> Queue.add (wrap chunk) t.work) chunks;
  Condition.broadcast t.work_ready;
  let rec drive () =
    if !remaining > 0 then
      match Queue.take_opt t.work with
      | Some job ->
          Mutex.unlock t.mutex;
          job ();
          Mutex.lock t.mutex;
          drive ()
      | None ->
          Condition.wait t.progress t.mutex;
          drive ()
  in
  drive ();
  Mutex.unlock t.mutex

(* Re-root a failed task's own diagnostics under its task index so a
   batch report says which task produced which problem. *)
let reroot index ds =
  List.map
    (fun (d : Diagnostic.t) ->
      Diagnostic.make ~severity:d.Diagnostic.severity ~code:d.Diagnostic.code
        ~path:(Printf.sprintf "exec.task[%d].%s" index d.Diagnostic.path)
        d.Diagnostic.message)
    ds

let capture ~f ~results items index =
  results.(index) <-
    (match f items.(index) with
    | v -> Ok v
    | exception Checker.Invalid ds -> Error (reroot index ds)
    | exception exn ->
        Error
          [
            Diagnostic.make ~code:"FOM-E002"
              ~path:(Printf.sprintf "exec.task[%d]" index)
              (Printexc.to_string exn);
          ])

let try_map (type b) t ~(f : _ -> b) items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results : (b, Diagnostic.t list) result array =
    Array.make n (Error [])
  in
  (if t.jobs = 1 || n <= 1 then
     for index = 0 to n - 1 do
       capture ~f ~results items index
     done
   else begin
     (* Contiguous chunks, a few per worker so that uneven task costs
        (large IW windows, memory-bound benchmarks) still balance
        without per-task queue traffic. *)
     let n_chunks = Stdlib.min n (t.jobs * 4) in
     let chunk c () =
       let lo = c * n / n_chunks and hi = (c + 1) * n / n_chunks in
       for index = lo to hi - 1 do
         capture ~f ~results items index
       done
     in
     run_chunks t (Array.init n_chunks chunk)
   end);
  Array.to_list results

let map t ~f items =
  let results = try_map t ~f items in
  let failures =
    List.concat_map (function Error ds -> ds | Ok _ -> []) results
  in
  if failures <> [] then raise (Checker.Invalid failures);
  List.map
    (function
      | Ok v -> v
      | Error _ -> Checker.internal_error "failed task survived the failure check")
    results

let map_reduce t ~f ~reduce ~init items =
  List.fold_left reduce init (map t ~f items)
