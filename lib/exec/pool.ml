module Checker = Fom_check.Checker
module Diagnostic = Fom_check.Diagnostic

(* Observability (no-ops unless an Fom_obs sink is enabled): scheduler
   balance counters, a steal-time victim-depth histogram, and a span
   around every task body so a trace shows which domain ran what. *)
let m_tasks = Fom_obs.Metrics.counter "pool.tasks"
let m_steals = Fom_obs.Metrics.counter "pool.steals"
let m_stolen = Fom_obs.Metrics.counter "pool.stolen_tasks"
let m_helps = Fom_obs.Metrics.counter "pool.helps"
let m_idle = Fom_obs.Metrics.counter "pool.idle_waits"
let h_victim_depth = Fom_obs.Metrics.histogram "pool.steal_victim_depth"
let g_domains = Fom_obs.Metrics.gauge "pool.domains"
let g_jobs = Fom_obs.Metrics.gauge "pool.jobs"
let s_task = Fom_obs.Span.id "pool.task"

let run_task task =
  Fom_obs.Metrics.incr m_tasks;
  Fom_obs.Span.with_ s_task task

(* Tasks scheduled on the pool are pre-wrapped closures that never
   raise: every per-task exception is captured into the caller's
   result array before the closure returns. *)

(* A growable ring-buffer deque of tasks. The owning worker pushes and
   pops at the back (depth-first: a nested map's subtasks run before
   the tasks that spawned them), thieves take from the front (the
   oldest work, which tends to be the largest remaining slice of a
   batch). All deques are guarded by the pool's single mutex — tasks
   here are detailed simulations and IW-curve points costing
   milliseconds to seconds, so lock traffic is noise; the deque
   structure is about *placement* (locality and steal-half balancing),
   not lock-freedom. *)
module Deque = struct
  type t = {
    mutable buf : (unit -> unit) array;
    mutable head : int;  (* index of the front element *)
    mutable len : int;
  }

  let nop () = ()
  let create () = { buf = Array.make 64 nop; head = 0; len = 0 }
  let length d = d.len

  let grow d =
    let cap = Array.length d.buf in
    let buf = Array.make (2 * cap) nop in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d task =
    if d.len = Array.length d.buf then grow d;
    let cap = Array.length d.buf in
    d.buf.((d.head + d.len) mod cap) <- task;
    d.len <- d.len + 1

  let pop_back d =
    let cap = Array.length d.buf in
    let i = (d.head + d.len - 1) mod cap in
    let task = d.buf.(i) in
    d.buf.(i) <- nop;
    d.len <- d.len - 1;
    task

  let pop_front d =
    let task = d.buf.(d.head) in
    d.buf.(d.head) <- nop;
    d.head <- (d.head + 1) mod Array.length d.buf;
    d.len <- d.len - 1;
    task
end

type t = {
  jobs : int;  (* advertised parallelism (the --jobs request) *)
  mutex : Mutex.t;  (* guards deques, slots, stopped *)
  deques : Deque.t array;  (* one per participating domain *)
  slots : (int, int) Hashtbl.t;  (* domain id -> deque slot *)
  activity : Condition.t;  (* work arrived, a batch completed, or shutdown *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let recommended_domain_count () = Domain.recommended_domain_count ()

(* The FOM_JOBS environment variable, parsed but not validated: [None]
   when unset or blank, [Some (Ok jobs)] for a positive integer,
   [Some (Error d)] with a FOM-E001 diagnostic otherwise. *)
let env_jobs () =
  match Sys.getenv_opt "FOM_JOBS" with
  | None -> None
  | Some s -> (
      match String.trim s with
      | "" -> None
      | trimmed -> (
          match int_of_string_opt trimmed with
          | Some jobs when jobs >= 1 -> Some (Ok jobs)
          | Some _ | None ->
              Some
                (Error
                   (Diagnostic.make ~code:"FOM-E001" ~path:"exec.FOM_JOBS"
                      (Printf.sprintf
                         "FOM_JOBS=%S is not a positive integer; set a worker count of 1 \
                          or more (or unset it to use the machine's core count)"
                         s)))))

let default_jobs () =
  match env_jobs () with
  | None -> recommended_domain_count ()
  | Some (Ok jobs) -> jobs
  | Some (Error d) -> raise (Checker.Invalid [ d ])

let oversubscription_warning jobs =
  let recommended = recommended_domain_count () in
  if jobs > recommended then
    [
      Diagnostic.make ~severity:Diagnostic.Warning ~code:"FOM-E004" ~path:"exec.jobs"
        (Printf.sprintf
           "%d worker domains oversubscribe this machine (%d recommended); the \
            pool caps the domains it actually runs at the recommended count, so \
            results are unchanged but expect no further speedup"
           jobs recommended);
    ]
  else []

(* Harness-facing resolution: never raises. An invalid request — an
   explicit non-positive [?requested] count or a malformed/non-positive
   FOM_JOBS — yields a safe sequential fallback of 1 worker alongside
   an error-severity FOM-E001 diagnostic, so `fom check` folds it into
   its report (and exits 1) and the bench prints it and aborts, instead
   of the old behavior of an uncaught exception mid-startup. *)
let resolve_jobs ?requested () =
  match requested with
  | None -> (
      match env_jobs () with
      | None -> (recommended_domain_count (), [])
      | Some (Ok jobs) -> (jobs, oversubscription_warning jobs)
      | Some (Error d) -> (1, [ d ]))
  | Some jobs ->
      if jobs < 1 then
        ( 1,
          [
            Diagnostic.make ~code:"FOM-E001" ~path:"exec.jobs"
              (Printf.sprintf "requested worker count %d is not a positive integer" jobs);
          ] )
      else (jobs, oversubscription_warning jobs)

let self_id () = (Domain.self () :> int)

(* The slot (deque index) the current domain owns, if it is a
   registered participant of this pool. Nested maps and memo helpers
   always run on registered domains; an unregistered domain (some
   foreign domain calling into a pool it did not create) simply
   schedules onto deque 0 and steals rather than owning a deque. *)
let slot_of_current t = Hashtbl.find_opt t.slots (self_id ())

(* Take one runnable task, preferring the back of the caller's own
   deque, else stealing from the longest other deque. A thief moves
   half of the victim's front (oldest first) — one task to run now,
   the rest onto its own deque where they are in turn stealable — so
   an imbalanced batch spreads geometrically instead of one task at a
   time. Caller must hold [t.mutex]. *)
let take_for t slot =
  let own =
    match slot with
    | Some s when Deque.length t.deques.(s) > 0 -> Some (Deque.pop_back t.deques.(s))
    | Some _ | None -> None
  in
  match own with
  | Some _ as task -> task
  | None ->
      let victim = ref (-1) and best = ref 0 in
      Array.iteri
        (fun i d ->
          let len = Deque.length d in
          if len > !best then begin
            victim := i;
            best := len
          end)
        t.deques;
      if !victim < 0 then None
      else begin
        let v = t.deques.(!victim) in
        let task = Deque.pop_front v in
        Fom_obs.Metrics.incr m_steals;
        Fom_obs.Metrics.observe h_victim_depth !best;
        (match slot with
        | Some s when s <> !victim ->
            (* steal-half: the first stolen task runs immediately, the
               rest land on the thief's deque. *)
            let half = (!best + 1) / 2 in
            Fom_obs.Metrics.add m_stolen half;
            for _ = 2 to half do
              Deque.push_back t.deques.(s) (Deque.pop_front v)
            done
        | Some _ | None -> Fom_obs.Metrics.incr m_stolen);
        Some task
      end

let rec worker_loop t slot =
  Mutex.lock t.mutex;
  let rec next () =
    match take_for t (Some slot) with
    | Some task ->
        Mutex.unlock t.mutex;
        run_task task;
        worker_loop t slot
    | None ->
        if t.stopped then Mutex.unlock t.mutex
        else begin
          Fom_obs.Metrics.incr m_idle;
          Condition.wait t.activity t.mutex;
          next ()
        end
  in
  next ()

let create ?jobs ?domains () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  Checker.ensure ~code:"FOM-E001" ~path:"exec.jobs" (jobs >= 1)
    "worker count must be at least 1";
  (* Run at most the recommended number of domains: extra domains on a
     saturated machine only add stop-the-world GC synchronization and
     timeslice thrash (the classic ~0.5x "speedup" of oversubscribed
     OCaml 5 pools). The advertised [jobs] is preserved — callers gate
     parallel code paths on it — while [?domains] lets tests force
     true multi-domain execution even on a single-core machine. *)
  let domains =
    match domains with
    | Some d ->
        Checker.ensure ~code:"FOM-E001" ~path:"exec.domains" (d >= 1)
          "domain count must be at least 1";
        d
    | None -> Stdlib.max 1 (Stdlib.min jobs (recommended_domain_count ()))
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      deques = Array.init domains (fun _ -> Deque.create ());
      slots = Hashtbl.create 8;
      activity = Condition.create ();
      stopped = false;
      workers = [];
    }
  in
  Fom_obs.Metrics.set g_domains domains;
  Fom_obs.Metrics.set g_jobs jobs;
  (* The creating domain is participant 0; only the remaining
     domains - 1 run as spawned domains. *)
  Hashtbl.replace t.slots (self_id ()) 0;
  t.workers <-
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () ->
            let slot = i + 1 in
            Mutex.lock t.mutex;
            Hashtbl.replace t.slots (self_id ()) slot;
            Mutex.unlock t.mutex;
            worker_loop t slot));
  t

let jobs t = t.jobs
let domains t = Array.length t.deques

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.activity;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?jobs ?domains f =
  let t = create ?jobs ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run one pending task from anywhere in the pool, if there is one.
   This is how a domain blocked on something other than the pool (a
   Memo future, say) stays useful instead of sleeping. *)
let help t =
  Mutex.lock t.mutex;
  match take_for t (slot_of_current t) with
  | Some task ->
      Mutex.unlock t.mutex;
      Fom_obs.Metrics.incr m_helps;
      run_task task;
      true
  | None ->
      Mutex.unlock t.mutex;
      false

(* Schedule every task and drive from the calling domain: push the
   batch onto the caller's own deque, then keep taking tasks — its own
   first, stolen ones otherwise — until this batch has completed.
   Running *any* available task (possibly one belonging to a map
   issued by a task of this very pool) is what makes nested maps
   deadlock-free: a waiting caller never sleeps while runnable work
   exists. *)
let run_tasks t tasks =
  let n_tasks = Array.length tasks in
  let remaining = ref n_tasks in
  let wrap task () =
    task ();
    Mutex.lock t.mutex;
    decr remaining;
    if !remaining = 0 then Condition.broadcast t.activity;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    Checker.ensure ~code:"FOM-E003" ~path:"exec.map" false
      "pool was used after shutdown"
  end;
  let slot = slot_of_current t in
  let dest = t.deques.(match slot with Some s -> s | None -> 0) in
  Array.iter (fun task -> Deque.push_back dest (wrap task)) tasks;
  Condition.broadcast t.activity;
  let rec drive () =
    if !remaining > 0 then
      match take_for t slot with
      | Some task ->
          Mutex.unlock t.mutex;
          run_task task;
          Mutex.lock t.mutex;
          drive ()
      | None ->
          (* Tasks of this batch are still running on other domains
             (or will complete maps that broadcast [activity]). *)
          Condition.wait t.activity t.mutex;
          drive ()
  in
  drive ();
  Mutex.unlock t.mutex

(* Re-root a failed task's own diagnostics under its task index so a
   batch report says which task produced which problem. *)
let reroot index ds =
  List.map
    (fun (d : Diagnostic.t) ->
      Diagnostic.make ~severity:d.Diagnostic.severity ~code:d.Diagnostic.code
        ~path:(Printf.sprintf "exec.task[%d].%s" index d.Diagnostic.path)
        d.Diagnostic.message)
    ds

let capture ~f ~results items index =
  results.(index) <-
    (match f items.(index) with
    | v -> Ok v
    | exception Checker.Invalid ds -> Error (reroot index ds)
    | exception exn ->
        Error
          [
            Diagnostic.make ~code:"FOM-E002"
              ~path:(Printf.sprintf "exec.task[%d]" index)
              (Printexc.to_string exn);
          ])

let try_map (type b) t ~(f : _ -> b) items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results : (b, Diagnostic.t list) result array =
    Array.make n (Error [])
  in
  (if n <= 1 || domains t = 1 then begin
     (* A single participating domain runs the batch inline: exactly
        what driving the deque would do, without the scheduling. The
        shutdown contract still holds. *)
     Mutex.lock t.mutex;
     let stopped = t.stopped in
     Mutex.unlock t.mutex;
     if stopped then
       Checker.ensure ~code:"FOM-E003" ~path:"exec.map" false
         "pool was used after shutdown";
     for index = 0 to n - 1 do
       run_task (fun () -> capture ~f ~results items index)
     done
   end
   else
     (* One task per item — per-(variant, benchmark) sims and
        per-window IW points are each independently stealable, so one
        slow benchmark no longer serializes a whole chunk. Results are
        delivered by index, so task order is preserved no matter which
        domain ran what: [jobs = 1] stays bit-identical to
        [jobs = N]. *)
     run_tasks t (Array.init n (fun index () -> capture ~f ~results items index)));
  Array.to_list results

let map t ~f items =
  let results = try_map t ~f items in
  let failures =
    List.concat_map (function Error ds -> ds | Ok _ -> []) results
  in
  if failures <> [] then raise (Checker.Invalid failures);
  List.map
    (function
      | Ok v -> v
      | Error _ -> Checker.internal_error "failed task survived the failure check")
    results

let map_reduce t ~f ~reduce ~init items =
  List.fold_left reduce init (map t ~f items)
