module Diagnostic = Fom_check.Diagnostic

(* Bump whenever a change to the simulator, analysis kernels or the
   cached value types can alter cached results: the version is folded
   into every digest, so old entries simply stop matching (and are
   reported FOM-E007 when their file is revisited). *)
let code_version = "fom-cache/1:2026-08"

(* Observability (no-ops unless an Fom_obs sink is enabled). Byte
   counters track what actually crossed the filesystem boundary:
   [cache.bytes_read] whole entry files deserialized on a hit,
   [cache.bytes_written] marshaled entries persisted on a miss. *)
let m_hits = Fom_obs.Metrics.counter "cache.hits"
let m_misses = Fom_obs.Metrics.counter "cache.misses"
let m_bytes_read = Fom_obs.Metrics.counter "cache.bytes_read"
let m_bytes_written = Fom_obs.Metrics.counter "cache.bytes_written"
let h_entry_bytes = Fom_obs.Metrics.histogram "cache.entry_bytes"
let s_read = Fom_obs.Span.id "cache.read"
let s_write = Fom_obs.Span.id "cache.write"

type t = {
  dir : string;
  lock : Mutex.t;  (* guards diagnostics and counters *)
  mutable diags : Diagnostic.t list;
  mutable hits : int;
  mutable misses : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()  (* lost a creation race *)
  end

let create ~dir =
  mkdir_p dir;
  Fom_check.Checker.ensure ~code:"FOM-E006" ~path:"exec.cache.dir"
    (Sys.file_exists dir && Sys.is_directory dir)
    "cache directory could not be created";
  { dir; lock = Mutex.create (); diags = []; hits = 0; misses = 0 }

let dir t = t.dir

(* A key part from any marshalable value: configurations here are
   plain records and variants (no closures), and [Marshal] of an
   immutable value is deterministic, so the bytes canonically describe
   the configuration content. A representation change from editing the
   types shows up as a different digest — a miss, never a wrong
   hit. *)
let part v = Marshal.to_string v []

let digest parts =
  Digest.to_hex (Digest.string (String.concat "\x00" (code_version :: parts)))

let entry_path t ~key = Filename.concat t.dir (key ^ ".fomc")

let add_diag t d =
  Mutex.lock t.lock;
  t.diags <- d :: t.diags;
  Mutex.unlock t.lock

let bump t outcome =
  Mutex.lock t.lock;
  (match outcome with
  | `Hit ->
      t.hits <- t.hits + 1;
      Fom_obs.Metrics.incr m_hits
  | `Miss ->
      t.misses <- t.misses + 1;
      Fom_obs.Metrics.incr m_misses);
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let r = (t.hits, t.misses) in
  Mutex.unlock t.lock;
  r

let drain_diagnostics t =
  Mutex.lock t.lock;
  let ds = List.rev t.diags in
  t.diags <- [];
  Mutex.unlock t.lock;
  ds

let warn ~code ~path message = Diagnostic.make ~severity:Diagnostic.Warning ~code ~path message

let remove_entry path = try Sys.remove path with Sys_error _ -> ()

(* An entry is the pair (header, value) marshaled together, where the
   header is "<code_version>:<key>". The header is checked before the
   value is touched: a mismatch means the entry was written by another
   code version (or a colliding key) and is discarded as stale rather
   than unsafely interpreted. *)
let read t path ~key =
  if not (Sys.file_exists path) then None
  else
    let expected = code_version ^ ":" ^ key in
    match
      Fom_obs.Span.with_ s_read (fun () ->
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let bytes = in_channel_length ic in
              Fom_obs.Metrics.add m_bytes_read bytes;
              Fom_obs.Metrics.observe h_entry_bytes bytes;
              (Marshal.from_channel ic : string * _)))
    with
    | header, value when String.equal header expected -> Some value
    | _, _ ->
        add_diag t
          (warn ~code:"FOM-E007" ~path:("exec.cache." ^ key)
             (Printf.sprintf
                "stale cache entry %s (written by another code version); recomputing" path));
        remove_entry path;
        None
    | exception exn ->
        add_diag t
          (warn ~code:"FOM-E006" ~path:("exec.cache." ^ key)
             (Printf.sprintf "corrupt cache entry %s (%s); recomputing" path
                (Printexc.to_string exn)));
        remove_entry path;
        None

(* Write via a temp file + rename so concurrent runs sharing a cache
   directory never observe a torn entry; a failed write degrades to a
   warning, never a crash — the value was computed either way. *)
let write t path ~key value =
  match
    Fom_obs.Span.with_ s_write (fun () ->
        let data = Marshal.to_string (code_version ^ ":" ^ key, value) [] in
        Fom_obs.Metrics.add m_bytes_written (String.length data);
        Fom_obs.Metrics.observe h_entry_bytes (String.length data);
        let tmp = Filename.temp_file ~temp_dir:t.dir "entry" ".tmp" in
        let oc = open_out_bin tmp in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data);
        Sys.rename tmp path)
  with
  | () -> ()
  | exception exn ->
      add_diag t
        (warn ~code:"FOM-E006" ~path:("exec.cache." ^ key)
           (Printf.sprintf "could not persist cache entry %s (%s)" path
              (Printexc.to_string exn)))

let get t ~key compute =
  let path = entry_path t ~key in
  match read t path ~key with
  | Some value ->
      bump t `Hit;
      value
  | None ->
      let value = compute () in
      bump t `Miss;
      write t path ~key value;
      value
