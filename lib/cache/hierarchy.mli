(** Two-level cache hierarchy: split L1 I/D over a unified L2.

    Classifies each access by the level that serves it — exactly the
    paper's taxonomy. For data: an L1 hit is free, an L1-miss/L2-hit is
    a *short miss* (serviced like a long-latency functional unit), an
    L2 miss is a *long miss* (stalls retirement via the full ROB). For
    instructions: an L1I miss stalls fetch for the L2 latency, an L2
    miss for the memory latency.

    Every level can be idealized independently, which yields the five
    simulation configurations of the paper's Figure 2 experiment and
    the single-level 128 KiB setup of Figure 14. *)

type outcome =
  | L1_hit
  | L2_hit  (** data: a short miss *)
  | Memory  (** data: a long miss *)

type level = Ideal  (** never misses *) | Real of Geometry.t

type l2_level =
  | Ideal_l2  (** every L1 miss hits L2 (short) *)
  | Real_l2 of Geometry.t
  | No_l2  (** every L1 miss goes to memory (long) *)

type latencies = {
  l1 : int;  (** load-use latency on an L1 hit *)
  l2 : int;  (** delay to fill from L2 (paper: 8) *)
  memory : int;  (** delay to fill from memory (paper: 200) *)
}

type config = {
  l1i : level;
  l1d : level;
  l2 : l2_level;
  latencies : latencies;
}

val baseline : config
(** The paper's baseline: real 4 KiB 4-way L1s, real 512 KiB 4-way L2,
    latencies 1 / 8 / 200. *)

val all_ideal : config
(** Both L1s ideal (the L2 is never consulted). *)

val ideal_except_l1i : config
(** Only the instruction cache is real (Figure 2 configuration 4 and
    the Figure 11 experiment). *)

val ideal_except_data : config
(** Only the data side is real (Figure 2 configuration 5). *)

val fig14 : config
(** Figure 14's setup: a 128 KiB L1D with no L2 (every miss is long,
    200 cycles); instruction side ideal. *)

val diagnostics : config -> Fom_check.Diagnostic.t list
(** [FOM-M010]/[FOM-M015] diagnostics: geometry of each real level and
    the L1 <= L2 <= memory latency ordering. *)

type t

val create : config -> t
val config : t -> config

val access_inst : t -> int -> outcome
(** Probe/fill the instruction path with a line address. *)

val access_data : t -> int -> outcome
(** Probe/fill the data path with a byte address. *)

val data_latency : t -> outcome -> int
(** Load-use latency for a data access with the given outcome. *)

val inst_stall : t -> outcome -> int
(** Extra fetch-stall cycles for an instruction access: 0 for an L1
    hit, [l2] for an L2 hit, [memory] for an L2 miss. *)

type stats = {
  inst_accesses : int;
  l1i_misses : int;
  l2i_misses : int;  (** instruction fetches that went to memory *)
  data_accesses : int;
  short_misses : int;  (** L1D misses that hit L2 *)
  long_misses : int;  (** L2 data misses *)
}

val stats : t -> stats
val reset_stats : t -> unit
