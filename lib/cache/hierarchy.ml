type outcome = L1_hit | L2_hit | Memory

type level = Ideal | Real of Geometry.t
type l2_level = Ideal_l2 | Real_l2 of Geometry.t | No_l2

type latencies = { l1 : int; l2 : int; memory : int }

type config = { l1i : level; l1d : level; l2 : l2_level; latencies : latencies }

let baseline_latencies = { l1 = 1; l2 = 8; memory = 200 }

let baseline =
  {
    l1i = Real Geometry.l1_baseline;
    l1d = Real Geometry.l1_baseline;
    l2 = Real_l2 Geometry.l2_baseline;
    latencies = baseline_latencies;
  }

let all_ideal = { baseline with l1i = Ideal; l1d = Ideal }
let ideal_except_l1i = { baseline with l1d = Ideal; l2 = Ideal_l2 }
let ideal_except_data = { baseline with l1i = Ideal }

let fig14 =
  {
    l1i = Ideal;
    l1d = Real (Geometry.make ~size:(128 * 1024) ~assoc:4 ~line:128);
    l2 = No_l2;
    latencies = baseline_latencies;
  }

type stats = {
  inst_accesses : int;
  l1i_misses : int;
  l2i_misses : int;
  data_accesses : int;
  short_misses : int;
  long_misses : int;
}

type t = {
  config : config;
  l1i : Sa_cache.t option;
  l1d : Sa_cache.t option;
  l2 : Sa_cache.t option;
  mutable s : stats;
}

let zero_stats =
  {
    inst_accesses = 0;
    l1i_misses = 0;
    l2i_misses = 0;
    data_accesses = 0;
    short_misses = 0;
    long_misses = 0;
  }

let diagnostics (config : config) =
  let module C = Fom_check.Checker in
  let level path = function Ideal -> C.ok | Real g -> Geometry.diagnostics ~path g in
  C.all
    [
      level "cache.l1i" config.l1i;
      level "cache.l1d" config.l1d;
      (match config.l2 with
      | Ideal_l2 | No_l2 -> C.ok
      | Real_l2 g -> Geometry.diagnostics ~path:"cache.l2" g);
      C.min_int ~code:"FOM-M015" ~path:"cache.latencies.l1" ~min:0 config.latencies.l1;
      C.check ~code:"FOM-M015" ~path:"cache.latencies.l2"
        (config.latencies.l2 >= config.latencies.l1)
        (Printf.sprintf "L2 latency (%d) must not be below L1 latency (%d)"
           config.latencies.l2 config.latencies.l1);
      C.check ~code:"FOM-M015" ~path:"cache.latencies.memory"
        (config.latencies.memory >= config.latencies.l2)
        (Printf.sprintf "memory latency (%d) must not be below L2 latency (%d)"
           config.latencies.memory config.latencies.l2);
    ]

let create (config : config) =
  Fom_check.Checker.run_exn (diagnostics config);
  let level = function Ideal -> None | Real g -> Some (Sa_cache.create g) in
  let l2 =
    match config.l2 with
    | Ideal_l2 | No_l2 -> None
    | Real_l2 g -> Some (Sa_cache.create g)
  in
  { config; l1i = level config.l1i; l1d = level config.l1d; l2; s = zero_stats }

let config t = t.config

let beyond_l1 t addr =
  match (t.config.l2, t.l2) with
  | Ideal_l2, _ -> L2_hit
  | No_l2, _ -> Memory
  | Real_l2 _, Some l2 -> if Sa_cache.access l2 addr then L2_hit else Memory
  | Real_l2 _, None -> Fom_check.Checker.internal_error "real L2 configured without a cache"

let access_inst t addr =
  let outcome =
    match t.l1i with
    | None -> L1_hit
    | Some l1 -> if Sa_cache.access l1 addr then L1_hit else beyond_l1 t addr
  in
  t.s <-
    {
      t.s with
      inst_accesses = t.s.inst_accesses + 1;
      l1i_misses = (t.s.l1i_misses + match outcome with L1_hit -> 0 | L2_hit | Memory -> 1);
      l2i_misses = (t.s.l2i_misses + match outcome with Memory -> 1 | L1_hit | L2_hit -> 0);
    };
  outcome

let access_data t addr =
  let outcome =
    match t.l1d with
    | None -> L1_hit
    | Some l1 -> if Sa_cache.access l1 addr then L1_hit else beyond_l1 t addr
  in
  t.s <-
    {
      t.s with
      data_accesses = t.s.data_accesses + 1;
      short_misses = (t.s.short_misses + match outcome with L2_hit -> 1 | L1_hit | Memory -> 0);
      long_misses = (t.s.long_misses + match outcome with Memory -> 1 | L1_hit | L2_hit -> 0);
    };
  outcome

let data_latency t = function
  | L1_hit -> t.config.latencies.l1
  | L2_hit -> t.config.latencies.l2
  | Memory -> t.config.latencies.memory

let inst_stall t = function
  | L1_hit -> 0
  | L2_hit -> t.config.latencies.l2
  | Memory -> t.config.latencies.memory

let stats t = t.s
let reset_stats t = t.s <- zero_stats
