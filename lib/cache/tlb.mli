(** Data-TLB model.

    The paper's future-work list (Section 7) notes that TLB misses
    act much like long data-cache misses: the walk blocks retirement
    and its penalty adds as another miss-event class. This module
    provides the substrate — a fully-associative LRU translation
    cache over pages; the walk latency lives in the spec so the
    simulator, the profiler and the model agree on it. *)

type spec = {
  entries : int;  (** translations held (power of two) *)
  page_bits : int;  (** log2 of the page size *)
  walk_latency : int;  (** page-table walk delay in cycles *)
}

val default_spec : spec
(** 64 entries, 8 KiB pages, 30-cycle walk. *)

val diagnostics : spec -> Fom_check.Diagnostic.t list
(** [FOM-M011] diagnostics for a malformed spec. *)

type t

val create : spec -> t
val spec : t -> spec

val access : t -> int -> bool
(** [access t addr] translates; [false] means a TLB miss (the entry is
    filled, evicting the LRU translation). *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
