type t = { size : int; assoc : int; line : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let diagnostics ?(path = "cache.geometry") t =
  let module C = Fom_check.Checker in
  C.all
    [
      C.min_int ~code:"FOM-M010" ~path:(path ^ ".size") ~min:1 t.size;
      C.min_int ~code:"FOM-M010" ~path:(path ^ ".assoc") ~min:1 t.assoc;
      C.min_int ~code:"FOM-M010" ~path:(path ^ ".line") ~min:1 t.line;
      (if t.size > 0 && t.assoc > 0 && t.line > 0 then
         C.all
           [
             C.check ~code:"FOM-M010" ~path:(path ^ ".line") (is_power_of_two t.line)
               (Printf.sprintf "line size must be a power of two, got %d" t.line);
             C.check ~code:"FOM-M010" ~path:(path ^ ".size")
               (t.size mod (t.assoc * t.line) = 0)
               (Printf.sprintf "size %d must be a multiple of assoc * line = %d" t.size
                  (t.assoc * t.line));
             C.check ~code:"FOM-M010" ~path:(path ^ ".size")
               (t.size mod (t.assoc * t.line) = 0
               && is_power_of_two (t.size / (t.assoc * t.line)))
               (Printf.sprintf "set count must be a power of two, got %d"
                  (t.size / (t.assoc * t.line)));
           ]
       else C.ok);
    ]

let make ~size ~assoc ~line =
  let t = { size; assoc; line } in
  Fom_check.Checker.run_exn (diagnostics t);
  t

let sets t = t.size / (t.assoc * t.line)
let lines t = t.size / t.line
let line_address t addr = addr land lnot (t.line - 1)
let set_index t addr = addr / t.line land (sets t - 1)
let tag t addr = addr / t.line / sets t

let l1_baseline = make ~size:4096 ~assoc:4 ~line:128
let l2_baseline = make ~size:(512 * 1024) ~assoc:4 ~line:128

let pp fmt t =
  Format.fprintf fmt "%dB/%d-way/%dB-line (%d sets)" t.size t.assoc t.line (sets t)
