type spec = { entries : int; page_bits : int; walk_latency : int }

let default_spec = { entries = 64; page_bits = 13; walk_latency = 30 }

type t = { spec : spec; cache : Sa_cache.t }

let diagnostics spec =
  let module C = Fom_check.Checker in
  C.all
    [
      C.check ~code:"FOM-M011" ~path:"dtlb.entries"
        (spec.entries > 0 && spec.entries land (spec.entries - 1) = 0)
        (Printf.sprintf "entry count must be a positive power of two, got %d" spec.entries);
      C.min_int ~code:"FOM-M011" ~path:"dtlb.page_bits" ~min:6 spec.page_bits;
      C.min_int ~code:"FOM-M011" ~path:"dtlb.walk_latency" ~min:1 spec.walk_latency;
    ]

let create spec =
  Fom_check.Checker.run_exn (diagnostics spec);
  (* A fully-associative cache whose lines are pages is exactly a
     TLB. *)
  let page = 1 lsl spec.page_bits in
  let geometry = Geometry.make ~size:(spec.entries * page) ~assoc:spec.entries ~line:page in
  { spec; cache = Sa_cache.create geometry }

let spec t = t.spec
let access t addr = Sa_cache.access t.cache addr
let accesses t = Sa_cache.accesses t.cache
let misses t = Sa_cache.misses t.cache
let miss_rate t = Sa_cache.miss_rate t.cache
let reset_stats t = Sa_cache.reset_stats t.cache
