(** Cache geometry: capacity, associativity, line size.

    The paper's baseline uses 4 KiB 4-way L1 caches and a unified
    512 KiB 4-way L2, all with 128-byte lines. *)

type t = {
  size : int;  (** capacity in bytes *)
  assoc : int;  (** ways per set *)
  line : int;  (** line size in bytes (a power of two) *)
}

val make : size:int -> assoc:int -> line:int -> t
(** Checks that [line] is a power of two, that [size] is divisible by
    [assoc * line], and that all fields are positive; raises
    {!Fom_check.Checker.Invalid} with [FOM-M010] diagnostics
    otherwise. *)

val diagnostics : ?path:string -> t -> Fom_check.Diagnostic.t list
(** Collect every [FOM-M010] violation, prefixing context paths with
    [path] (default ["cache.geometry"]). *)

val sets : t -> int
(** Number of sets. *)

val lines : t -> int
(** Total number of lines. *)

val line_address : t -> int -> int
(** Byte address of the enclosing line. *)

val set_index : t -> int -> int
(** Set an address maps to. *)

val tag : t -> int -> int
(** Tag bits of an address. *)

val l1_baseline : t
(** 4 KiB, 4-way, 128-byte lines (paper baseline L1I and L1D). *)

val l2_baseline : t
(** 512 KiB, 4-way, 128-byte lines (paper baseline unified L2). *)

val pp : Format.formatter -> t -> unit
