type ctrl = { target : int; taken : bool }

type t = {
  index : int;
  pc : int;
  opclass : Opclass.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  deps : int array;
  mem : int option;
  ctrl : ctrl option;
}

(* Static messages: [make] runs once per generated instruction, so the
   happy path must not allocate. *)
let ensure = Fom_check.Checker.ensure ~code:"FOM-T120"

let make ~index ~pc ~opclass ?dst ?(srcs = []) ?(deps = [||]) ?mem ?ctrl () =
  ensure ~path:"instr.index" (index >= 0) "dynamic index must be non-negative";
  ensure ~path:"instr.srcs" (List.length srcs <= 2) "at most two source registers";
  ensure ~path:"instr.deps"
    (Array.for_all (fun d -> d >= 0 && d < index) deps)
    "dependences must name earlier instructions";
  ensure ~path:"instr.mem"
    (Opclass.is_memory opclass = Option.is_some mem)
    "memory operations, and only they, carry an address";
  ensure ~path:"instr.ctrl"
    (Opclass.is_control opclass = Option.is_some ctrl)
    "control operations, and only they, carry direction info";
  { index; pc; opclass; dst; srcs; deps; mem; ctrl }

let mem_exn t =
  match t.mem with
  | Some addr -> addr
  | None -> Fom_check.Checker.internal_error "instruction carries no memory address"

let ctrl_exn t =
  match t.ctrl with
  | Some c -> c
  | None -> Fom_check.Checker.internal_error "instruction carries no control info"

let is_load t = Opclass.equal t.opclass Opclass.Load
let is_store t = Opclass.equal t.opclass Opclass.Store
let is_branch t = Opclass.equal t.opclass Opclass.Branch
let is_control t = Opclass.is_control t.opclass

let pp fmt t =
  Format.fprintf fmt "#%d pc=0x%x %a" t.index t.pc Opclass.pp t.opclass;
  Option.iter (fun d -> Format.fprintf fmt " %a<-" Reg.pp d) t.dst;
  List.iter (fun s -> Format.fprintf fmt " %a" Reg.pp s) t.srcs;
  Option.iter (fun a -> Format.fprintf fmt " [0x%x]" a) t.mem;
  Option.iter
    (fun c -> Format.fprintf fmt " %s->0x%x" (if c.taken then "T" else "N") c.target)
    t.ctrl
