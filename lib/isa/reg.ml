type t = int

let count = 32

let of_int i =
  Fom_check.Checker.ensure ~code:"FOM-T121" ~path:"reg.of_int"
    (i >= 0 && i < count)
    "register index out of range";
  i

let to_int r = r
let zero_reg = 0
let is_zero r = r = 0
let pp fmt r = Format.fprintf fmt "r%d" r
let equal = Int.equal
