(** Functional-unit counts per operation class.

    The paper's machine has unbounded functional units; its Section 7
    lists limited FU counts as the first modeling extension — the mix
    determines the number of units needed to sustain the steady-state
    issue rate, or conversely a small unit count lowers the saturation
    level below the issue width. This type carries per-class counts
    for both the detailed simulator and the model extension. Units are
    fully pipelined: a unit accepts one instruction per cycle. *)

type t

val unbounded : t
(** No structural limits (the paper's baseline machine). *)

val make :
  ?alu:int -> ?mul:int -> ?div:int -> ?load:int -> ?store:int ->
  ?branch:int -> ?jump:int -> unit -> t
(** Build with limits for the given classes; omitted classes stay
    unbounded. All counts must be at least 1. *)

val diagnostics : t -> Fom_check.Diagnostic.t list
(** [FOM-M013] diagnostics for unit counts below one. *)

val of_class : t -> Opclass.t -> int
(** Units available for a class; [max_int] when unbounded. *)

val is_unbounded : t -> bool
