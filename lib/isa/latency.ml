type t = { alu : int; mul : int; div : int; load : int; store : int; branch : int; jump : int }

let diagnostics t =
  let module C = Fom_check.Checker in
  let field name v = C.min_int ~code:"FOM-M012" ~path:("latency." ^ name) ~min:1 v in
  C.all
    [
      field "alu" t.alu;
      field "mul" t.mul;
      field "div" t.div;
      field "load" t.load;
      field "store" t.store;
      field "branch" t.branch;
      field "jump" t.jump;
    ]

let check t =
  Fom_check.Checker.run_exn (diagnostics t);
  t

let default = check { alu = 1; mul = 3; div = 12; load = 1; store = 1; branch = 1; jump = 1 }
let unit = check { alu = 1; mul = 1; div = 1; load = 1; store = 1; branch = 1; jump = 1 }

let make ?(alu = default.alu) ?(mul = default.mul) ?(div = default.div)
    ?(load = default.load) ?(store = default.store) ?(branch = default.branch)
    ?(jump = default.jump) () =
  check { alu; mul; div; load; store; branch; jump }

let of_class t = function
  | Opclass.Alu -> t.alu
  | Opclass.Mul -> t.mul
  | Opclass.Div -> t.div
  | Opclass.Load -> t.load
  | Opclass.Store -> t.store
  | Opclass.Branch -> t.branch
  | Opclass.Jump -> t.jump

let table t =
  Array.init Opclass.count (fun tag -> of_class t (Opclass.of_int tag))

let average t weight =
  List.fold_left
    (fun acc cls -> acc +. (weight cls *. float_of_int (of_class t cls)))
    0.0 Opclass.all
