type t = Alu | Mul | Div | Load | Store | Branch | Jump

let all = [ Alu; Mul; Div; Load; Store; Branch; Jump ]
let count = 7

let to_int = function
  | Alu -> 0
  | Mul -> 1
  | Div -> 2
  | Load -> 3
  | Store -> 4
  | Branch -> 5
  | Jump -> 6

let of_int = function
  | 0 -> Alu
  | 1 -> Mul
  | 2 -> Div
  | 3 -> Load
  | 4 -> Store
  | 5 -> Branch
  | 6 -> Jump
  | _ -> Fom_check.Checker.internal_error "operation-class tag out of range"
let is_memory = function Load | Store -> true | Alu | Mul | Div | Branch | Jump -> false
let is_control = function Branch | Jump -> true | Alu | Mul | Div | Load | Store -> false

let to_string = function
  | Alu -> "alu"
  | Mul -> "mul"
  | Div -> "div"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Jump -> "jump"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
