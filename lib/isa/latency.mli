(** Execution latencies per operation class.

    A latency profile assigns each {!Opclass.t} a fixed functional-unit
    latency in cycles. Loads are assigned their cache-hit latency here;
    cache misses add delay on top (short misses behave like long-latency
    functional units, long misses stall retirement — paper Section 4.3).
    The [unit] profile (all ones) is used when measuring the
    implementation-independent IW characteristic (paper Section 3). *)

type t
(** An immutable latency profile. *)

val default : t
(** Realistic profile: alu/store/branch/jump 1, load 1 (L1 hit),
    mul 3, div 12. *)

val unit : t
(** All classes take one cycle — the paper's unit-latency IW setting. *)

val make :
  ?alu:int -> ?mul:int -> ?div:int -> ?load:int -> ?store:int ->
  ?branch:int -> ?jump:int -> unit -> t
(** Build a custom profile; omitted classes use the {!default} values.
    All latencies must be at least 1. *)

val diagnostics : t -> Fom_check.Diagnostic.t list
(** [FOM-M012] diagnostics for latencies below one cycle. *)

val of_class : t -> Opclass.t -> int
(** Latency of a class under this profile. *)

val table : t -> int array
(** The profile as a dense array indexed by {!Opclass.to_int} — the
    per-class latency table the simulation kernels index with an
    instruction's packed class tag. *)

val average : t -> (Opclass.t -> float) -> float
(** [average t weight] is the mix-weighted mean latency given a weight
    (fraction of dynamic instructions) per class. This is the [L] of the
    paper's Little's-law correction [I_L = I_1 / L]. *)
