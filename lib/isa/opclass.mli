(** Operation classes of the synthetic RISC-like ISA.

    The modeled machine has an unbounded number of functional units of
    each type (paper, Section 1), so an operation class only determines
    the execution latency and whether the instruction touches memory or
    redirects control. *)

type t =
  | Alu  (** single-cycle integer operation *)
  | Mul  (** integer multiply *)
  | Div  (** integer divide (long-latency) *)
  | Load  (** memory read; latency also depends on the data cache *)
  | Store  (** memory write *)
  | Branch  (** conditional branch *)
  | Jump  (** unconditional direct jump / call / return *)

val all : t list
(** Every class, in declaration order. *)

val count : int
(** [List.length all]; the size of a dense per-class table. *)

val to_int : t -> int
(** Dense tag in [[0, count)], following the declaration order of
    {!all}. Hot paths index per-class arrays with this instead of
    walking association lists. *)

val of_int : int -> t
(** Inverse of {!to_int}. Raises the internal [FOM-X001] diagnostic
    on an out-of-range tag. *)

val is_memory : t -> bool
(** Loads and stores. *)

val is_control : t -> bool
(** Branches and jumps. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
