type t = {
  alu : int;
  mul : int;
  div : int;
  load : int;
  store : int;
  branch : int;
  jump : int;
}

let unbounded =
  {
    alu = max_int;
    mul = max_int;
    div = max_int;
    load = max_int;
    store = max_int;
    branch = max_int;
    jump = max_int;
  }

let diagnostics t =
  let module C = Fom_check.Checker in
  let field name v = C.min_int ~code:"FOM-M013" ~path:("fu_limits." ^ name) ~min:1 v in
  C.all
    [
      field "alu" t.alu;
      field "mul" t.mul;
      field "div" t.div;
      field "load" t.load;
      field "store" t.store;
      field "branch" t.branch;
      field "jump" t.jump;
    ]

let make ?(alu = max_int) ?(mul = max_int) ?(div = max_int) ?(load = max_int)
    ?(store = max_int) ?(branch = max_int) ?(jump = max_int) () =
  let t = { alu; mul; div; load; store; branch; jump } in
  Fom_check.Checker.run_exn (diagnostics t);
  t

let of_class t = function
  | Opclass.Alu -> t.alu
  | Opclass.Mul -> t.mul
  | Opclass.Div -> t.div
  | Opclass.Load -> t.load
  | Opclass.Store -> t.store
  | Opclass.Branch -> t.branch
  | Opclass.Jump -> t.jump

let is_unbounded t = t = unbounded
