(** Dynamic instructions.

    A trace is a sequence of these records in program (commit) order.
    Register names encode true dependences; [mem] carries the effective
    address of memory operations; [ctrl] carries the resolved direction
    and target of control operations so that predictors and the timing
    simulator can replay them. *)

type ctrl = {
  target : int;  (** byte address of the taken-path successor *)
  taken : bool;  (** resolved direction (always true for jumps) *)
}

type t = {
  index : int;  (** dynamic sequence number, from 0 *)
  pc : int;  (** byte address of the static instruction *)
  opclass : Opclass.t;
  dst : Reg.t option;  (** destination register, if any *)
  srcs : Reg.t list;  (** source registers (at most 2) *)
  deps : int array;  (** dynamic indices of true (RAW) producers *)
  mem : int option;  (** effective byte address for loads/stores *)
  ctrl : ctrl option;  (** direction info for branches/jumps *)
}
(** [deps] is the ground truth used by the simulators and the trace
    analysis: the modeled processor renames registers, so only true
    dependences constrain issue, and with 32 architectural names a
    register-based reading of the trace could not express dependence
    distances beyond the register-reuse distance. [srcs] carries the
    producers' destination registers where they exist, for display. *)

val make :
  index:int -> pc:int -> opclass:Opclass.t -> ?dst:Reg.t ->
  ?srcs:Reg.t list -> ?deps:int array -> ?mem:int -> ?ctrl:ctrl -> unit -> t
(** Smart constructor; checks structural well-formedness (memory ops
    carry [mem], control ops carry [ctrl], at most two sources, all
    dependence indices strictly less than [index]) and raises
    {!Fom_check.Checker.Invalid} with a [FOM-T120] diagnostic on
    violation. *)

val mem_exn : t -> int
(** The effective address of a memory operation. Raises the internal
    [FOM-X001] diagnostic when called on a non-memory instruction —
    for consumers that have already matched on the opclass. *)

val ctrl_exn : t -> ctrl
(** The control record of a branch or jump; same convention as
    {!mem_exn}. *)

val is_load : t -> bool
val is_store : t -> bool
val is_branch : t -> bool
(** Conditional branches only. *)

val is_control : t -> bool
(** Branches and jumps. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering for debugging. *)
