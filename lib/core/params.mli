(** Microarchitecture parameters consumed by the model.

    A deliberately small record: the model needs only the sizes,
    widths and miss delays — not the detailed simulator's full
    configuration. *)

type t = {
  width : int;  (** [i]: fetch = dispatch = issue = retire width *)
  pipeline_depth : int;  (** front-end depth (the paper's delta-P) *)
  window_size : int;
  rob_size : int;
  short_delay : int;  (** L2 access delay (the paper's delta-I, 8) *)
  long_delay : int;  (** memory access delay (the paper's delta-D, 200) *)
  dtlb_walk : int;  (** page-walk delay for the TLB extension *)
  fetch_buffer : int;  (** fetch-buffer entries for the I-miss extension *)
}

val baseline : t
(** The paper's baseline machine: width 4, depth 5, window 48, ROB
    128, delays 8 and 200. *)

val check : t -> Fom_check.Diagnostic.t list
(** Collect every [FOM-Pxxx] violation: positivity of the sizes and
    delays, [window_size <= rob_size], [short_delay <= long_delay]. *)

val validate : t -> unit
(** Raise {!Fom_check.Checker.Invalid} with everything {!check}
    reports at error severity. *)
