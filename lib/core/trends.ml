module Iw = Iw_characteristic

let default_mispred_interval = 100

let clip_width iw width = { iw with Iw.issue_width = float_of_int width }

let default_iw = Iw.square_law

let interval_ipc iw ~window ~interval ~width ~depth =
  let iw = clip_width iw width in
  (Transient.interval iw ~window ~pipeline_depth:depth ~instructions:interval).Transient.ipc

let ipc_vs_depth ?(iw = default_iw) ?(window = 48) ?(interval = default_mispred_interval)
    ~widths ~depths () =
  List.map
    (fun width ->
      ( width,
        List.map (fun depth -> (depth, interval_ipc iw ~window ~interval ~width ~depth)) depths
      ))
    widths

let bips_vs_depth ?(iw = default_iw) ?(window = 48) ?(interval = default_mispred_interval)
    ?(total_logic_ps = 8200.0) ?(overhead_ps = 90.0) ~widths ~depths () =
  List.map
    (fun width ->
      ( width,
        List.map
          (fun depth ->
            let ipc = interval_ipc iw ~window ~interval ~width ~depth in
            let cycle_ps = (total_logic_ps /. float_of_int depth) +. overhead_ps in
            (* instructions per picosecond times 1000 = BIPS *)
            (depth, ipc /. cycle_ps *. 1000.0))
          depths ))
    widths

let optimal_depth row =
  match row with
  | [] -> invalid_arg "Trends.optimal_depth: empty row"
  | (d0, b0) :: rest ->
      fst (List.fold_left (fun (d, b) (d', b') -> if b' > b then (d', b') else (d, b)) (d0, b0) rest)

let fraction_near_width iw ~window ~pipeline_depth ~width ~instructions =
  let iw = clip_width iw width in
  let run =
    Transient.interval iw ~window ~pipeline_depth ~instructions
  in
  let threshold = 0.875 *. float_of_int width in
  let close =
    Array.fold_left
      (fun acc rate -> if rate >= threshold then acc + 1 else acc)
      0 run.Transient.issue_per_cycle
  in
  float_of_int close /. float_of_int (Array.length run.Transient.issue_per_cycle)

let mispred_distance_for_fraction ?(iw = default_iw) ?(window = 48) ?(pipeline_depth = 5)
    ~width ~fraction () =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"trends.fraction"
    (fraction > 0.0 && fraction < 1.0)
    "target fraction must be strictly between 0 and 1";
  let window = Stdlib.max window (16 * width * width) in
  (* The fraction of near-peak cycles grows monotonically with the
     interval length: binary search for the smallest sufficient
     distance. *)
  let feasible n = fraction_near_width iw ~window ~pipeline_depth ~width ~instructions:n >= fraction in
  let rec grow hi = if feasible hi || hi > 1_000_000 then hi else grow (2 * hi) in
  let hi = grow 16 in
  let rec bisect lo hi =
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if feasible mid then bisect lo mid else bisect mid hi
  in
  bisect 1 hi

let issue_trajectory ?(iw = default_iw) ?(window = 48) ?(pipeline_depth = 5)
    ?(interval = default_mispred_interval) ~width () =
  let iw = clip_width iw width in
  (Transient.interval iw ~window ~pipeline_depth ~instructions:interval).Transient.issue_per_cycle
