module Iw = Iw_characteristic

let drain_plus_ramp iw (params : Params.t) =
  let window = params.Params.window_size in
  let drain = Transient.drain iw ~window in
  let ramp = Transient.ramp_up iw ~window in
  (drain.Transient.penalty, ramp.Transient.penalty)

let ensure = Fom_check.Checker.ensure ~code:"FOM-I030"

let branch_misprediction iw params ~burst =
  ensure ~path:"penalties.burst" (burst >= 1.0) "burst size must be at least 1";
  let drain, ramp = drain_plus_ramp iw params in
  float_of_int params.Params.pipeline_depth +. ((drain +. ramp) /. burst)

let branch_misprediction_paper (params : Params.t) =
  let iw =
    Iw.make ~alpha:1.0 ~beta:0.5 ~issue_width:(float_of_int params.Params.width) ()
  in
  let drain, ramp = drain_plus_ramp iw params in
  float_of_int params.Params.pipeline_depth +. ((drain +. ramp) /. 2.0)

let icache_miss iw (params : Params.t) ~delay =
  let drain, ramp = drain_plus_ramp iw params in
  (* A fetch buffer keeps dispatch fed for buffer/width cycles of the
     fill delay (Section 7, extension 2). *)
  let covered = float_of_int params.Params.fetch_buffer /. float_of_int params.Params.width in
  Float.max 0.0 (Float.max 0.0 (float_of_int delay -. covered) +. ramp -. drain)

let dcache_long_miss ?(rob_fill = 0.0) (params : Params.t) ~group_factor =
  ensure ~path:"penalties.group_factor"
    (group_factor > 0.0 && group_factor <= 1.0)
    "group factor must be in (0, 1]";
  ensure ~path:"penalties.rob_fill" (rob_fill >= 0.0) "ROB fill must be non-negative";
  Float.max 0.0 (float_of_int params.Params.long_delay -. rob_fill) *. group_factor

let rob_fill_estimate iw (params : Params.t) =
  (* Steady-state ROB occupancy: the window backlog plus the
     instructions issued but not yet retired (Little's law over the
     mean execution-plus-commit time). The remainder of the ROB fills
     behind the missed load at the dispatch width. *)
  let window = params.Params.window_size in
  let occupancy =
    Iw.steady_state_occupancy iw ~window
    +. (Iw.steady_state_ipc iw ~window *. (iw.Iw.avg_latency +. 1.0))
  in
  Float.max 0.0
    ((float_of_int params.Params.rob_size -. occupancy) /. float_of_int params.Params.width)
