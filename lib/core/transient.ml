module Iw = Iw_characteristic

type result = { cycles : float; instructions : float; penalty : float }

let max_transient_cycles = 10_000

let drain iw ~window =
  let steady = Iw.steady_state_ipc iw ~window in
  let rec loop w cycles issued =
    if w <= 1.0 || cycles >= max_transient_cycles then (cycles, issued)
    else
      let rate = Iw.issue_rate iw w in
      if rate <= 0.0 then (cycles, issued)
      else loop (w -. rate) (cycles + 1) (issued +. rate)
  in
  let cycles, instructions = loop (Iw.steady_state_occupancy iw ~window) 0 0.0 in
  let cycles = float_of_int cycles in
  { cycles; instructions; penalty = cycles -. (instructions /. steady) }

let ensure = Fom_check.Checker.ensure ~code:"FOM-I030"

let ramp_up ?(epsilon = 0.1) iw ~window =
  ensure ~path:"transient.ramp_up" (Float.is_finite iw.Iw.issue_width)
    "ramp-up needs a finite issue width";
  let steady = Iw.steady_state_ipc iw ~window in
  let target = (1.0 -. epsilon) *. steady in
  let cap = float_of_int window in
  let rec loop w cycles issued =
    let rate = Iw.issue_rate iw w in
    if rate >= target || cycles >= max_transient_cycles then (cycles, issued)
    else
      let w = Float.min cap (w +. iw.Iw.issue_width -. rate) in
      loop w (cycles + 1) (issued +. rate)
  in
  let cycles, instructions = loop 0.0 0 0.0 in
  let cycles = float_of_int cycles in
  { cycles; instructions; penalty = cycles -. (instructions /. steady) }

type interval = {
  total_cycles : float;
  ipc : float;
  issue_per_cycle : float array;
}

let interval iw ~window ~pipeline_depth ~instructions =
  ensure ~path:"transient.interval" (Float.is_finite iw.Iw.issue_width)
    "interval analysis needs a finite issue width";
  ensure ~path:"transient.interval" (instructions > 0) "instruction count must be positive";
  let cap = float_of_int window in
  let n = float_of_int instructions in
  let trace = ref [] in
  for _ = 1 to pipeline_depth do
    trace := 0.0 :: !trace
  done;
  (* Dispatch runs at the machine width until the interval's
     instructions are all in flight; issue follows the characteristic;
     the tail drains naturally. The cycle cap scales with the work:
     issuing the oldest instruction guarantees progress, so it only
     guards numerically degenerate characteristics. *)
  let cycle_cap = (10 * instructions) + max_transient_cycles in
  let rec loop w dispatched issued cycles =
    if issued >= n -. 1e-9 || cycles >= cycle_cap then cycles
    else
      let rate = Float.min (Iw.issue_rate iw w) (n -. issued) in
      let dispatch = Float.min iw.Iw.issue_width (n -. dispatched) in
      let w = Float.min cap (w +. dispatch -. rate) in
      trace := rate :: !trace;
      loop w (dispatched +. dispatch) (issued +. rate) (cycles + 1)
  in
  let issue_cycles = loop 0.0 0.0 0.0 0 in
  let total_cycles = float_of_int (pipeline_depth + issue_cycles) in
  {
    total_cycles;
    ipc = n /. total_cycles;
    issue_per_cycle = Array.of_list (List.rev !trace);
  }
