(** Program statistics consumed by the model.

    These are exactly the trace-derived quantities the paper's
    Section 5 evaluation feeds the model: the unit-latency IW power
    law, the mean instruction latency, per-instruction miss-event
    rates, the misprediction burst-size distribution, and the
    long-miss group-size distribution [f_LDM] for the machine's ROB
    size. {!Fom_analysis} produces them from a trace without any
    detailed (cycle-level) simulation. *)

type t = {
  name : string;  (** workload label *)
  instructions : int;  (** trace length the statistics came from *)
  alpha : float;  (** unit-latency IW power-law coefficient *)
  beta : float;  (** unit-latency IW power-law exponent *)
  fit_r2 : float;  (** quality of the log-log fit *)
  avg_latency : float;
      (** mean instruction latency, short data misses folded in
          (paper Table 1, third column) *)
  mispredictions_per_instr : float;
  mispred_bursts : Fom_util.Distribution.t;
      (** sizes of misprediction bursts (mispredictions closer than a
          window-refill of instructions share one drain/ramp pair) *)
  l1i_misses_per_instr : float;  (** I-fetch misses served by the L2 *)
  l2i_misses_per_instr : float;  (** I-fetch misses served by memory *)
  short_misses_per_instr : float;  (** load L1D misses served by the L2 *)
  long_misses_per_instr : float;  (** load misses served by memory *)
  long_miss_groups : Fom_util.Distribution.t;
      (** [f_LDM]: sizes of long-miss groups, where consecutive long
          misses within [rob_size] instructions overlap (paper eq. 8) *)
  dtlb_misses_per_instr : float;
      (** load TLB misses (0 when the machine has no modeled TLB) *)
  dtlb_groups : Fom_util.Distribution.t;
      (** TLB-miss group sizes, same overlap rule as long misses *)
}

val check : t -> Fom_check.Diagnostic.t list
(** Collect every [FOM-Ixxx] violation: rate ranges, the power-law
    shape ([alpha > 0], [beta], [fit_r2] in (0, 1]]), miss-rate
    orderings (warnings), and consistency between each event rate and
    its group-size distribution. *)

val validate : t -> unit
(** Raise {!Fom_check.Checker.Invalid} with everything {!check}
    reports at error severity (warnings and hints never raise). *)

val mispred_burst_mean : t -> float
(** Mean misprediction burst size [n] for eq. 3; 1.0 when no bursts
    were observed. *)

val long_group_factor : t -> float
(** The eq. 8 overlap factor [sum_i f_LDM(i) / i]; 1.0 (isolated
    misses) when no long misses were observed. *)

val dtlb_group_factor : t -> float
(** Overlap factor for TLB misses, same convention. *)

val no_dtlb : float * Fom_util.Distribution.t
(** Convenience for machines without a TLB: a zero rate and an empty
    group distribution. *)
