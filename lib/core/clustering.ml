let latency_penalty ~clusters ?(bypass = 1.0) ?(deps_per_instr = 1.0) () =
  let ensure = Fom_check.Checker.ensure ~code:"FOM-I030" in
  ensure ~path:"clustering.clusters" (clusters >= 1) "cluster count must be at least 1";
  ensure ~path:"clustering.bypass"
    (bypass >= 0.0 && deps_per_instr >= 0.0)
    "bypass cost and dependences per instruction must be non-negative";
  deps_per_instr *. bypass *. float_of_int (clusters - 1) /. float_of_int clusters

let effective_characteristic ~clusters ?bypass ?deps_per_instr (iw : Iw_characteristic.t) =
  let penalty = latency_penalty ~clusters ?bypass ?deps_per_instr () in
  { iw with Iw_characteristic.avg_latency = iw.Iw_characteristic.avg_latency +. penalty }
