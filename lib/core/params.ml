type t = {
  width : int;
  pipeline_depth : int;
  window_size : int;
  rob_size : int;
  short_delay : int;
  long_delay : int;
  dtlb_walk : int;
  fetch_buffer : int;
}

let baseline =
  {
    width = 4;
    pipeline_depth = 5;
    window_size = 48;
    rob_size = 128;
    short_delay = 8;
    long_delay = 200;
    dtlb_walk = 30;
    fetch_buffer = 0;
  }

let check t =
  let module C = Fom_check.Checker in
  C.all
    [
      C.min_int ~code:"FOM-P001" ~path:"params.width" ~min:1 t.width;
      C.min_int ~code:"FOM-P002" ~path:"params.pipeline_depth" ~min:1 t.pipeline_depth;
      C.min_int ~code:"FOM-P003" ~path:"params.window_size" ~min:1 t.window_size;
      C.check ~code:"FOM-P004" ~path:"params.window_size"
        (t.window_size <= t.rob_size)
        (Printf.sprintf "window_size (%d) must not exceed rob_size (%d)" t.window_size
           t.rob_size);
      C.min_int ~code:"FOM-P005" ~path:"params.short_delay" ~min:1 t.short_delay;
      C.check ~code:"FOM-P006" ~path:"params.long_delay"
        (t.long_delay >= t.short_delay)
        (Printf.sprintf "long_delay (%d) must not be below short_delay (%d)" t.long_delay
           t.short_delay);
      C.min_int ~code:"FOM-P007" ~path:"params.dtlb_walk" ~min:1 t.dtlb_walk;
      C.min_int ~code:"FOM-P008" ~path:"params.fetch_buffer" ~min:0 t.fetch_buffer;
    ]

let validate t = Fom_check.Checker.run_exn (check t)
