type t = {
  alpha : float;
  beta : float;
  avg_latency : float;
  issue_width : float;
}

let make ~alpha ~beta ?(avg_latency = 1.0) ?(issue_width = infinity) () =
  let module C = Fom_check.Checker in
  C.run_exn
    (C.all
       [
         C.positive_float ~code:"FOM-I002" ~path:"iw.alpha" alpha;
         C.positive_fraction ~code:"FOM-I003" ~path:"iw.beta" beta;
         C.min_float ~code:"FOM-I004" ~path:"iw.avg_latency" ~min:1.0 avg_latency;
         C.check ~code:"FOM-I002" ~path:"iw.issue_width" (issue_width > 0.0)
           "issue width must be positive";
       ]);
  { alpha; beta; avg_latency; issue_width }

let of_fit ?avg_latency ?issue_width (fit : Fom_util.Fit.power_law) =
  make ~alpha:fit.Fom_util.Fit.alpha ~beta:fit.Fom_util.Fit.beta ?avg_latency ?issue_width ()

let square_law = make ~alpha:1.0 ~beta:0.5 ()

let unclipped_rate t w =
  if w <= 0.0 then 0.0 else t.alpha *. Float.pow w t.beta /. t.avg_latency

let issue_rate t w =
  if w <= 0.0 then 0.0 else Float.min w (Float.min t.issue_width (unclipped_rate t w))

let occupancy_for_rate t rate =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"iw.occupancy_for_rate" (rate > 0.0)
    "rate must be positive";
  Float.pow (rate *. t.avg_latency /. t.alpha) (1.0 /. t.beta)

let steady_state_ipc t ~window = issue_rate t (float_of_int window)

let steady_state_occupancy t ~window =
  let window = float_of_int window in
  if unclipped_rate t window <= t.issue_width then window
  else Float.min window (occupancy_for_rate t t.issue_width)
