let combine weighted =
  let ensure = Fom_check.Checker.ensure ~code:"FOM-I030" in
  ensure ~path:"phased.weighted" (weighted <> []) "phase list must be non-empty";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  ensure ~path:"phased.weighted" (total > 0.0) "phase weights must sum to a positive total";
  let mean field =
    List.fold_left (fun acc (w, b) -> acc +. (w *. field b)) 0.0 weighted /. total
  in
  {
    Cpi.steady = mean (fun b -> b.Cpi.steady);
    branch = mean (fun b -> b.Cpi.branch);
    l1i = mean (fun b -> b.Cpi.l1i);
    l2i = mean (fun b -> b.Cpi.l2i);
    dcache = mean (fun b -> b.Cpi.dcache);
    dtlb = mean (fun b -> b.Cpi.dtlb);
  }
