type t = {
  name : string;
  instructions : int;
  alpha : float;
  beta : float;
  fit_r2 : float;
  avg_latency : float;
  mispredictions_per_instr : float;
  mispred_bursts : Fom_util.Distribution.t;
  l1i_misses_per_instr : float;
  l2i_misses_per_instr : float;
  short_misses_per_instr : float;
  long_misses_per_instr : float;
  long_miss_groups : Fom_util.Distribution.t;
  dtlb_misses_per_instr : float;
  dtlb_groups : Fom_util.Distribution.t;
}

(* A rate of events per instruction is a probability; the paper's
   eq. 1 decomposition is meaningless outside [0, 1]. *)
let check t =
  let module C = Fom_check.Checker in
  let module D = Fom_util.Distribution in
  let rate name v = C.fraction ~code:"FOM-I005" ~path:("inputs." ^ name) v in
  let group_consistency name rate dist =
    let observed = D.total dist > 0 in
    C.all
      [
        C.check ~severity:Fom_check.Diagnostic.Warning ~code:"FOM-I008"
          ~path:("inputs." ^ name)
          (not (rate > 0.0 && not observed))
          "event rate is positive but the group distribution is empty (overlap factor \
           defaults to 1)";
        C.check ~severity:Fom_check.Diagnostic.Warning ~code:"FOM-I008"
          ~path:("inputs." ^ name)
          (not (rate = 0.0 && observed))
          "group distribution is non-empty but the event rate is zero";
        C.check ~code:"FOM-I009" ~path:("inputs." ^ name)
          (List.for_all (fun k -> k >= 1) (D.support dist))
          "group sizes must be at least 1";
      ]
  in
  C.all
    [
      C.min_int ~code:"FOM-I001" ~path:"inputs.instructions" ~min:1 t.instructions;
      C.positive_float ~code:"FOM-I002" ~path:"inputs.alpha" t.alpha;
      C.positive_fraction ~code:"FOM-I003" ~path:"inputs.beta" t.beta;
      C.min_float ~code:"FOM-I004" ~path:"inputs.avg_latency" ~min:1.0 t.avg_latency;
      rate "mispredictions_per_instr" t.mispredictions_per_instr;
      rate "l1i_misses_per_instr" t.l1i_misses_per_instr;
      rate "l2i_misses_per_instr" t.l2i_misses_per_instr;
      rate "short_misses_per_instr" t.short_misses_per_instr;
      rate "long_misses_per_instr" t.long_misses_per_instr;
      rate "dtlb_misses_per_instr" t.dtlb_misses_per_instr;
      (* Not a hard invariant of the representation (the counts are
         disjoint, not nested), but a violation almost always means the
         characterization ran on a broken hierarchy. *)
      C.check ~severity:Fom_check.Diagnostic.Warning ~code:"FOM-I006"
        ~path:"inputs.l2i_misses_per_instr"
        (t.l2i_misses_per_instr <= t.l1i_misses_per_instr +. 1e-12)
        (Printf.sprintf
           "memory-served instruction miss rate (%g) is usually at most the L2-served rate \
            (%g)"
           t.l2i_misses_per_instr t.l1i_misses_per_instr);
      C.check ~code:"FOM-I007" ~path:"inputs.fit_r2"
        (Float.is_finite t.fit_r2 && t.fit_r2 > 0.0 && t.fit_r2 <= 1.0 +. 1e-9)
        (Printf.sprintf "fit r-squared must be within (0, 1], got %g" t.fit_r2);
      C.check ~code:"FOM-I010" ~path:"inputs.l1i_misses_per_instr"
        (t.l1i_misses_per_instr +. t.l2i_misses_per_instr <= 1.0 +. 1e-9)
        "combined instruction miss rates exceed one per instruction";
      C.check ~code:"FOM-I010" ~path:"inputs.short_misses_per_instr"
        (t.short_misses_per_instr +. t.long_misses_per_instr <= 1.0 +. 1e-9)
        "combined data miss rates exceed one per instruction";
      C.check ~severity:Fom_check.Diagnostic.Hint ~code:"FOM-I011" ~path:"inputs.fit_r2"
        (not (t.fit_r2 > 0.0 && t.fit_r2 < 0.5))
        (Printf.sprintf
           "power-law fit explains only r2 = %g of the IW curve; the model's eq. 1 rests \
            on this fit"
           t.fit_r2);
      group_consistency "mispred_bursts" t.mispredictions_per_instr t.mispred_bursts;
      group_consistency "long_miss_groups" t.long_misses_per_instr t.long_miss_groups;
      group_consistency "dtlb_groups" t.dtlb_misses_per_instr t.dtlb_groups;
    ]

let validate t = Fom_check.Checker.run_exn (check t)

let mispred_burst_mean t =
  if Fom_util.Distribution.total t.mispred_bursts = 0 then 1.0
  else Fom_util.Distribution.mean t.mispred_bursts

(* Each group of overlapping misses costs one isolated penalty, so the
   average per-miss factor is groups/misses = 1/mean-group-size. This
   equals the paper's sum over the per-miss distribution f_LDM(i)/i. *)
let group_factor dist =
  if Fom_util.Distribution.total dist = 0 then 1.0
  else 1.0 /. Float.max 1.0 (Fom_util.Distribution.mean dist)

let long_group_factor t = group_factor t.long_miss_groups
let dtlb_group_factor t = group_factor t.dtlb_groups
let no_dtlb = (0.0, Fom_util.Distribution.create ())
