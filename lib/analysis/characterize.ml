module Inputs = Fom_model.Inputs
module Params = Fom_model.Params
module Packed = Fom_trace.Packed

let assemble ~name ~n curve (profile : Profile.t) =
  {
    Inputs.name;
    instructions = n;
    alpha = Float.max 0.01 (Iw_curve.alpha curve);
    (* A dependence-saturated trace fits a flat (or noise-negative)
       exponent; clamp into the model's valid (0, 1] range. *)
    beta = Float.min 1.0 (Float.max 0.01 (Iw_curve.beta curve));
    fit_r2 = curve.Iw_curve.fit.Fom_util.Fit.r2;
    avg_latency = Float.max 1.0 profile.Profile.avg_latency;
    mispredictions_per_instr = Profile.per_instr profile profile.Profile.mispredictions;
    mispred_bursts = profile.Profile.mispred_bursts;
    l1i_misses_per_instr = Profile.per_instr profile profile.Profile.l1i_misses;
    l2i_misses_per_instr = Profile.per_instr profile profile.Profile.l2i_misses;
    short_misses_per_instr = Profile.per_instr profile profile.Profile.short_misses;
    long_misses_per_instr = Profile.per_instr profile profile.Profile.long_misses;
    long_miss_groups = profile.Profile.long_miss_groups;
    dtlb_misses_per_instr = Profile.per_instr profile profile.Profile.dtlb_misses;
    dtlb_groups = profile.Profile.dtlb_groups;
  }

let curve_and_inputs_of_packed ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies
    ?grouping ?dtlb ~(params : Params.t) packed ~n =
  Fom_check.Checker.ensure ~code:"FOM-I033" ~path:"characterize.trace"
    (Packed.length packed >= n)
    (Printf.sprintf "packed trace of %d instructions is shorter than the %d-instruction \
                     profile" (Packed.length packed) n);
  let curve = Iw_curve.measure_packed ?pool ?windows ?n:iw_instructions packed in
  let profile =
    Profile.run_source ?cache ?predictor ?latencies ?grouping ?dtlb
      ~burst_window:params.Params.window_size ~group_window:params.Params.rob_size
      (Packed.to_source ~wrap:false packed)
      ~n
  in
  (curve, profile, assemble ~name:(Packed.label packed) ~n curve profile)

let curve_and_inputs_of_source ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies
    ?grouping ?dtlb ~params source ~n =
  (* Pack the trace once, sized for whichever pass reads furthest: the
     profile's [n] or the IW sweep's instructions plus its largest
     window of fetch-ahead. Both passes then replay the same flat
     columns with no further decode of the underlying source. *)
  let iw_instructions = Option.value iw_instructions ~default:30_000 in
  let windows = match windows with Some w -> w | None -> Iw_curve.default_windows in
  let max_window = List.fold_left Stdlib.max 1 windows in
  let packed =
    Packed.of_source source ~n:(Stdlib.max n (iw_instructions + max_window))
  in
  curve_and_inputs_of_packed ?pool ~windows ~iw_instructions ?cache ?predictor ?latencies
    ?grouping ?dtlb ~params packed ~n

let curve_and_inputs ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies ?grouping
    ?dtlb ~params program ~n =
  curve_and_inputs_of_source ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies
    ?grouping ?dtlb ~params
    (Fom_trace.Source.of_program program)
    ~n

let inputs ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies ?grouping ?dtlb
    ~params program ~n =
  let _, _, result =
    curve_and_inputs ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies ?grouping
      ?dtlb ~params program ~n
  in
  result

let inputs_of_source ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies ?grouping
    ?dtlb ~params source ~n =
  let _, _, result =
    curve_and_inputs_of_source ?pool ?windows ?iw_instructions ?cache ?predictor ?latencies
      ?grouping ?dtlb ~params source ~n
  in
  result
