(** Measured IW curves and their power-law fits (paper Table 1,
    Figures 4–5). *)

type point = { window : int; ipc : float }

type t = {
  points : point list;  (** measured, in increasing window order *)
  fit : Fom_util.Fit.power_law;  (** the log-log line fit *)
}

val default_windows : int list
(** 4, 8, 16, 32, 64, 128, 256 — the paper's Figure 4 range. *)

val measure :
  ?pool:Fom_exec.Pool.t -> ?windows:int list -> ?n:int ->
  ?latencies:Fom_isa.Latency.t ->
  ?issue_limit:int -> Fom_trace.Program.t -> t
(** Run the idealized simulation at each window size and fit. Defaults:
    {!default_windows}, 30_000 instructions per point, unit latencies,
    unbounded issue — the implementation-independent curve.

    Every sweep runs the event-driven {!Iw_sim.ipc_of_packed} kernel
    over a trace packed once ({!Fom_trace.Packed}) and shared by all
    points. [?pool] measures the window points in parallel (one task
    per window) over that same immutable packing, so the points — and
    therefore the fit — are bit-identical to a sequential measurement;
    a [jobs = 1] pool takes exactly the sequential path. *)

val measure_source :
  ?pool:Fom_exec.Pool.t -> ?windows:int list -> ?n:int ->
  ?latencies:Fom_isa.Latency.t ->
  ?issue_limit:int -> Fom_trace.Source.t -> t
(** {!measure} over any replayable source. The source's factory is
    invoked exactly once (to pack the trace), which also makes
    parallel measurement safe for non-reentrant
    {!Fom_trace.Source.of_factory} sources. *)

val measure_packed :
  ?pool:Fom_exec.Pool.t -> ?windows:int list -> ?n:int ->
  ?latencies:Fom_isa.Latency.t ->
  ?issue_limit:int -> Fom_trace.Packed.t -> t
(** {!measure} over an already-packed trace (no packing cost; callers
    sharing one packing across analyses use this). The packing must
    hold at least [n] plus the largest window instructions
    ([FOM-I033]). *)

val alpha : t -> float
val beta : t -> float

val log2_points : t -> (float * float) list
(** [(log2 window, log2 ipc)] pairs, for Figure 4/5-style output. *)
