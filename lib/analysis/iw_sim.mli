(** Idealized window-limited dataflow simulation.

    The paper's Section 3 measurement: ideal caches and branch
    prediction, unbounded functional units, unbounded (or optionally
    limited) issue width, instant window refill — the only constraint
    is the issue-window size, plus the trace's true dependences. With
    unit latencies this produces the implementation-independent IW
    curves of Figure 4; with an issue-width limit it produces the
    saturating curves of Figure 6. This is a simple trace-driven
    simulation, not a detailed one — the distinction the paper leans
    on.

    Two kernels compute the identical measurement. {!ipc_of_source} is
    the reference: it keeps the window as an array and rescans it
    every cycle (O(window) per cycle) — kept for its direct
    correspondence to the paper's description and as the oracle the
    fast kernel is property-tested against. {!ipc_of_packed} is the
    production kernel: event-driven over a {!Fom_trace.Packed} trace,
    scanning only instructions actually woken each cycle. The two are
    bit-identical on IPC (exact float equality), not merely close. *)

val ring_size : int
(** Capacity of the completion ring both kernels bound their
    bookkeeping by; window sizes beyond it are rejected ([FOM-I031])
    because completion lookups in the reference kernel would silently
    alias. *)

val ipc :
  ?latencies:Fom_isa.Latency.t -> ?issue_limit:int ->
  Fom_trace.Program.t -> window:int -> n:int -> float
(** [ipc program ~window ~n]: average instructions issued per cycle
    over the first [n] instructions. Default latencies are unit;
    default issue width is unbounded. *)

val ipc_of_source :
  ?latencies:Fom_isa.Latency.t -> ?issue_limit:int ->
  Fom_trace.Source.t -> window:int -> n:int -> float
(** {!ipc} over any replayable source (e.g. an imported trace) —
    the reference window-rescanning kernel. *)

val ipc_of_packed :
  ?latencies:Fom_isa.Latency.t -> ?issue_limit:int ->
  Fom_trace.Packed.t -> window:int -> n:int -> float
(** The event-driven kernel: same measurement as {!ipc_of_source} on
    the same trace, bit-identical IPC. The packed trace must hold at
    least [n + window] instructions ([FOM-I033]) — the kernel reads
    flat columns and never wraps. *)
