module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Latency = Fom_isa.Latency
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor
module Distribution = Fom_util.Distribution

type t = {
  instructions : int;
  class_counts : (Opclass.t * int) list;
  avg_latency : float;
  branches : int;
  mispredictions : int;
  mispred_bursts : Distribution.t;
  l1i_misses : int;
  l2i_misses : int;
  short_misses : int;
  long_misses : int;
  long_miss_groups : Distribution.t;
  dtlb_misses : int;
  dtlb_groups : Distribution.t;
}

type grouping = Dependence_aware | Paper_naive

(* Tracks runs of events, emitting run lengths into a distribution.
   [Leader]-anchored runs admit a new event only within [window]
   instructions of the run's first event (a follower overlaps the
   leader's outstanding miss only while the leader pins the ROB);
   [Previous]-anchored runs chain on consecutive distances (the
   paper's reading). [split] forces a new run regardless. *)
type anchor = Leader | Previous

type grouper = {
  dist : Distribution.t;
  window : int;
  anchor : anchor;
  mutable leader_index : int;
  mutable last_index : int;
  mutable run : int;
}

let grouper ?(anchor = Previous) window =
  {
    dist = Distribution.create ();
    window;
    anchor;
    leader_index = min_int / 2;
    last_index = min_int / 2;
    run = 0;
  }

(* Returns [true] when the event started a new run. *)
let grouper_add ?(split = false) g index =
  let reference = match g.anchor with Leader -> g.leader_index | Previous -> g.last_index in
  let extends = (not split) && g.run > 0 && index - reference <= g.window in
  if extends then g.run <- g.run + 1
  else begin
    if g.run > 0 then Distribution.add g.dist g.run;
    g.run <- 1;
    g.leader_index <- index
  end;
  g.last_index <- index;
  not extends

let grouper_flush g = if g.run > 0 then Distribution.add g.dist g.run

(* Transitive-dependence taint over a ring of recent instructions:
   an instruction is tainted by the open miss group when any of its
   producers is a group member or itself tainted. A tainted long miss
   cannot overlap the group — its address waits for the group's data. *)
let taint_bits = 14
let taint_size = 1 lsl taint_bits
let taint_mask = taint_size - 1

type taint = { idx : int array; group : int array }

let taint_create () = { idx = Array.make taint_size (-1); group = Array.make taint_size (-1) }

let tainted_by taint ~group_id deps =
  let rec check k =
    k < Array.length deps
    &&
    let d = deps.(k) in
    let slot = d land taint_mask in
    (taint.idx.(slot) = d && taint.group.(slot) = group_id) || check (k + 1)
  in
  check 0

let taint_mark taint ~group_id index =
  let slot = index land taint_mask in
  taint.idx.(slot) <- index;
  taint.group.(slot) <- group_id

let run_source ?(cache = Hierarchy.baseline) ?(predictor = Predictor.default_spec)
    ?(latencies = Latency.default) ?(burst_window = 48) ?(group_window = 128)
    ?(grouping = Dependence_aware) ?dtlb source ~n =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"profile.n" (n > 0)
    "profiled instruction count must be positive";
  let hierarchy = Hierarchy.create cache in
  let pred = Predictor.create predictor in
  let next_instr = Fom_trace.Source.fresh source in
  let counts = Array.make Opclass.count 0 in
  let class_slot = Opclass.to_int in
  let latency_sum = ref 0.0 in
  let branches = ref 0 in
  let mispredictions = ref 0 in
  let bursts = grouper burst_window in
  let groups =
    match grouping with
    | Dependence_aware -> grouper ~anchor:Leader group_window
    | Paper_naive -> grouper ~anchor:Previous group_window
  in
  let taint = taint_create () in
  let group_id = ref 0 in
  let tlb = Option.map Fom_cache.Tlb.create dtlb in
  let dtlb_misses = ref 0 in
  let tlb_groups = grouper ~anchor:Leader group_window in
  (* TLB misses get their own dependence taint: a walk whose address
     depends on an in-group walk serializes, exactly like long data
     misses. *)
  let tlb_taint = taint_create () in
  let tlb_group_id = ref 0 in
  (* [count]: store misses fill the TLB but are not miss-events. *)
  let translate ~count addr =
    match tlb with
    | None -> false
    | Some tlb ->
        let miss = not (Fom_cache.Tlb.access tlb addr) in
        if miss && count then incr dtlb_misses;
        miss && count
  in
  let short_misses = ref 0 in
  let long_misses = ref 0 in
  let last_line = ref (-1) in
  let line_of pc =
    match cache.Hierarchy.l1i with
    | Hierarchy.Real g -> Fom_cache.Geometry.line_address g pc
    | Hierarchy.Ideal -> pc land lnot 127
  in
  for _ = 1 to n do
    let instr = next_instr () in
    counts.(class_slot instr.Instr.opclass) <- counts.(class_slot instr.Instr.opclass) + 1;
    let line = line_of instr.Instr.pc in
    if line <> !last_line then begin
      last_line := line;
      ignore (Hierarchy.access_inst hierarchy instr.Instr.pc)
    end;
    let is_tainted =
      grouping = Dependence_aware
      && tainted_by taint ~group_id:!group_id instr.Instr.deps
    in
    let base_latency = Latency.of_class latencies instr.Instr.opclass in
    let marked_as_miss = ref false in
    let tlb_tainted =
      grouping = Dependence_aware
      && Option.is_some tlb
      && tainted_by tlb_taint ~group_id:!tlb_group_id instr.Instr.deps
    in
    let tlb_marked = ref false in
    (match instr.Instr.opclass with
    | Opclass.Load -> (
        if translate ~count:true (Instr.mem_exn instr) then begin
          if grouper_add ~split:tlb_tainted tlb_groups instr.Instr.index then
            incr tlb_group_id;
          if grouping = Dependence_aware then begin
            taint_mark tlb_taint ~group_id:!tlb_group_id instr.Instr.index;
            tlb_marked := true
          end
        end;
        match Hierarchy.access_data hierarchy (Instr.mem_exn instr) with
        | Hierarchy.L1_hit -> latency_sum := !latency_sum +. float_of_int base_latency
        | Hierarchy.L2_hit ->
            incr short_misses;
            (* Short misses behave like a long-latency functional
               unit: they lengthen the mean latency (paper 4.3). *)
            latency_sum :=
              !latency_sum +. float_of_int (Hierarchy.data_latency hierarchy Hierarchy.L2_hit)
        | Hierarchy.Memory ->
            incr long_misses;
            (* A miss that depends on the open group serializes after
               it and starts a new group. *)
            let new_group = grouper_add ~split:is_tainted groups instr.Instr.index in
            if new_group then incr group_id;
            if grouping = Dependence_aware then begin
              taint_mark taint ~group_id:!group_id instr.Instr.index;
              marked_as_miss := true
            end;
            (* Long misses are modeled separately; they contribute
               their base latency here. *)
            latency_sum := !latency_sum +. float_of_int base_latency)
    | Opclass.Store ->
        ignore (translate ~count:false (Instr.mem_exn instr));
        ignore (Hierarchy.access_data hierarchy (Instr.mem_exn instr));
        latency_sum := !latency_sum +. float_of_int base_latency
    | Opclass.Branch ->
        incr branches;
        let taken = (Instr.ctrl_exn instr).Instr.taken in
        if not (Predictor.observe pred ~pc:instr.Instr.pc ~taken) then begin
          incr mispredictions;
          ignore (grouper_add bursts instr.Instr.index)
        end;
        latency_sum := !latency_sum +. float_of_int base_latency
    | Opclass.Alu | Opclass.Mul | Opclass.Div | Opclass.Jump ->
        latency_sum := !latency_sum +. float_of_int base_latency);
    if is_tainted && not !marked_as_miss then
      taint_mark taint ~group_id:!group_id instr.Instr.index;
    if tlb_tainted && not !tlb_marked then
      taint_mark tlb_taint ~group_id:!tlb_group_id instr.Instr.index
  done;
  grouper_flush bursts;
  grouper_flush groups;
  grouper_flush tlb_groups;
  let cache_stats = Hierarchy.stats hierarchy in
  {
    instructions = n;
    class_counts = List.mapi (fun k cls -> (cls, counts.(k))) Opclass.all;
    avg_latency = !latency_sum /. float_of_int n;
    branches = !branches;
    mispredictions = !mispredictions;
    mispred_bursts = bursts.dist;
    l1i_misses = cache_stats.Hierarchy.l1i_misses - cache_stats.Hierarchy.l2i_misses;
    l2i_misses = cache_stats.Hierarchy.l2i_misses;
    short_misses = !short_misses;
    long_misses = !long_misses;
    long_miss_groups = groups.dist;
    dtlb_misses = !dtlb_misses;
    dtlb_groups = tlb_groups.dist;
  }

let class_fraction t cls =
  let count = List.assoc cls t.class_counts in
  float_of_int count /. float_of_int t.instructions

let per_instr t count = float_of_int count /. float_of_int t.instructions

let run ?cache ?predictor ?latencies ?burst_window ?group_window ?grouping ?dtlb program ~n =
  run_source ?cache ?predictor ?latencies ?burst_window ?group_window ?grouping ?dtlb
    (Fom_trace.Source.of_program program) ~n
