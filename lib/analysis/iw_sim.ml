module Instr = Fom_isa.Instr
module Latency = Fom_isa.Latency

let ring_bits = 16
let ring_size = 1 lsl ring_bits
let ring_mask = ring_size - 1

let ipc_of_source ?(latencies = Fom_isa.Latency.unit) ?issue_limit source ~window ~n =
  let ensure = Fom_check.Checker.ensure ~code:"FOM-I030" in
  ensure ~path:"iw_sim.window" (window >= 1) "window size must be positive";
  ensure ~path:"iw_sim.n" (n > 0) "instruction count must be positive";
  let next_instr = Fom_trace.Source.fresh source in
  (* Window of unissued instructions in age order. *)
  let win = Array.make window None in
  let count = ref 0 in
  (* Completion times of issued instructions, keyed by index; entries
     older than the ring are certainly complete (the in-flight span is
     bounded by the window size). *)
  let comp_idx = Array.make ring_size (-1) in
  let comp_time = Array.make ring_size 0 in
  let oldest_unissued = ref 0 in
  let fetched = ref 0 in
  let cycle = ref 0 in
  let issued_total = ref 0 in
  let limit = Option.value issue_limit ~default:max_int in
  let complete d =
    let slot = d land ring_mask in
    if comp_idx.(slot) = d then comp_time.(slot) <= !cycle else d < !oldest_unissued
  in
  let ready (i : Instr.t) =
    let deps = i.Instr.deps in
    let rec check k = k >= Array.length deps || (complete deps.(k) && check (k + 1)) in
    check 0
  in
  while !issued_total < n do
    (* Refill the window to capacity (instant fetch). *)
    while !count < window do
      win.(!count) <- Some (next_instr ());
      incr count;
      incr fetched
    done;
    (* Issue everything ready, oldest first, up to the width limit. *)
    let issued = ref 0 in
    let kept = ref 0 in
    for k = 0 to !count - 1 do
      match win.(k) with
      | None -> Fom_check.Checker.internal_error "window slot empty below count"
      | Some i ->
          if !issued < limit && ready i then begin
            let slot = i.Instr.index land ring_mask in
            comp_idx.(slot) <- i.Instr.index;
            comp_time.(slot) <- !cycle + Latency.of_class latencies i.Instr.opclass;
            incr issued
          end
          else begin
            win.(!kept) <- win.(k);
            incr kept
          end
    done;
    for k = !kept to !count - 1 do
      win.(k) <- None
    done;
    count := !kept;
    (* The oldest unissued instruction is now the window head (the
       window was full before issuing). *)
    (oldest_unissued :=
       match win.(0) with
       | Some i -> i.Instr.index
       | None -> !fetched);
    issued_total := !issued_total + !issued;
    incr cycle
  done;
  float_of_int !issued_total /. float_of_int !cycle

let ipc ?latencies ?issue_limit program ~window ~n =
  ipc_of_source ?latencies ?issue_limit (Fom_trace.Source.of_program program) ~window ~n
