module Instr = Fom_isa.Instr
module Latency = Fom_isa.Latency
module Packed = Fom_trace.Packed

let ring_bits = 16
let ring_size = 1 lsl ring_bits
let ring_mask = ring_size - 1

(* Observability (no-ops unless an Fom_obs sink is enabled): one
   [iw.points] tick per IPC evaluation, plus the cycles and
   instructions it simulated. *)
let m_points = Fom_obs.Metrics.counter "iw.points"
let m_cycles = Fom_obs.Metrics.counter "iw.cycles"
let m_instructions = Fom_obs.Metrics.counter "iw.instructions"

let record_point ~cycles ~instructions =
  Fom_obs.Metrics.incr m_points;
  Fom_obs.Metrics.add m_cycles cycles;
  Fom_obs.Metrics.add m_instructions instructions

let check_shape ~window ~n =
  let ensure = Fom_check.Checker.ensure ~code:"FOM-I030" in
  ensure ~path:"iw_sim.window" (window >= 1) "window size must be positive";
  ensure ~path:"iw_sim.n" (n > 0) "instruction count must be positive";
  Fom_check.Checker.ensure ~code:"FOM-I031" ~path:"iw_sim.window" (window <= ring_size)
    (Printf.sprintf
       "window of %d exceeds the %d-entry completion ring; completion lookups would \
        silently alias"
       window ring_size)

let ipc_of_source ?(latencies = Fom_isa.Latency.unit) ?issue_limit source ~window ~n =
  check_shape ~window ~n;
  let next_instr = Fom_trace.Source.fresh source in
  (* Window of unissued instructions in age order. *)
  let win = Array.make window None in
  let count = ref 0 in
  (* Completion times of issued instructions, keyed by index; entries
     older than the ring are certainly complete (slot reuse lags issue
     by [ring_size] instructions, far beyond any latency). *)
  let comp_idx = Array.make ring_size (-1) in
  let comp_time = Array.make ring_size 0 in
  let oldest_unissued = ref 0 in
  let fetched = ref 0 in
  let cycle = ref 0 in
  let issued_total = ref 0 in
  let limit = Option.value issue_limit ~default:max_int in
  let complete d =
    let slot = d land ring_mask in
    if comp_idx.(slot) = d then comp_time.(slot) <= !cycle else d < !oldest_unissued
  in
  let ready (i : Instr.t) =
    let deps = i.Instr.deps in
    let rec check k = k >= Array.length deps || (complete deps.(k) && check (k + 1)) in
    check 0
  in
  while !issued_total < n do
    (* Refill the window to capacity (instant fetch). *)
    while !count < window do
      win.(!count) <- Some (next_instr ());
      incr count;
      incr fetched
    done;
    (* Issue everything ready, oldest first, up to the width limit. *)
    let issued = ref 0 in
    let kept = ref 0 in
    for k = 0 to !count - 1 do
      match win.(k) with
      | None -> Fom_check.Checker.internal_error "window slot empty below count"
      | Some i ->
          if !issued < limit && ready i then begin
            let slot = i.Instr.index land ring_mask in
            comp_idx.(slot) <- i.Instr.index;
            comp_time.(slot) <- !cycle + Latency.of_class latencies i.Instr.opclass;
            incr issued
          end
          else begin
            win.(!kept) <- win.(k);
            incr kept
          end
    done;
    for k = !kept to !count - 1 do
      win.(k) <- None
    done;
    count := !kept;
    (* The oldest unissued instruction is now the window head (the
       window was full before issuing). *)
    (oldest_unissued :=
       match win.(0) with
       | Some i -> i.Instr.index
       | None -> !fetched);
    issued_total := !issued_total + !issued;
    incr cycle
  done;
  record_point ~cycles:!cycle ~instructions:!issued_total;
  float_of_int !issued_total /. float_of_int !cycle

(* Event-driven kernel over a packed trace.

   Instead of rescanning the whole window every cycle, each in-window
   instruction is parked exactly once per blocking event: on a waiter
   chain of one still-unissued producer, or in a calendar bucket for
   the cycle its last producer's result completes. A cycle drains its
   bucket into a min-heap of ready instructions and pops oldest-first
   up to the issue width — O(instructions woken), not O(window).

   Per-cycle issue decisions are order-independent in the reference
   (a result issued at cycle [c] completes at [c + latency >= c + 1],
   so it can never enable a consumer within the same cycle), which is
   what makes this reformulation bit-identical: an instruction's
   earliest issue cycle is exactly [max(admission cycle, max over
   producers of completion time)], and both kernels issue the oldest
   [limit] instructions whose earliest cycle has arrived. *)
let ipc_of_packed ?(latencies = Fom_isa.Latency.unit) ?issue_limit packed ~window ~n =
  check_shape ~window ~n;
  Fom_check.Checker.ensure ~code:"FOM-I033" ~path:"iw_sim.trace"
    (Packed.length packed >= n + window)
    (Printf.sprintf "packed trace of %d instructions is shorter than run length %d plus \
                     window %d" (Packed.length packed) n window);
  let lat = Latency.table latencies in
  let limit = Option.value issue_limit ~default:max_int in
  (* The run fetches fewer than [n + window] instructions: the window
     is refilled to capacity only while fewer than [n] have issued. *)
  let horizon = n + window in
  let tag = packed.Packed.tag in
  let dep_off = packed.Packed.dep_off in
  let dep_val = packed.Packed.dep_val in
  (* Completion cycle per issued instruction; -1 while unissued. *)
  let comp = Array.make horizon (-1) in
  (* Waiter chains: [whead.(p)] heads the list of admitted consumers
     parked on still-unissued producer [p], linked through [wnext]. *)
  let whead = Array.make horizon (-1) in
  let wnext = Array.make horizon (-1) in
  (* Calendar ring of wakeup buckets: bucket [c land cal_mask] chains
     (through [cal_next]) the instructions whose earliest issue cycle
     is [c]. Wakeups land at most [max_latency] cycles ahead, so a
     power-of-two ring comfortably past that never aliases. *)
  let max_latency = Array.fold_left max 1 lat in
  let cal_size =
    let rec grow s = if s >= max_latency + 2 then s else grow (2 * s) in
    grow 8
  in
  let cal_mask = cal_size - 1 in
  let cal = Array.make cal_size (-1) in
  let cal_next = Array.make horizon (-1) in
  (* Min-heap of ready (admitted, all producers complete) unissued
     instructions; ordering by index is issue age order. *)
  let heap = Array.make window 0 in
  let heap_len = ref 0 in
  let heap_push v =
    if !heap_len >= window then Fom_check.Checker.internal_error "issue heap overflow";
    let k = ref !heap_len in
    incr heap_len;
    heap.(!k) <- v;
    let sifting = ref true in
    while !sifting && !k > 0 do
      let parent = (!k - 1) / 2 in
      if heap.(parent) > heap.(!k) then begin
        let tmp = heap.(parent) in
        heap.(parent) <- heap.(!k);
        heap.(!k) <- tmp;
        k := parent
      end
      else sifting := false
    done
  in
  let heap_pop () =
    let top = heap.(0) in
    decr heap_len;
    heap.(0) <- heap.(!heap_len);
    let k = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !k) + 1 and r = (2 * !k) + 2 in
      let s = ref !k in
      if l < !heap_len && heap.(l) < heap.(!s) then s := l;
      if r < !heap_len && heap.(r) < heap.(!s) then s := r;
      if !s <> !k then begin
        let tmp = heap.(!s) in
        heap.(!s) <- heap.(!k);
        heap.(!k) <- tmp;
        k := !s
      end
      else sifting := false
    done;
    top
  in
  let cycle = ref 0 in
  (* Park instruction [w]: chain it on its first still-unissued
     producer, or — every producer issued — resolve its earliest issue
     cycle to [max(floor, latest producer completion)] and either make
     it immediately ready or book a calendar wakeup. *)
  let place w ~floor =
    let hi = dep_off.(w + 1) in
    let rec scan k ready =
      if k >= hi then begin
        let r = if ready < floor then floor else ready in
        if r <= !cycle then heap_push w
        else begin
          let b = r land cal_mask in
          cal_next.(w) <- cal.(b);
          cal.(b) <- w
        end
      end
      else begin
        let d = dep_val.(k) in
        let cd = comp.(d) in
        if cd < 0 then begin
          wnext.(w) <- whead.(d);
          whead.(d) <- w
        end
        else scan (k + 1) (if cd > ready then cd else ready)
      end
    in
    scan dep_off.(w) 0
  in
  let admitted = ref 0 in
  let issued_total = ref 0 in
  while !issued_total < n do
    (* Refill the window to capacity (instant fetch): a newly admitted
       instruction may issue this very cycle. *)
    while !admitted - !issued_total < window do
      place !admitted ~floor:!cycle;
      incr admitted
    done;
    (* Wake this cycle's calendar bucket. *)
    let b = !cycle land cal_mask in
    let woken = ref cal.(b) in
    cal.(b) <- -1;
    while !woken >= 0 do
      let next = cal_next.(!woken) in
      heap_push !woken;
      woken := next
    done;
    (* Issue ready instructions oldest-first up to the width limit;
       leftovers stay in the heap for later cycles. *)
    let issued = ref 0 in
    while !issued < limit && !heap_len > 0 do
      let w = heap_pop () in
      comp.(w) <- !cycle + lat.(tag.(w));
      incr issued;
      (* Its waiters re-park: on another unissued producer, or into a
         wakeup bucket (their earliest cycle is at least [cycle + 1],
         this result's completion, so none re-enters this cycle's
         issue). *)
      let u = ref whead.(w) in
      whead.(w) <- -1;
      while !u >= 0 do
        let next = wnext.(!u) in
        place !u ~floor:(!cycle + 1);
        u := next
      done
    done;
    issued_total := !issued_total + !issued;
    incr cycle
  done;
  record_point ~cycles:!cycle ~instructions:!issued_total;
  float_of_int !issued_total /. float_of_int !cycle

let ipc ?latencies ?issue_limit program ~window ~n =
  ipc_of_source ?latencies ?issue_limit (Fom_trace.Source.of_program program) ~window ~n
