type point = { window : int; ipc : float }

type t = { points : point list; fit : Fom_util.Fit.power_law }

let default_windows = [ 4; 8; 16; 32; 64; 128; 256 ]

(* Observability (no-ops unless an Fom_obs sink is enabled). *)
let s_point = Fom_obs.Span.id "iw.point"
let h_window = Fom_obs.Metrics.histogram "iw.window_size"

let check_windows windows =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"iw_curve.windows" (windows <> [])
    "at least one window size is required"

let measure_packed ?pool ?(windows = default_windows) ?(n = 30_000) ?latencies ?issue_limit
    packed =
  check_windows windows;
  let windows = List.sort_uniq compare windows in
  let point window =
    Fom_obs.Metrics.observe h_window window;
    Fom_obs.Span.with_ s_point (fun () ->
        { window; ipc = Iw_sim.ipc_of_packed ?latencies ?issue_limit packed ~window ~n })
  in
  let points =
    match pool with
    | Some pool when Fom_exec.Pool.jobs pool > 1 ->
        (* One window per task. The packed trace is immutable flat
           arrays, so every domain reads the same columns in place —
           no copying, and the same kernel as the sequential path, so
           the points (hence the fit) are bit-identical either way. *)
        Fom_exec.Pool.map pool ~f:point windows
    | Some _ | None -> List.map point windows
  in
  let fit =
    Fom_util.Fit.power_law
      (Array.of_list (List.map (fun p -> (float_of_int p.window, p.ipc)) points))
  in
  { points; fit }

let measure_source ?pool ?windows ?(n = 30_000) ?latencies ?issue_limit source =
  let windows = match windows with Some w -> w | None -> default_windows in
  check_windows windows;
  (* The kernel fetches up to a window beyond the [n] it issues, so
     the packing carries the largest window of margin — replay is then
     exact for every sweep point, never wrapping. *)
  let max_window = List.fold_left Stdlib.max 1 windows in
  let packed = Fom_trace.Packed.of_source source ~n:(n + max_window) in
  measure_packed ?pool ~windows ~n ?latencies ?issue_limit packed

let measure ?pool ?windows ?n ?latencies ?issue_limit program =
  measure_source ?pool ?windows ?n ?latencies ?issue_limit
    (Fom_trace.Source.of_program program)

let alpha t = t.fit.Fom_util.Fit.alpha
let beta t = t.fit.Fom_util.Fit.beta

let log2 x = Float.log x /. Float.log 2.0

let log2_points t =
  List.map (fun p -> (log2 (float_of_int p.window), log2 p.ipc)) t.points
