type point = { window : int; ipc : float }

type t = { points : point list; fit : Fom_util.Fit.power_law }

let default_windows = [ 4; 8; 16; 32; 64; 128; 256 ]

let measure_source ?(windows = default_windows) ?(n = 30_000) ?latencies ?issue_limit source =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"iw_curve.windows" (windows <> [])
    "at least one window size is required";
  let points =
    List.map
      (fun window ->
        { window; ipc = Iw_sim.ipc_of_source ?latencies ?issue_limit source ~window ~n })
      (List.sort_uniq compare windows)
  in
  let fit =
    Fom_util.Fit.power_law
      (Array.of_list (List.map (fun p -> (float_of_int p.window, p.ipc)) points))
  in
  { points; fit }

let measure ?windows ?n ?latencies ?issue_limit program =
  measure_source ?windows ?n ?latencies ?issue_limit (Fom_trace.Source.of_program program)

let alpha t = t.fit.Fom_util.Fit.alpha
let beta t = t.fit.Fom_util.Fit.beta

let log2 x = Float.log x /. Float.log 2.0

let log2_points t =
  List.map (fun p -> (log2 (float_of_int p.window), log2 p.ipc)) t.points
