type point = { window : int; ipc : float }

type t = { points : point list; fit : Fom_util.Fit.power_law }

let default_windows = [ 4; 8; 16; 32; 64; 128; 256 ]

let measure_source ?pool ?(windows = default_windows) ?(n = 30_000) ?latencies ?issue_limit
    source =
  Fom_check.Checker.ensure ~code:"FOM-I030" ~path:"iw_curve.windows" (windows <> [])
    "at least one window size is required";
  let windows = List.sort_uniq compare windows in
  let point source window =
    { window; ipc = Iw_sim.ipc_of_source ?latencies ?issue_limit source ~window ~n }
  in
  let points =
    match pool with
    | Some pool when Fom_exec.Pool.jobs pool > 1 ->
        (* One window per task. Each sequential measurement replays the
           source from scratch anyway (one fresh pass per window), so
           parallel tasks replaying a materialized copy of that same
           trace see bit-identical instructions; materializing once
           also makes the sweep safe for sources whose factories are
           not reentrant (e.g. user [of_factory] thunks). The
           simulator fetches up to a window beyond the [n] it issues,
           so the recording carries two max-windows of margin to keep
           the replay exact rather than wrapping early. *)
        let max_window = List.fold_left Stdlib.max 1 windows in
        let recorded =
          Fom_trace.Source.of_instrs
            ~label:(Fom_trace.Source.label source)
            (Fom_trace.Source.record source ~n:(n + (2 * max_window)))
        in
        Fom_exec.Pool.map pool ~f:(point recorded) windows
    | Some _ | None -> List.map (point source) windows
  in
  let fit =
    Fom_util.Fit.power_law
      (Array.of_list (List.map (fun p -> (float_of_int p.window, p.ipc)) points))
  in
  { points; fit }

let measure ?pool ?windows ?n ?latencies ?issue_limit program =
  measure_source ?pool ?windows ?n ?latencies ?issue_limit
    (Fom_trace.Source.of_program program)

let alpha t = t.fit.Fom_util.Fit.alpha
let beta t = t.fit.Fom_util.Fit.beta

let log2 x = Float.log x /. Float.log 2.0

let log2_points t =
  List.map (fun p -> (log2 (float_of_int p.window), log2 p.ipc)) t.points
