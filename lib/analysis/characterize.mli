(** Assemble the model's inputs from trace analysis alone.

    This is the paper's full input pipeline (Section 5, steps 1 and
    5): the idealized IW curve gives alpha/beta; the functional
    profile gives the mean latency, the miss-event rates, the
    misprediction bursts, and the long-miss group distribution for the
    machine's ROB size. No detailed simulation is involved. *)

val inputs :
  ?pool:Fom_exec.Pool.t ->
  ?windows:int list -> ?iw_instructions:int ->
  ?cache:Fom_cache.Hierarchy.config ->
  ?predictor:Fom_branch.Predictor.spec ->
  ?latencies:Fom_isa.Latency.t ->
  ?grouping:Profile.grouping ->
  ?dtlb:Fom_cache.Tlb.spec ->
  params:Fom_model.Params.t ->
  Fom_trace.Program.t -> n:int -> Fom_model.Inputs.t
(** [inputs ~params program ~n] profiles [n] instructions and measures
    the IW curve (default windows and 30k instructions per point).
    [params] supplies the burst window (issue window size) and the
    group window (ROB size). Cache, predictor and latencies default to
    the paper's baseline. [?pool] parallelizes the IW-curve points
    (see {!Iw_curve.measure}); results are bit-identical to the
    sequential path. *)

val inputs_of_source :
  ?pool:Fom_exec.Pool.t ->
  ?windows:int list -> ?iw_instructions:int ->
  ?cache:Fom_cache.Hierarchy.config ->
  ?predictor:Fom_branch.Predictor.spec ->
  ?latencies:Fom_isa.Latency.t ->
  ?grouping:Profile.grouping ->
  ?dtlb:Fom_cache.Tlb.spec ->
  params:Fom_model.Params.t ->
  Fom_trace.Source.t -> n:int -> Fom_model.Inputs.t
(** {!inputs} over any replayable source — the bring-your-own-trace
    path: characterize an imported trace and model it without any
    synthetic generation. *)

val curve_and_inputs :
  ?pool:Fom_exec.Pool.t ->
  ?windows:int list -> ?iw_instructions:int ->
  ?cache:Fom_cache.Hierarchy.config ->
  ?predictor:Fom_branch.Predictor.spec ->
  ?latencies:Fom_isa.Latency.t ->
  ?grouping:Profile.grouping ->
  ?dtlb:Fom_cache.Tlb.spec ->
  params:Fom_model.Params.t ->
  Fom_trace.Program.t -> n:int -> Iw_curve.t * Profile.t * Fom_model.Inputs.t
(** Like {!inputs} but also returns the raw curve and profile, for
    harnesses that print them (Table 1, Figures 4–5). *)

val curve_and_inputs_of_source :
  ?pool:Fom_exec.Pool.t ->
  ?windows:int list -> ?iw_instructions:int ->
  ?cache:Fom_cache.Hierarchy.config ->
  ?predictor:Fom_branch.Predictor.spec ->
  ?latencies:Fom_isa.Latency.t ->
  ?grouping:Profile.grouping ->
  ?dtlb:Fom_cache.Tlb.spec ->
  params:Fom_model.Params.t ->
  Fom_trace.Source.t -> n:int -> Iw_curve.t * Profile.t * Fom_model.Inputs.t
(** {!curve_and_inputs} over any replayable source. The source is
    packed once ({!Fom_trace.Packed}) and both passes — the IW sweep
    and the functional profile — replay the packed columns. *)

val curve_and_inputs_of_packed :
  ?pool:Fom_exec.Pool.t ->
  ?windows:int list -> ?iw_instructions:int ->
  ?cache:Fom_cache.Hierarchy.config ->
  ?predictor:Fom_branch.Predictor.spec ->
  ?latencies:Fom_isa.Latency.t ->
  ?grouping:Profile.grouping ->
  ?dtlb:Fom_cache.Tlb.spec ->
  params:Fom_model.Params.t ->
  Fom_trace.Packed.t -> n:int -> Iw_curve.t * Profile.t * Fom_model.Inputs.t
(** {!curve_and_inputs} over an already-packed trace — for callers
    (e.g. the bench harness) sharing one packing between
    characterization and detailed simulation. The packing must cover
    the profile's [n] instructions ([FOM-I033]) and the IW sweep's
    needs (see {!Iw_curve.measure_packed}). *)
