type severity = Error | Warning | Hint

type t = {
  code : string;
  severity : severity;
  path : string;
  message : string;
}

let make ?(severity = Error) ~code ~path message =
  { code; severity; path; message }

let is_error t = t.severity = Error

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.path b.path in
    if c <> 0 then c else String.compare a.code b.code

let to_string t =
  Printf.sprintf "%s[%s] %s: %s" (severity_label t.severity) t.code t.path t.message

let pp fmt t = Format.pp_print_string fmt (to_string t)
