(** Collect-all validation combinators.

    A checker rule is simply a [Diagnostic.t list]: empty when the
    value is well-formed, one entry per violation otherwise. Rules
    compose with {!all}, so a module's [check] function returns every
    problem in one pass:

    {[
      let check t =
        let module C = Fom_check.Checker in
        C.all
          [
            C.min_int ~code:"FOM-P001" ~path:"params.width" ~min:1 t.width;
            C.check ~code:"FOM-P004" ~path:"params.window_size"
              (t.window_size <= t.rob_size)
              "window must fit in the ROB";
          ]

      let validate t = Fom_check.Checker.run_exn (check t)
    ]}

    [validate] keeps the historical [t -> unit] shape but raises the
    structured {!Invalid} (carrying every error) instead of a bare
    [Assert_failure] — and, unlike [assert], survives [-noassert]. *)

exception Invalid of Diagnostic.t list
(** Raised by {!run_exn} and {!ensure} with the complete list of
    error-severity diagnostics. A printer is registered, so an
    uncaught [Invalid] renders the full report. *)

type rule = Diagnostic.t list
(** [[]] means the checked value passed. *)

val ok : rule

val all : rule list -> rule
(** Concatenation: every violation from every sub-rule. *)

val fail : ?severity:Diagnostic.severity -> code:string -> path:string -> string -> rule
(** Unconditional diagnostic. *)

val check : ?severity:Diagnostic.severity -> code:string -> path:string -> bool -> string -> rule
(** [check ~code ~path cond msg] is [ok] when [cond] holds. *)

val min_int : code:string -> path:string -> min:int -> int -> rule
val min_float : code:string -> path:string -> min:float -> float -> rule

val positive_float : code:string -> path:string -> float -> rule
(** Finite and strictly positive. *)

val fraction : code:string -> path:string -> float -> rule
(** Finite and within [[0, 1]] — a probability or a rate per
    instruction. *)

val positive_fraction : code:string -> path:string -> float -> rule
(** Finite and within [(0, 1]] (e.g. the IW exponent beta, a fit
    r-squared). *)

val sum_to_one :
  ?tol:float -> code:string -> path:string -> (string * float) list -> rule
(** [sum_to_one ~code ~path parts] checks the labelled fields sum to
    1 within [tol] (default [1e-6]). *)

val errors : rule -> Diagnostic.t list
val warnings : rule -> Diagnostic.t list

val has_errors : rule -> bool

val run_exn : rule -> unit
(** Raise {!Invalid} with the error-severity diagnostics, if any.
    Warnings and hints never raise. *)

val ensure : ?severity:Diagnostic.severity -> code:string -> path:string -> bool -> string -> unit
(** Immediate single-condition precondition: raise {!Invalid} with
    one diagnostic when the condition fails. For hot construction
    paths pass a static message string — nothing allocates when the
    condition holds. *)

val capture : (unit -> unit) -> rule
(** Run a [validate]-style thunk, turning a raised {!Invalid} into
    the rule it carried. *)

val internal_error : string -> 'a
(** Report a violated internal invariant (code [FOM-X001]) — the
    replacement for [assert false] on unreachable paths. *)

val pp_report : Format.formatter -> rule -> unit
(** Every diagnostic (sorted by severity, then path) one per line,
    followed by a summary count line. *)

val summary : rule -> string
(** E.g. ["2 errors, 1 warning"] or ["no diagnostics"]. *)
