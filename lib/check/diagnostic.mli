(** Structured diagnostics.

    Every validation failure in this repository is reported as a
    [Diagnostic.t]: a stable error code, a severity, a context path
    naming the offending field (e.g. [params.window_size] or
    [trace.txt:12]), and a human-readable message. Checkers collect
    *all* diagnostics for a value instead of aborting on the first,
    so a user fixing a configuration sees every problem at once.

    Code namespaces (documented in the README):
    - [FOM-Pxxx] — model parameters ({!Fom_model.Params})
    - [FOM-Ixxx] — model inputs and analysis requests
      ({!Fom_model.Inputs}, {!Fom_analysis})
    - [FOM-Txxx] — trace and workload configuration
      ({!Fom_trace}: configs, behaviours, phases, trace files)
    - [FOM-Mxxx] — machine description ({!Fom_uarch.Config}, caches,
      predictor, latencies, functional units)
    - [FOM-Uxxx] — utility-function domain errors ({!Fom_util})
    - [FOM-Lxxx] — source lint findings ([tools/lint])
    - [FOM-Exxx] — parallel execution ([Fom_exec]: worker counts,
      task failures, pool lifecycle)
    - [FOM-Oxxx] — observability ([Fom_obs]: metric registry, span
      buffers)
    - [FOM-X001] — internal invariant violation (a bug, not bad input) *)

type severity = Error | Warning | Hint

type t = {
  code : string;  (** stable code, e.g. ["FOM-P004"] *)
  severity : severity;
  path : string;  (** context path, e.g. ["params.window_size"] *)
  message : string;
}

val make : ?severity:severity -> code:string -> path:string -> string -> t
(** [make ~code ~path message] is an [Error] diagnostic unless
    [?severity] says otherwise. *)

val is_error : t -> bool

val severity_label : severity -> string
(** ["error"], ["warning"] or ["hint"]. *)

val compare : t -> t -> int
(** Orders by decreasing severity, then path, then code — the order
    reports are printed in. *)

val to_string : t -> string
(** One line: [error[FOM-P004] params.window_size: message]. *)

val pp : Format.formatter -> t -> unit
