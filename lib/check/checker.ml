exception Invalid of Diagnostic.t list

type rule = Diagnostic.t list

let ok = []
let all = List.concat

let fail ?severity ~code ~path message =
  [ Diagnostic.make ?severity ~code ~path message ]

let check ?severity ~code ~path cond message =
  if cond then [] else fail ?severity ~code ~path message

let min_int ~code ~path ~min v =
  if v >= min then []
  else fail ~code ~path (Printf.sprintf "must be at least %d, got %d" min v)

let min_float ~code ~path ~min v =
  if Float.is_finite v && v >= min then []
  else fail ~code ~path (Printf.sprintf "must be at least %g, got %g" min v)

let positive_float ~code ~path v =
  if Float.is_finite v && v > 0.0 then []
  else fail ~code ~path (Printf.sprintf "must be positive, got %g" v)

let fraction ~code ~path v =
  if Float.is_finite v && v >= 0.0 && v <= 1.0 then []
  else fail ~code ~path (Printf.sprintf "must be within [0, 1], got %g" v)

let positive_fraction ~code ~path v =
  if Float.is_finite v && v > 0.0 && v <= 1.0 then []
  else fail ~code ~path (Printf.sprintf "must be within (0, 1], got %g" v)

let sum_to_one ?(tol = 1e-6) ~code ~path parts =
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 parts in
  if Float.is_finite total && Float.abs (total -. 1.0) <= tol then []
  else
    fail ~code ~path
      (Printf.sprintf "%s must sum to 1, got %g"
         (String.concat " + " (List.map fst parts))
         total)

let errors rule = List.filter Diagnostic.is_error rule

let warnings rule =
  List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Warning) rule

let has_errors rule = List.exists Diagnostic.is_error rule

let run_exn rule =
  match errors rule with [] -> () | errs -> raise (Invalid errs)

let ensure ?severity ~code ~path cond message =
  if cond then ()
  else raise (Invalid [ Diagnostic.make ?severity ~code ~path message ])

let capture f = try f (); [] with Invalid diags -> diags

let internal_error message =
  raise (Invalid [ Diagnostic.make ~code:"FOM-X001" ~path:"internal" message ])

let summary rule =
  let count label = function
    | 0 -> None
    | 1 -> Some ("1 " ^ label)
    | n -> Some (Printf.sprintf "%d %ss" n label)
  in
  let ne = List.length (errors rule) in
  let nw = List.length (warnings rule) in
  let nh = List.length rule - ne - nw in
  match List.filter_map Fun.id [ count "error" ne; count "warning" nw; count "hint" nh ] with
  | [] -> "no diagnostics"
  | parts -> String.concat ", " parts

let pp_report fmt rule =
  let sorted = List.stable_sort Diagnostic.compare rule in
  List.iter (fun d -> Format.fprintf fmt "%a@\n" Diagnostic.pp d) sorted;
  Format.pp_print_string fmt (summary rule)

let () =
  Printexc.register_printer (function
    | Invalid diags ->
        Some
          (Printf.sprintf "Invalid configuration:\n%s"
             (String.concat "\n"
                (List.map Diagnostic.to_string (List.stable_sort Diagnostic.compare diags))))
    | _ -> None)
