(** Machine configuration for the detailed simulator.

    The modeled processor is the paper's first-order superscalar
    machine (Section 1): a single homogeneous issue window with
    oldest-first out-of-order issue, a separate reorder buffer, equal
    fetch/pipeline/dispatch/issue/retire width [i], a parameterized
    front-end depth, unbounded functional units of each type, and
    caches and a branch predictor but no prefetching. *)

type t = {
  width : int;  (** [i]: fetch = dispatch = issue = retire width *)
  pipeline_depth : int;  (** front-end stages between fetch and dispatch *)
  window_size : int;  (** issue window entries *)
  rob_size : int;  (** reorder buffer entries *)
  unbounded_issue : bool;  (** ignore [width] at issue (IW measurements) *)
  latencies : Fom_isa.Latency.t;
  cache : Fom_cache.Hierarchy.config;
  predictor : Fom_branch.Predictor.spec;
  (* Section 7 extensions — all disabled on the paper's baseline. *)
  fu_limits : Fom_isa.Fu_set.t;  (** per-class functional-unit counts *)
  dtlb : Fom_cache.Tlb.spec option;  (** data TLB; [None] = perfect *)
  fetch_buffer : int;  (** extra fetch-buffer entries past the pipe *)
  clusters : int;
      (** issue-window partitions: dispatch steers round-robin, each
          cluster issues [width/clusters] per cycle from its
          [window_size/clusters] entries, and consuming a value
          produced in another cluster costs one bypass cycle. 1 =
          the paper's unified window. Must divide both the width and
          the window size. *)
}

val baseline : t
(** The paper's baseline: width 4, five front-end stages, a 48-entry
    window, a 128-entry ROB, 4K/4-way L1s under a 512K L2 and an
    8K-entry gShare. *)

val check : t -> Fom_check.Diagnostic.t list
(** All diagnostics for the configuration: structural sanity
    ([FOM-M001]..[FOM-M008] — positive sizes, window <= ROB, clusters
    dividing width and window; [FOM-I032] — the in-flight span must
    fit the largest supported completion ring, see {!comp_ring_bits})
    plus the component checks (latencies, functional units, predictor,
    cache hierarchy, optional TLB). Empty list = valid. *)

val max_comp_ring_bits : int
(** Upper bound on {!comp_ring_bits}: configurations whose in-flight
    span needs more are rejected by {!check} with [FOM-I032] instead
    of silently aliasing completion lookups. *)

val inflight_span : t -> int
(** Worst-case spread of in-flight dynamic indices: ROB residents plus
    the front-end pipe ([rob_size + width * pipeline_depth +
    fetch_buffer], with a small safety margin). *)

val comp_ring_bits : t -> int
(** log2 size of the completion-tracking ring {!Machine} allocates for
    this configuration — the smallest power of two strictly above
    {!inflight_span}, so in-flight instructions always map to distinct
    slots. *)

val comp_ring_size : t -> int
(** [1 lsl comp_ring_bits t]. *)

val validate : t -> unit
(** @raise Fom_check.Checker.Invalid if {!check} reports any error. *)

val ideal : ?width:int -> ?window_size:int -> t -> t
(** Idealize a configuration: perfect caches and branch prediction,
    keeping sizes from the base (with optional overrides). *)

val with_cache : Fom_cache.Hierarchy.config -> t -> t
val with_predictor : Fom_branch.Predictor.spec -> t -> t
val with_depth : int -> t -> t
val with_width : int -> t -> t
val with_fu_limits : Fom_isa.Fu_set.t -> t -> t
val with_dtlb : Fom_cache.Tlb.spec -> t -> t
val with_fetch_buffer : int -> t -> t
val with_clusters : int -> t -> t
