(** Convenience drivers over {!Machine}. *)

val run : ?kernel:Machine.kernel -> Config.t -> Fom_trace.Program.t -> n:int -> Stats.t
(** Simulate [n] instructions of a fresh stream over the program.
    [kernel] selects the issue-stage implementation (see
    {!Machine.kernel}; default [Event]). *)

val run_config : Config.t -> Fom_trace.Config.t -> n:int -> Stats.t
(** Generate the program from a workload config, then {!run}. *)

val run_source : ?kernel:Machine.kernel -> Config.t -> Fom_trace.Source.t -> n:int -> Stats.t
(** {!run} over any replayable source (e.g. an imported trace). *)

val run_packed : ?kernel:Machine.kernel -> Config.t -> Fom_trace.Packed.t -> n:int -> Stats.t
(** {!run} fed directly from packed columns (see
    {!Machine.create_packed}) — the fastest replay path, bit-identical
    to {!run} over the same trace. The packing must cover at least the
    instructions the machine fetches: [n] plus the in-flight span
    ({!Config.inflight_span}). *)

type event_penalty = {
  events : int;  (** miss-events of the isolated kind *)
  penalty_per_event : float;  (** measured cycles per event *)
}

val isolate :
  base:Config.t -> faulty:Config.t -> events:(Stats.t -> int) ->
  Fom_trace.Program.t -> n:int -> event_penalty
(** The paper's differencing methodology (Figures 9, 11, 14): simulate
    the same trace under [faulty] (one real structure) and [base]
    (everything ideal), and attribute the cycle difference to the
    miss-events counted by [events] in the faulty run. *)
