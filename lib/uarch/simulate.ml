let run_source ?kernel config source ~n =
  let machine = Machine.create ?kernel config (Fom_trace.Source.fresh source) in
  Machine.run machine ~n

let run_packed ?kernel config packed ~n =
  let machine = Machine.create_packed ?kernel config packed in
  Machine.run machine ~n

let run ?kernel config program ~n =
  run_source ?kernel config (Fom_trace.Source.of_program program) ~n

let run_config config workload ~n = run config (Fom_trace.Program.generate workload) ~n

type event_penalty = { events : int; penalty_per_event : float }

let isolate ~base ~faulty ~events program ~n =
  let faulty_stats = run faulty program ~n in
  let base_stats = run base program ~n in
  let n_events = events faulty_stats in
  let delta = faulty_stats.Stats.cycles - base_stats.Stats.cycles in
  {
    events = n_events;
    penalty_per_event =
      (if n_events = 0 then 0.0 else float_of_int delta /. float_of_int n_events);
  }
