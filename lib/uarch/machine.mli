(** The detailed cycle-level simulator.

    Trace-driven, correct-path timing simulation of the paper's
    first-order superscalar machine. Per simulated cycle, in order:
    retire (up to width, in order, completed only), issue (oldest
    first from the window, up to width, operands ready), dispatch
    (front-end pipe into window and ROB, stalling when either is
    full), fetch (up to width; an I-cache miss stalls fetch for the
    fill delay; a mispredicted conditional branch stops fetch of
    useful instructions until the branch completes, after which the
    refilled front end costs its depth — the paper's Figure 7
    transient). Loads probe the data hierarchy at issue: an L1 hit
    costs the L1 latency, an L2 hit the short-miss latency, an L2 miss
    the memory latency; misses overlap freely (unbounded MSHRs), and a
    long-miss load at the ROB head blocks retirement — the paper's
    Section 4.3 mechanism. Wrong-path instructions are not simulated:
    with oldest-first issue they never displace useful issue slots
    (paper, Section 4.1).

    The paper's five Figure 2 configurations are obtained purely by
    idealizing caches/predictor in the {!Config.t}. *)

type t

type kernel =
  | Scan  (** rescan the whole window every cycle — the reference *)
  | Event  (** wakeup calendar + ready heap — the production kernel *)
(** Two implementations of the issue stage compute identical machines.
    [Scan] examines every window entry every cycle, in direct
    correspondence with the modeled oldest-first scan. [Event] parks
    each waiting instruction on its blocking producer or in a wakeup
    calendar and touches only woken instructions each cycle —
    O(instructions woken) instead of O(window) — and is property-tested
    to produce statistics identical to [Scan] on every run. *)

val create : ?kernel:kernel -> Config.t -> (unit -> Fom_isa.Instr.t) -> t
(** [create config next] builds a machine pulling instructions from
    [next] (typically [Fom_trace.Stream.next]). [kernel] selects the
    issue-stage implementation (default [Event]). *)

val create_packed : ?kernel:kernel -> Config.t -> Fom_trace.Packed.t -> t
(** [create_packed config packed] builds a machine fed directly from a
    packed trace's columns, starting at dynamic index 0. No
    {!Fom_isa.Instr.t} is materialized per instruction, which removes
    the replay path's allocation churn; the decoded fields are
    identical to the thunk path's, so the simulated statistics are
    bit-identical to [create] over the same trace. Raises [FOM-T132]
    if the packing is exhausted before {!run} retires its target. *)

exception Cycle_limit_exceeded
(** Raised when the simulation exceeds its cycle budget — a deadlock
    guard; it should never fire for well-formed traces. *)

val run : ?cycle_limit:int -> t -> n:int -> Stats.t
(** Simulate until [n] instructions retire. The default cycle limit is
    [250 * n + 100_000] (an all-miss trace cannot be slower). *)

val run_recorded : ?cycle_limit:int -> t -> n:int -> Stats.t * int array * int array
(** Like {!run}, additionally recording the per-cycle issue counts and
    the cycles at which a mispredicted branch resolved (fetch
    restarts) — the raw material for empirical issue-ramp curves
    (paper Figure 19) and issue-rate distributions. *)
