type t = {
  width : int;
  pipeline_depth : int;
  window_size : int;
  rob_size : int;
  unbounded_issue : bool;
  latencies : Fom_isa.Latency.t;
  cache : Fom_cache.Hierarchy.config;
  predictor : Fom_branch.Predictor.spec;
  fu_limits : Fom_isa.Fu_set.t;
  dtlb : Fom_cache.Tlb.spec option;
  fetch_buffer : int;
  clusters : int;
}

let baseline =
  {
    width = 4;
    pipeline_depth = 5;
    window_size = 48;
    rob_size = 128;
    unbounded_issue = false;
    latencies = Fom_isa.Latency.default;
    cache = Fom_cache.Hierarchy.baseline;
    predictor = Fom_branch.Predictor.default_spec;
    fu_limits = Fom_isa.Fu_set.unbounded;
    dtlb = None;
    fetch_buffer = 0;
    clusters = 1;
  }

(* Completion bookkeeping in {!Machine} is ring-buffered by dynamic
   instruction index. Everything in flight — ROB residents plus the
   front-end pipe — must map to distinct slots, or completion lookups
   silently alias; the ring is therefore sized from the configuration
   (next power of two past the worst-case span), and configurations
   whose span would need an absurd ring are rejected outright. *)
let max_comp_ring_bits = 24

let inflight_span t = t.rob_size + (t.width * t.pipeline_depth) + t.fetch_buffer + 4

let comp_ring_bits t =
  let span = inflight_span t in
  let rec fit b = if 1 lsl b > span || b >= max_comp_ring_bits then b else fit (b + 1) in
  fit 8

let comp_ring_size t = 1 lsl comp_ring_bits t

let check t =
  let module C = Fom_check.Checker in
  let structural =
    C.all
      [
        C.min_int ~code:"FOM-M001" ~path:"machine.width" ~min:1 t.width;
        C.min_int ~code:"FOM-M002" ~path:"machine.pipeline_depth" ~min:1 t.pipeline_depth;
        C.min_int ~code:"FOM-M003" ~path:"machine.window_size" ~min:1 t.window_size;
        C.check ~code:"FOM-M004" ~path:"machine.window_size"
          (t.rob_size >= t.window_size)
          (Printf.sprintf "window_size (%d) must not exceed rob_size (%d)" t.window_size
             t.rob_size);
        C.min_int ~code:"FOM-M005" ~path:"machine.fetch_buffer" ~min:0 t.fetch_buffer;
        C.check ~code:"FOM-I032" ~path:"machine.rob_size"
          (inflight_span t < 1 lsl max_comp_ring_bits)
          (Printf.sprintf
             "in-flight span of %d (rob_size + width * pipeline_depth + fetch_buffer) \
              exceeds the largest supported completion ring (2^%d entries); completion \
              lookups would silently alias"
             (inflight_span t) max_comp_ring_bits);
        C.min_int ~code:"FOM-M006" ~path:"machine.clusters" ~min:1 t.clusters;
        (if t.clusters >= 1 then
           C.all
             [
               C.check ~code:"FOM-M007" ~path:"machine.clusters"
                 (t.width mod t.clusters = 0)
                 (Printf.sprintf "clusters (%d) must divide width (%d)" t.clusters t.width);
               C.check ~code:"FOM-M008" ~path:"machine.clusters"
                 (t.window_size mod t.clusters = 0)
                 (Printf.sprintf "clusters (%d) must divide window_size (%d)" t.clusters
                    t.window_size);
             ]
         else C.ok);
      ]
  in
  let components =
    C.all
      [
        Fom_isa.Latency.diagnostics t.latencies;
        Fom_isa.Fu_set.diagnostics t.fu_limits;
        Fom_branch.Predictor.diagnostics t.predictor;
        Fom_cache.Hierarchy.diagnostics t.cache;
        (match t.dtlb with Some spec -> Fom_cache.Tlb.diagnostics spec | None -> C.ok);
      ]
  in
  C.all [ structural; components ]

let validate t = Fom_check.Checker.run_exn (check t)

let ideal ?width ?window_size t =
  {
    t with
    width = Option.value width ~default:t.width;
    window_size = Option.value window_size ~default:t.window_size;
    cache = Fom_cache.Hierarchy.all_ideal;
    predictor = Fom_branch.Predictor.Ideal;
  }

let with_cache cache t = { t with cache }
let with_predictor predictor t = { t with predictor }
let with_depth pipeline_depth t = { t with pipeline_depth }
let with_width width t = { t with width }
let with_fu_limits fu_limits t = { t with fu_limits }
let with_dtlb spec t = { t with dtlb = Some spec }
let with_fetch_buffer fetch_buffer t = { t with fetch_buffer }
let with_clusters clusters t = { t with clusters }
