module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Latency = Fom_isa.Latency
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor

exception Cycle_limit_exceeded

type inflight = {
  instr : Instr.t;
  mutable issue_time : int;  (* -1 until issued *)
  mutable complete_time : int;  (* max_int until issued *)
  mutable cluster : int;  (* assigned at dispatch *)
}

(* Completion-time ring: complete_time of recently issued instructions,
   keyed by dynamic index. The span of in-flight instructions is at
   most ROB + front end, far below the ring size, so an entry is valid
   exactly when its stored index matches. *)
let comp_ring_bits = 13
let comp_ring_size = 1 lsl comp_ring_bits
let comp_ring_mask = comp_ring_size - 1

type t = {
  config : Config.t;
  next_instr : unit -> Instr.t;
  (* completion tracking *)
  comp_idx : int array;
  comp_time : int array;
  comp_cluster : int array;
  mutable last_retired : int;  (* highest retired dynamic index *)
  (* front end *)
  pipe : (inflight * int) Queue.t;  (* instruction, dispatchable-at cycle *)
  mutable pending : Instr.t option;  (* fetched but stalled on an I-miss *)
  mutable fetch_stall_until : int;
  mutable blocking_branch : inflight option;
  mutable last_line : int;
  (* window: age-ordered dense array *)
  window : inflight option array;
  mutable win_count : int;
  cluster_counts : int array;  (* window occupancy per cluster *)
  cluster_issued : int array;  (* issues this cycle per cluster *)
  mutable next_cluster : int;  (* round-robin dispatch steering *)
  (* rob: circular *)
  rob : inflight option array;
  mutable rob_head : int;
  mutable rob_count : int;
  (* memory system *)
  hierarchy : Hierarchy.t;
  predictor : Predictor.t;
  dtlb : Fom_cache.Tlb.t option;
  long_miss_completions : int Queue.t;
  (* per-cycle structural state *)
  fu_busy : int array;  (* instructions issued this cycle per class *)
  (* bookkeeping *)
  mutable cycle : int;
  mutable retired : int;
  (* optional per-cycle recording *)
  mutable recording : bool;
  mutable issued_this_cycle : int;
  mutable issue_record : int list;  (* reversed *)
  mutable resolve_record : int list;  (* reversed *)
  (* statistics *)
  mutable short_load_misses : int;
  mutable long_load_misses : int;
  mutable dtlb_misses : int;
  mutable mispredictions : int;
  mutable mispred_under_long : int;
  mutable imiss_under_long : int;
  window_at_branch_issue : Fom_util.Stats.Acc.t;
  rob_ahead_of_long_miss : Fom_util.Stats.Acc.t;
  mutable occupancy_window_sum : int;
  mutable occupancy_rob_sum : int;
}

let create config next_instr =
  Config.validate config;
  {
    config;
    next_instr;
    comp_idx = Array.make comp_ring_size (-1);
    comp_time = Array.make comp_ring_size 0;
    comp_cluster = Array.make comp_ring_size 0;
    last_retired = -1;
    pipe = Queue.create ();
    pending = None;
    fetch_stall_until = 0;
    blocking_branch = None;
    last_line = -1;
    window = Array.make config.Config.window_size None;
    win_count = 0;
    cluster_counts = Array.make config.Config.clusters 0;
    cluster_issued = Array.make config.Config.clusters 0;
    next_cluster = 0;
    rob = Array.make config.Config.rob_size None;
    rob_head = 0;
    rob_count = 0;
    hierarchy = Hierarchy.create config.Config.cache;
    predictor = Predictor.create config.Config.predictor;
    dtlb = Option.map Fom_cache.Tlb.create config.Config.dtlb;
    long_miss_completions = Queue.create ();
    fu_busy = Array.make (List.length Opclass.all) 0;
    cycle = 0;
    retired = 0;
    recording = false;
    issued_this_cycle = 0;
    issue_record = [];
    resolve_record = [];
    short_load_misses = 0;
    long_load_misses = 0;
    dtlb_misses = 0;
    mispredictions = 0;
    mispred_under_long = 0;
    imiss_under_long = 0;
    window_at_branch_issue = Fom_util.Stats.Acc.create ();
    rob_ahead_of_long_miss = Fom_util.Stats.Acc.create ();
    occupancy_window_sum = 0;
    occupancy_rob_sum = 0;
  }

(* A value produced in another cluster needs one extra bypass cycle
   (ancient producers are long past any bypass network). *)
let dep_complete t ~cluster d =
  d <= t.last_retired
  ||
  let slot = d land comp_ring_mask in
  t.comp_idx.(slot) = d
  &&
  let bypass = if t.comp_cluster.(slot) = cluster then 0 else 1 in
  t.comp_time.(slot) + bypass <= t.cycle

let deps_ready t (f : inflight) =
  let deps = f.instr.Instr.deps in
  let cluster = f.cluster in
  let rec check i =
    i >= Array.length deps || (dep_complete t ~cluster deps.(i) && check (i + 1))
  in
  check 0

let record_completion t index time ~cluster =
  let slot = index land comp_ring_mask in
  t.comp_idx.(slot) <- index;
  t.comp_time.(slot) <- time;
  t.comp_cluster.(slot) <- cluster

let long_misses_outstanding t =
  while
    (not (Queue.is_empty t.long_miss_completions))
    && Queue.peek t.long_miss_completions <= t.cycle
  do
    ignore (Queue.pop t.long_miss_completions)
  done;
  Queue.length t.long_miss_completions

let retire t =
  let rob_size = Array.length t.rob in
  let budget = ref t.config.Config.width in
  let continue_ = ref true in
  while !continue_ && !budget > 0 && t.rob_count > 0 do
    match t.rob.(t.rob_head) with
    | Some f when f.complete_time <= t.cycle ->
        t.rob.(t.rob_head) <- None;
        t.rob_head <- (t.rob_head + 1) mod rob_size;
        t.rob_count <- t.rob_count - 1;
        t.last_retired <- f.instr.Instr.index;
        t.retired <- t.retired + 1;
        decr budget
    | Some _ -> continue_ := false
    | None -> Fom_check.Checker.internal_error "ROB head empty while rob_count > 0"
  done

(* Translate a memory access; a TLB miss adds the walk latency up
   front (the walk precedes the cache access). Store misses fill the
   TLB but are not counted as miss-events: the write buffer hides
   them, mirroring the treatment of store cache misses. *)
let translate ?(count = true) t addr =
  match t.dtlb with
  | None -> 0
  | Some dtlb ->
      if Fom_cache.Tlb.access dtlb addr then 0
      else begin
        if count then t.dtlb_misses <- t.dtlb_misses + 1;
        (Fom_cache.Tlb.spec dtlb).Fom_cache.Tlb.walk_latency
      end

let issue_latency t (f : inflight) =
  let lat = Latency.of_class t.config.Config.latencies f.instr.Instr.opclass in
  match f.instr.Instr.opclass with
  | Opclass.Load ->
      let addr = Instr.mem_exn f.instr in
      let walk = translate t addr in
      let outcome = Hierarchy.access_data t.hierarchy addr in
      let cache_lat = Hierarchy.data_latency t.hierarchy outcome in
      if outcome = Hierarchy.L2_hit then t.short_load_misses <- t.short_load_misses + 1;
      if outcome = Hierarchy.Memory then begin
        t.long_load_misses <- t.long_load_misses + 1;
        Queue.push (t.cycle + walk + cache_lat) t.long_miss_completions;
        (* Entries in the ROB ahead of this load: dynamic indices in
           the ROB are consecutive, so it is an index difference. *)
        (match t.rob.(t.rob_head) with
        | Some head ->
            Fom_util.Stats.Acc.add t.rob_ahead_of_long_miss
              (float_of_int (f.instr.Instr.index - head.instr.Instr.index))
        | None -> ());
        walk + cache_lat
      end
      else walk + Stdlib.max lat cache_lat
  | Opclass.Store ->
      (* Stores update the TLB and cache for residency but never
         block: a write buffer absorbs them (the paper models
         data-cache penalties through loads only). *)
      let addr = Instr.mem_exn f.instr in
      ignore (translate ~count:false t addr);
      ignore (Hierarchy.access_data t.hierarchy addr);
      lat
  | Opclass.Alu | Opclass.Mul | Opclass.Div | Opclass.Branch | Opclass.Jump -> lat

let class_slot =
  let slots = List.mapi (fun i c -> (c, i)) Opclass.all in
  fun cls -> List.assq cls slots

let fu_available t (f : inflight) =
  Fom_isa.Fu_set.is_unbounded t.config.Config.fu_limits
  || t.fu_busy.(class_slot f.instr.Instr.opclass)
     < Fom_isa.Fu_set.of_class t.config.Config.fu_limits f.instr.Instr.opclass

let issue t =
  let width = t.config.Config.width in
  let clusters = t.config.Config.clusters in
  let cluster_width = width / clusters in
  let unbounded = t.config.Config.unbounded_issue in
  Array.fill t.fu_busy 0 (Array.length t.fu_busy) 0;
  Array.fill t.cluster_issued 0 clusters 0;
  let issued = ref 0 in
  let kept = ref 0 in
  for i = 0 to t.win_count - 1 do
    match t.window.(i) with
    | None -> Fom_check.Checker.internal_error "window slot empty below win_count"
    | Some f ->
        if
          (unbounded || (!issued < width && t.cluster_issued.(f.cluster) < cluster_width))
          && fu_available t f && deps_ready t f
        then begin
          t.fu_busy.(class_slot f.instr.Instr.opclass) <-
            t.fu_busy.(class_slot f.instr.Instr.opclass) + 1;
          t.cluster_issued.(f.cluster) <- t.cluster_issued.(f.cluster) + 1;
          t.cluster_counts.(f.cluster) <- t.cluster_counts.(f.cluster) - 1;
          f.issue_time <- t.cycle;
          f.complete_time <- t.cycle + issue_latency t f;
          record_completion t f.instr.Instr.index f.complete_time ~cluster:f.cluster;
          (match t.blocking_branch with
          | Some b when b == f ->
              Fom_util.Stats.Acc.add t.window_at_branch_issue
                (float_of_int (t.win_count - !issued - 1))
          | Some _ | None -> ());
          incr issued
        end
        else begin
          (* Compact survivors in place, preserving age order. *)
          t.window.(!kept) <- t.window.(i);
          incr kept
        end
  done;
  for i = !kept to t.win_count - 1 do
    t.window.(i) <- None
  done;
  t.win_count <- !kept;
  t.issued_this_cycle <- !issued

let dispatch t =
  let width = t.config.Config.width in
  let rob_size = Array.length t.rob in
  let budget = ref width in
  let continue_ = ref true in
  while
    !continue_ && !budget > 0
    && t.win_count < t.config.Config.window_size
    && t.rob_count < rob_size
    && not (Queue.is_empty t.pipe)
  do
    let f, ready_at = Queue.peek t.pipe in
    if ready_at <= t.cycle then begin
      ignore (Queue.pop t.pipe);
      (* Round-robin steering; a full cluster passes its turn. *)
      let clusters = t.config.Config.clusters in
      let cluster_capacity = t.config.Config.window_size / clusters in
      let rec steer tries =
        if tries = 0 then None
        else
          let c = t.next_cluster in
          t.next_cluster <- (t.next_cluster + 1) mod clusters;
          if t.cluster_counts.(c) < cluster_capacity then Some c else steer (tries - 1)
      in
      (* The window-space guard ensures at least one cluster has
         room. *)
      let cluster =
        match steer clusters with
        | Some c -> c
        | None -> Fom_check.Checker.internal_error "no cluster has window space at dispatch"
      in
      f.cluster <- cluster;
      t.cluster_counts.(cluster) <- t.cluster_counts.(cluster) + 1;
      t.window.(t.win_count) <- Some f;
      t.win_count <- t.win_count + 1;
      let tail = (t.rob_head + t.rob_count) mod rob_size in
      t.rob.(tail) <- Some f;
      t.rob_count <- t.rob_count + 1;
      decr budget
    end
    else continue_ := false
  done

let line_of t addr =
  match t.config.Config.cache.Hierarchy.l1i with
  | Hierarchy.Real g -> Fom_cache.Geometry.line_address g addr
  | Hierarchy.Ideal -> addr land lnot 127

let fetch t =
  (match t.blocking_branch with
  | Some b when b.complete_time <= t.cycle ->
      t.blocking_branch <- None;
      if t.recording then t.resolve_record <- t.cycle :: t.resolve_record
  | Some _ | None -> ());
  if t.blocking_branch = None && t.cycle >= t.fetch_stall_until then begin
    let width = t.config.Config.width in
    let pipe_capacity =
      (width * t.config.Config.pipeline_depth) + t.config.Config.fetch_buffer
    in
    (* With a fetch buffer, fetch is line-based and bursty: it can run
       ahead of dispatch at up to twice the machine width while buffer
       space remains, which is what lets the buffer hide I-miss
       stalls. *)
    let fetch_limit = if t.config.Config.fetch_buffer > 0 then 2 * width else width in
    let fetched = ref 0 in
    let stopped = ref false in
    while (not !stopped) && !fetched < fetch_limit && Queue.length t.pipe < pipe_capacity do
      let instr =
        match t.pending with
        | Some i ->
            t.pending <- None;
            i
        | None -> t.next_instr ()
      in
      let line = line_of t instr.Instr.pc in
      let icache_ok =
        if line = t.last_line then true
        else begin
          let outcome = Hierarchy.access_inst t.hierarchy instr.Instr.pc in
          t.last_line <- line;
          match outcome with
          | Hierarchy.L1_hit -> true
          | Hierarchy.L2_hit | Hierarchy.Memory ->
              if long_misses_outstanding t > 0 then
                t.imiss_under_long <- t.imiss_under_long + 1;
              t.fetch_stall_until <- t.cycle + Hierarchy.inst_stall t.hierarchy outcome;
              t.pending <- Some instr;
              (* The line is now resident: do not re-probe when the
                 stalled instruction is finally fetched. *)
              false
        end
      in
      if not icache_ok then stopped := true
      else begin
        let f = { instr; issue_time = -1; complete_time = max_int; cluster = 0 } in
        Queue.push (f, t.cycle + t.config.Config.pipeline_depth) t.pipe;
        incr fetched;
        if Instr.is_branch instr then begin
          let taken = (Instr.ctrl_exn instr).Instr.taken in
          let correct = Predictor.observe t.predictor ~pc:instr.Instr.pc ~taken in
          if not correct then begin
            t.mispredictions <- t.mispredictions + 1;
            if long_misses_outstanding t > 0 then
              t.mispred_under_long <- t.mispred_under_long + 1;
            t.blocking_branch <- Some f;
            stopped := true
          end
        end
      end
    done
  end

let step t =
  retire t;
  issue t;
  dispatch t;
  fetch t;
  if t.recording then t.issue_record <- t.issued_this_cycle :: t.issue_record;
  t.occupancy_window_sum <- t.occupancy_window_sum + t.win_count;
  t.occupancy_rob_sum <- t.occupancy_rob_sum + t.rob_count;
  t.cycle <- t.cycle + 1

let run ?cycle_limit t ~n =
  (* The budget is relative to the current cycle so that a machine can
     be resumed with successive [run] calls. *)
  let limit = t.cycle + Option.value cycle_limit ~default:((250 * n) + 100_000) in
  let target = t.retired + n in
  while t.retired < target do
    if t.cycle > limit then raise Cycle_limit_exceeded;
    step t
  done;
  let mean sum = float_of_int sum /. float_of_int (Stdlib.max 1 t.cycle) in
  let cache_stats = Hierarchy.stats t.hierarchy in
  {
    Stats.instructions = t.retired;
    cycles = t.cycle;
    branch_mispredictions = t.mispredictions;
    l1i_misses = cache_stats.Hierarchy.l1i_misses - cache_stats.Hierarchy.l2i_misses;
    l2i_misses = cache_stats.Hierarchy.l2i_misses;
    short_data_misses = t.short_load_misses;
    long_data_misses = t.long_load_misses;
    dtlb_misses = t.dtlb_misses;
    mispredictions_under_long_miss = t.mispred_under_long;
    imisses_under_long_miss = t.imiss_under_long;
    window_at_branch_issue = Fom_util.Stats.Acc.mean t.window_at_branch_issue;
    rob_ahead_of_long_miss = Fom_util.Stats.Acc.mean t.rob_ahead_of_long_miss;
    mean_window_occupancy = mean t.occupancy_window_sum;
    mean_rob_occupancy = mean t.occupancy_rob_sum;
  }

let run_recorded ?cycle_limit t ~n =
  t.recording <- true;
  t.issue_record <- [];
  t.resolve_record <- [];
  let stats = run ?cycle_limit t ~n in
  t.recording <- false;
  ( stats,
    Array.of_list (List.rev t.issue_record),
    Array.of_list (List.rev t.resolve_record) )
