module Instr = Fom_isa.Instr
module Opclass = Fom_isa.Opclass
module Latency = Fom_isa.Latency
module Hierarchy = Fom_cache.Hierarchy
module Predictor = Fom_branch.Predictor

exception Cycle_limit_exceeded

type kernel = Scan | Event

(* Observability (no-ops unless an Fom_obs sink is enabled). Counters
   accumulate across every machine in the process; [sim.events] counts
   ready-heap insertions — the event kernel's unit of work. *)
let m_runs = Fom_obs.Metrics.counter "sim.runs"
let m_cycles = Fom_obs.Metrics.counter "sim.cycles"
let m_instructions = Fom_obs.Metrics.counter "sim.instructions"
let m_events = Fom_obs.Metrics.counter "sim.events"
let s_run = Fom_obs.Span.id "sim.run"

(* The machine's working view of one in-flight instruction: plain
   immediate fields only, decoded once at fetch. [deps] is a shared
   backing array ([dep_lo], [dep_n] delimit this instruction's slice):
   the instruction's own array for a thunk feed, the packed trace's
   CSR column for a packed feed — so a packed-fed simulation allocates
   exactly one small record per instruction, nothing else. *)
type inflight = {
  index : int;
  pc : int;
  op : Opclass.t;
  mem : int;  (* effective address, -1 for non-memory ops *)
  taken : bool;  (* conditional-branch direction *)
  deps : int array;
  dep_lo : int;
  dep_n : int;
  mutable issue_time : int;  (* -1 until issued *)
  mutable complete_time : int;  (* max_int until issued *)
  mutable cluster : int;  (* assigned at dispatch *)
}

(* Where fetched instructions come from: a pull thunk materializing
   {!Fom_isa.Instr.t} values, or packed columns read in place. *)
type feed =
  | Thunk of (unit -> Instr.t)
  | Packed of { packed : Fom_trace.Packed.t; mutable pos : int }

(* Completion-time ring: complete_time of recently issued instructions,
   keyed by dynamic index. The ring is sized per configuration
   ({!Config.comp_ring_bits}) so the span of in-flight instructions —
   ROB plus front end — always maps to distinct slots; an entry is
   valid exactly when its stored index matches. The same slot keying
   serves the event kernel's wakeup structures. *)

(* Calendar buckets for the event kernel. Wakeups land at most the
   longest issue latency ahead; waits beyond the ring (a long miss
   under an extreme memory latency) re-book when their bucket drains. *)
let calendar_size = 1024

let calendar_mask = calendar_size - 1

type t = {
  config : Config.t;
  kernel : kernel;
  feed : feed;
  (* completion tracking *)
  comp_mask : int;
  comp_idx : int array;
  comp_time : int array;
  comp_cluster : int array;
  mutable last_retired : int;  (* highest retired dynamic index *)
  (* front end: a preallocated ring of (instruction, dispatchable-at) *)
  pipe_f : inflight option array;
  pipe_at : int array;
  mutable pipe_head : int;
  mutable pipe_count : int;
  mutable pending : inflight option;  (* fetched but stalled on an I-miss *)
  mutable fetch_stall_until : int;
  mutable blocking_branch : inflight option;
  mutable last_line : int;
  (* window: age-ordered dense array (Scan kernel only) *)
  window : inflight option array;
  mutable win_count : int;
  cluster_counts : int array;  (* window occupancy per cluster *)
  cluster_issued : int array;  (* issues this cycle per cluster *)
  mutable next_cluster : int;  (* round-robin dispatch steering *)
  (* event kernel wakeup structures, all keyed by index land comp_mask *)
  unissued : inflight option array;  (* dispatched, not yet issued *)
  ready_at : int array;  (* earliest-issue lower bound *)
  chain_next : int array;  (* link through waiter and calendar chains *)
  waiter_head : int array;  (* producer slot -> first parked consumer *)
  calendar : int array;  (* bucket -> chain of instructions waking *)
  heap : int array;  (* min-heap of ready indices = age order *)
  mutable heap_len : int;
  stash : int array;  (* ready but budget-blocked this cycle *)
  (* rob: circular *)
  rob : inflight option array;
  mutable rob_head : int;
  mutable rob_count : int;
  (* memory system *)
  hierarchy : Hierarchy.t;
  predictor : Predictor.t;
  dtlb : Fom_cache.Tlb.t option;
  long_miss_completions : int Queue.t;
  (* per-cycle structural state *)
  fu_busy : int array;  (* instructions issued this cycle per class *)
  (* bookkeeping *)
  mutable cycle : int;
  mutable retired : int;
  mutable wake_events : int;  (* ready-heap insertions, for sim.events *)
  (* optional per-cycle recording *)
  mutable recording : bool;
  mutable issued_this_cycle : int;
  issue_record : Fom_util.Int_buffer.t;
  resolve_record : Fom_util.Int_buffer.t;
  (* statistics *)
  mutable short_load_misses : int;
  mutable long_load_misses : int;
  mutable dtlb_misses : int;
  mutable mispredictions : int;
  mutable mispred_under_long : int;
  mutable imiss_under_long : int;
  window_at_branch_issue : Fom_util.Stats.Acc.t;
  rob_ahead_of_long_miss : Fom_util.Stats.Acc.t;
  mutable occupancy_window_sum : int;
  mutable occupancy_rob_sum : int;
}

let create_feed ?(kernel = Event) config feed =
  Config.validate config;
  let ring = Config.comp_ring_size config in
  let pipe_capacity =
    (config.Config.width * config.Config.pipeline_depth) + config.Config.fetch_buffer
  in
  (* Each kernel allocates only its own machinery: the scan kernel the
     age-ordered window array, the event kernel the wakeup tables. *)
  let scan = kernel = Scan in
  {
    config;
    kernel;
    feed;
    comp_mask = ring - 1;
    comp_idx = Array.make ring (-1);
    comp_time = Array.make ring 0;
    comp_cluster = Array.make ring 0;
    last_retired = -1;
    pipe_f = Array.make pipe_capacity None;
    pipe_at = Array.make pipe_capacity 0;
    pipe_head = 0;
    pipe_count = 0;
    pending = None;
    fetch_stall_until = 0;
    blocking_branch = None;
    last_line = -1;
    window = Array.make (if scan then config.Config.window_size else 1) None;
    win_count = 0;
    cluster_counts = Array.make config.Config.clusters 0;
    cluster_issued = Array.make config.Config.clusters 0;
    next_cluster = 0;
    unissued = Array.make (if scan then 1 else ring) None;
    ready_at = Array.make (if scan then 1 else ring) 0;
    chain_next = Array.make (if scan then 1 else ring) (-1);
    waiter_head = Array.make (if scan then 1 else ring) (-1);
    calendar = Array.make (if scan then 1 else calendar_size) (-1);
    heap = Array.make (if scan then 1 else config.Config.window_size) 0;
    heap_len = 0;
    stash = Array.make (if scan then 1 else config.Config.window_size) 0;
    rob = Array.make config.Config.rob_size None;
    rob_head = 0;
    rob_count = 0;
    hierarchy = Hierarchy.create config.Config.cache;
    predictor = Predictor.create config.Config.predictor;
    dtlb = Option.map Fom_cache.Tlb.create config.Config.dtlb;
    long_miss_completions = Queue.create ();
    fu_busy = Array.make Opclass.count 0;
    cycle = 0;
    retired = 0;
    wake_events = 0;
    recording = false;
    issued_this_cycle = 0;
    issue_record = Fom_util.Int_buffer.create ();
    resolve_record = Fom_util.Int_buffer.create ();
    short_load_misses = 0;
    long_load_misses = 0;
    dtlb_misses = 0;
    mispredictions = 0;
    mispred_under_long = 0;
    imiss_under_long = 0;
    window_at_branch_issue = Fom_util.Stats.Acc.create ();
    rob_ahead_of_long_miss = Fom_util.Stats.Acc.create ();
    occupancy_window_sum = 0;
    occupancy_rob_sum = 0;
  }

let create ?kernel config next_instr = create_feed ?kernel config (Thunk next_instr)

let create_packed ?kernel config packed =
  create_feed ?kernel config (Packed { packed; pos = 0 })

(* Decode the next instruction into an in-flight record. The packed
   path reads the columns in place: no [Instr.t], no dependence-array
   copy. Both paths decode identical field values, so the simulated
   machine is bit-identical either way. *)
let next_inflight t =
  match t.feed with
  | Thunk next ->
      let i = next () in
      {
        index = i.Instr.index;
        pc = i.Instr.pc;
        op = i.Instr.opclass;
        mem = (match i.Instr.mem with Some addr -> addr | None -> -1);
        taken = (match i.Instr.ctrl with Some c -> c.Instr.taken | None -> false);
        deps = i.Instr.deps;
        dep_lo = 0;
        dep_n = Array.length i.Instr.deps;
        issue_time = -1;
        complete_time = max_int;
        cluster = 0;
      }
  | Packed p ->
      let packed = p.packed in
      let i = p.pos in
      Fom_check.Checker.ensure ~code:"FOM-T132" ~path:"machine.feed"
        (i < packed.Fom_trace.Packed.len)
        "packed trace exhausted before the run retired its target";
      p.pos <- i + 1;
      let ctrl = packed.Fom_trace.Packed.ctrl.(i) in
      let dep_lo = packed.Fom_trace.Packed.dep_off.(i) in
      {
        index = i;
        pc = packed.Fom_trace.Packed.pc.(i);
        op = Opclass.of_int packed.Fom_trace.Packed.tag.(i);
        mem = packed.Fom_trace.Packed.mem.(i);
        taken = ctrl >= 0 && ctrl land 1 = 1;
        deps = packed.Fom_trace.Packed.dep_val;
        dep_lo;
        dep_n = packed.Fom_trace.Packed.dep_off.(i + 1) - dep_lo;
        issue_time = -1;
        complete_time = max_int;
        cluster = 0;
      }

(* A value produced in another cluster needs one extra bypass cycle
   (ancient producers are long past any bypass network). *)
let dep_complete t ~cluster d =
  d <= t.last_retired
  ||
  let slot = d land t.comp_mask in
  t.comp_idx.(slot) = d
  &&
  let bypass = if t.comp_cluster.(slot) = cluster then 0 else 1 in
  t.comp_time.(slot) + bypass <= t.cycle

let deps_ready t (f : inflight) =
  let deps = f.deps in
  let cluster = f.cluster in
  let rec check k =
    k >= f.dep_n || (dep_complete t ~cluster deps.(f.dep_lo + k) && check (k + 1))
  in
  check 0

let record_completion t index time ~cluster =
  let slot = index land t.comp_mask in
  t.comp_idx.(slot) <- index;
  t.comp_time.(slot) <- time;
  t.comp_cluster.(slot) <- cluster

let long_misses_outstanding t =
  while
    (not (Queue.is_empty t.long_miss_completions))
    && Queue.peek t.long_miss_completions <= t.cycle
  do
    ignore (Queue.pop t.long_miss_completions)
  done;
  Queue.length t.long_miss_completions

let retire t =
  let rob_size = Array.length t.rob in
  let budget = ref t.config.Config.width in
  let continue_ = ref true in
  while !continue_ && !budget > 0 && t.rob_count > 0 do
    match t.rob.(t.rob_head) with
    | Some f when f.complete_time <= t.cycle ->
        t.rob.(t.rob_head) <- None;
        t.rob_head <- (t.rob_head + 1) mod rob_size;
        t.rob_count <- t.rob_count - 1;
        t.last_retired <- f.index;
        t.retired <- t.retired + 1;
        decr budget
    | Some _ -> continue_ := false
    | None -> Fom_check.Checker.internal_error "ROB head empty while rob_count > 0"
  done

(* Translate a memory access; a TLB miss adds the walk latency up
   front (the walk precedes the cache access). Store misses fill the
   TLB but are not counted as miss-events: the write buffer hides
   them, mirroring the treatment of store cache misses. *)
let translate ?(count = true) t addr =
  match t.dtlb with
  | None -> 0
  | Some dtlb ->
      if Fom_cache.Tlb.access dtlb addr then 0
      else begin
        if count then t.dtlb_misses <- t.dtlb_misses + 1;
        (Fom_cache.Tlb.spec dtlb).Fom_cache.Tlb.walk_latency
      end

let issue_latency t (f : inflight) =
  let lat = Latency.of_class t.config.Config.latencies f.op in
  match f.op with
  | Opclass.Load ->
      let addr = f.mem in
      let walk = translate t addr in
      let outcome = Hierarchy.access_data t.hierarchy addr in
      let cache_lat = Hierarchy.data_latency t.hierarchy outcome in
      if outcome = Hierarchy.L2_hit then t.short_load_misses <- t.short_load_misses + 1;
      if outcome = Hierarchy.Memory then begin
        t.long_load_misses <- t.long_load_misses + 1;
        Queue.push (t.cycle + walk + cache_lat) t.long_miss_completions;
        (* Entries in the ROB ahead of this load: dynamic indices in
           the ROB are consecutive, so it is an index difference. *)
        (match t.rob.(t.rob_head) with
        | Some head ->
            Fom_util.Stats.Acc.add t.rob_ahead_of_long_miss
              (float_of_int (f.index - head.index))
        | None -> ());
        walk + cache_lat
      end
      else walk + Stdlib.max lat cache_lat
  | Opclass.Store ->
      (* Stores update the TLB and cache for residency but never
         block: a write buffer absorbs them (the paper models
         data-cache penalties through loads only). *)
      let addr = f.mem in
      ignore (translate ~count:false t addr);
      ignore (Hierarchy.access_data t.hierarchy addr);
      lat
  | Opclass.Alu | Opclass.Mul | Opclass.Div | Opclass.Branch | Opclass.Jump -> lat

let class_slot = Opclass.to_int

let fu_available t (f : inflight) =
  Fom_isa.Fu_set.is_unbounded t.config.Config.fu_limits
  || t.fu_busy.(class_slot f.op) < Fom_isa.Fu_set.of_class t.config.Config.fu_limits f.op

(* The bookkeeping shared by both kernels when instruction [f] issues
   this cycle; [issued_before] is how many issued earlier this cycle. *)
let issue_instr t (f : inflight) ~issued_before =
  t.fu_busy.(class_slot f.op) <- t.fu_busy.(class_slot f.op) + 1;
  t.cluster_issued.(f.cluster) <- t.cluster_issued.(f.cluster) + 1;
  t.cluster_counts.(f.cluster) <- t.cluster_counts.(f.cluster) - 1;
  f.issue_time <- t.cycle;
  f.complete_time <- t.cycle + issue_latency t f;
  record_completion t f.index f.complete_time ~cluster:f.cluster;
  match t.blocking_branch with
  | Some b when b == f ->
      Fom_util.Stats.Acc.add t.window_at_branch_issue
        (float_of_int (t.win_count - issued_before - 1))
  | Some _ | None -> ()

let issue_scan t =
  let width = t.config.Config.width in
  let clusters = t.config.Config.clusters in
  let cluster_width = width / clusters in
  let unbounded = t.config.Config.unbounded_issue in
  Array.fill t.fu_busy 0 (Array.length t.fu_busy) 0;
  Array.fill t.cluster_issued 0 clusters 0;
  let issued = ref 0 in
  let kept = ref 0 in
  for i = 0 to t.win_count - 1 do
    match t.window.(i) with
    | None -> Fom_check.Checker.internal_error "window slot empty below win_count"
    | Some f ->
        if
          (unbounded || (!issued < width && t.cluster_issued.(f.cluster) < cluster_width))
          && fu_available t f && deps_ready t f
        then begin
          issue_instr t f ~issued_before:!issued;
          incr issued
        end
        else begin
          (* Compact survivors in place, preserving age order. *)
          t.window.(!kept) <- t.window.(i);
          incr kept
        end
  done;
  for i = !kept to t.win_count - 1 do
    t.window.(i) <- None
  done;
  t.win_count <- !kept;
  t.issued_this_cycle <- !issued

(* --- event kernel --- *)

let heap_push t v =
  if t.heap_len >= Array.length t.heap then
    Fom_check.Checker.internal_error "ready-heap overflow";
  t.wake_events <- t.wake_events + 1;
  let heap = t.heap in
  let k = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  heap.(!k) <- v;
  let sifting = ref true in
  while !sifting && !k > 0 do
    let parent = (!k - 1) / 2 in
    if heap.(parent) > heap.(!k) then begin
      let tmp = heap.(parent) in
      heap.(parent) <- heap.(!k);
      heap.(!k) <- tmp;
      k := parent
    end
    else sifting := false
  done

let heap_pop t =
  let heap = t.heap in
  let top = heap.(0) in
  t.heap_len <- t.heap_len - 1;
  heap.(0) <- heap.(t.heap_len);
  let k = ref 0 in
  let sifting = ref true in
  while !sifting do
    let l = (2 * !k) + 1 and r = (2 * !k) + 2 in
    let s = ref !k in
    if l < t.heap_len && heap.(l) < heap.(!s) then s := l;
    if r < t.heap_len && heap.(r) < heap.(!s) then s := r;
    if !s <> !k then begin
      let tmp = heap.(!s) in
      heap.(!s) <- heap.(!k);
      heap.(!k) <- tmp;
      k := !s
    end
    else sifting := false
  done;
  top

let book_wakeup t idx ~at =
  let slot = idx land t.comp_mask in
  (* Waits past the calendar horizon re-book when the clamped bucket
     drains ([ready_at] keeps the true cycle). *)
  let target = if at - t.cycle >= calendar_size then t.cycle + calendar_size - 1 else at in
  let b = target land calendar_mask in
  t.chain_next.(slot) <- t.calendar.(b);
  t.calendar.(b) <- idx

(* Park a dispatched, unissued instruction on the wakeup structures:
   chained on one still-unissued producer (its issue event re-parks
   us), or booked in the calendar for the cycle its last producer's
   value completes — never before [floor]. The booked cycle is a lower
   bound, not the exact issue cycle: retirement can waive a
   cross-cluster bypass and a bypass can push one cycle past it, so
   [issue_event] re-evaluates [deps_ready] exactly when the
   instruction surfaces. *)
let place t (f : inflight) ~floor =
  let idx = f.index in
  let deps = f.deps in
  let rec scan k lower =
    if k >= f.dep_n then begin
      let at = if lower < floor then floor else lower in
      t.ready_at.(idx land t.comp_mask) <- at;
      if at <= t.cycle then heap_push t idx else book_wakeup t idx ~at
    end
    else
      let d = deps.(f.dep_lo + k) in
      if d <= t.last_retired then scan (k + 1) lower
      else
        let dslot = d land t.comp_mask in
        if t.comp_idx.(dslot) = d then
          scan (k + 1) (Stdlib.max lower t.comp_time.(dslot))
        else begin
          (* The producer has not issued: wait for its issue event. *)
          t.chain_next.(idx land t.comp_mask) <- t.waiter_head.(dslot);
          t.waiter_head.(dslot) <- idx
        end
  in
  scan 0 0

let unissued_exn t idx =
  match t.unissued.(idx land t.comp_mask) with
  | Some f when f.index = idx -> f
  | Some _ | None ->
      Fom_check.Checker.internal_error "woken instruction missing from unissued table"

let issue_event t =
  let width = t.config.Config.width in
  let clusters = t.config.Config.clusters in
  let cluster_width = width / clusters in
  let unbounded = t.config.Config.unbounded_issue in
  Array.fill t.fu_busy 0 (Array.length t.fu_busy) 0;
  Array.fill t.cluster_issued 0 clusters 0;
  (* Wake this cycle's calendar bucket into the ready heap. *)
  let bucket = t.cycle land calendar_mask in
  let woken = ref t.calendar.(bucket) in
  t.calendar.(bucket) <- -1;
  while !woken >= 0 do
    let idx = !woken in
    woken := t.chain_next.(idx land t.comp_mask);
    let at = t.ready_at.(idx land t.comp_mask) in
    if at <= t.cycle then heap_push t idx else book_wakeup t idx ~at
  done;
  (* Issue oldest-first up to the width limit. A popped instruction
     whose exact readiness check fails re-parks (at most one extra
     wake, for a cross-cluster bypass); one blocked only by a cluster
     or functional-unit budget stays ready in a stash so younger
     instructions of other clusters and classes still get their scan
     turn, exactly as the reference window scan skips over it. *)
  let issued = ref 0 in
  let stash_len = ref 0 in
  let popping = ref true in
  while !popping && t.heap_len > 0 do
    if (not unbounded) && !issued >= width then popping := false
    else begin
      let idx = heap_pop t in
      let f = unissued_exn t idx in
      if not (deps_ready t f) then place t f ~floor:(t.cycle + 1)
      else if
          (unbounded || t.cluster_issued.(f.cluster) < cluster_width) && fu_available t f
      then begin
        t.unissued.(idx land t.comp_mask) <- None;
        issue_instr t f ~issued_before:!issued;
        incr issued;
        (* Its value has a completion time now: re-park every consumer
           waiting on this producer (their earliest cycle is past this
           one, so none re-enters this cycle's heap). *)
        let slot = idx land t.comp_mask in
        let waiter = ref t.waiter_head.(slot) in
        t.waiter_head.(slot) <- -1;
        while !waiter >= 0 do
          let w = !waiter in
          waiter := t.chain_next.(w land t.comp_mask);
          place t (unissued_exn t w) ~floor:(t.cycle + 1)
        done
      end
      else begin
        t.stash.(!stash_len) <- idx;
        incr stash_len
      end
    end
  done;
  for k = 0 to !stash_len - 1 do
    heap_push t t.stash.(k)
  done;
  t.win_count <- t.win_count - !issued;
  t.issued_this_cycle <- !issued

let issue t = match t.kernel with Scan -> issue_scan t | Event -> issue_event t

let dispatch t =
  let width = t.config.Config.width in
  let rob_size = Array.length t.rob in
  let budget = ref width in
  let continue_ = ref true in
  while
    !continue_ && !budget > 0
    && t.win_count < t.config.Config.window_size
    && t.rob_count < rob_size && t.pipe_count > 0
  do
    let head = t.pipe_head in
    if t.pipe_at.(head) <= t.cycle then begin
      let f =
        match t.pipe_f.(head) with
        | Some f -> f
        | None -> Fom_check.Checker.internal_error "pipe head empty while pipe_count > 0"
      in
      t.pipe_f.(head) <- None;
      t.pipe_head <- (head + 1) mod Array.length t.pipe_f;
      t.pipe_count <- t.pipe_count - 1;
      (* Round-robin steering; a full cluster passes its turn. *)
      let clusters = t.config.Config.clusters in
      let cluster_capacity = t.config.Config.window_size / clusters in
      let rec steer tries =
        if tries = 0 then None
        else
          let c = t.next_cluster in
          t.next_cluster <- (t.next_cluster + 1) mod clusters;
          if t.cluster_counts.(c) < cluster_capacity then Some c else steer (tries - 1)
      in
      (* The window-space guard ensures at least one cluster has
         room. *)
      let cluster =
        match steer clusters with
        | Some c -> c
        | None -> Fom_check.Checker.internal_error "no cluster has window space at dispatch"
      in
      f.cluster <- cluster;
      t.cluster_counts.(cluster) <- t.cluster_counts.(cluster) + 1;
      (match t.kernel with
      | Scan -> t.window.(t.win_count) <- Some f
      | Event ->
          (* Issue runs before dispatch each cycle, so a newly
             dispatched instruction is first eligible next cycle. *)
          t.unissued.(f.index land t.comp_mask) <- Some f;
          place t f ~floor:(t.cycle + 1));
      t.win_count <- t.win_count + 1;
      let tail = (t.rob_head + t.rob_count) mod rob_size in
      t.rob.(tail) <- Some f;
      t.rob_count <- t.rob_count + 1;
      decr budget
    end
    else continue_ := false
  done

let line_of t addr =
  match t.config.Config.cache.Hierarchy.l1i with
  | Hierarchy.Real g -> Fom_cache.Geometry.line_address g addr
  | Hierarchy.Ideal -> addr land lnot 127

let fetch t =
  (match t.blocking_branch with
  | Some b when b.complete_time <= t.cycle ->
      t.blocking_branch <- None;
      if t.recording then Fom_util.Int_buffer.push t.resolve_record t.cycle
  | Some _ | None -> ());
  if t.blocking_branch = None && t.cycle >= t.fetch_stall_until then begin
    let width = t.config.Config.width in
    let pipe_capacity = Array.length t.pipe_f in
    (* With a fetch buffer, fetch is line-based and bursty: it can run
       ahead of dispatch at up to twice the machine width while buffer
       space remains, which is what lets the buffer hide I-miss
       stalls. *)
    let fetch_limit = if t.config.Config.fetch_buffer > 0 then 2 * width else width in
    let fetched = ref 0 in
    let stopped = ref false in
    while (not !stopped) && !fetched < fetch_limit && t.pipe_count < pipe_capacity do
      let f =
        match t.pending with
        | Some f ->
            t.pending <- None;
            f
        | None -> next_inflight t
      in
      let line = line_of t f.pc in
      let icache_ok =
        if line = t.last_line then true
        else begin
          let outcome = Hierarchy.access_inst t.hierarchy f.pc in
          t.last_line <- line;
          match outcome with
          | Hierarchy.L1_hit -> true
          | Hierarchy.L2_hit | Hierarchy.Memory ->
              if long_misses_outstanding t > 0 then
                t.imiss_under_long <- t.imiss_under_long + 1;
              t.fetch_stall_until <- t.cycle + Hierarchy.inst_stall t.hierarchy outcome;
              t.pending <- Some f;
              (* The line is now resident: do not re-probe when the
                 stalled instruction is finally fetched. *)
              false
        end
      in
      if not icache_ok then stopped := true
      else begin
        let tail = (t.pipe_head + t.pipe_count) mod pipe_capacity in
        t.pipe_f.(tail) <- Some f;
        t.pipe_at.(tail) <- t.cycle + t.config.Config.pipeline_depth;
        t.pipe_count <- t.pipe_count + 1;
        incr fetched;
        if f.op = Opclass.Branch then begin
          let correct = Predictor.observe t.predictor ~pc:f.pc ~taken:f.taken in
          if not correct then begin
            t.mispredictions <- t.mispredictions + 1;
            if long_misses_outstanding t > 0 then
              t.mispred_under_long <- t.mispred_under_long + 1;
            t.blocking_branch <- Some f;
            stopped := true
          end
        end
      end
    done
  end

let step t =
  retire t;
  issue t;
  dispatch t;
  fetch t;
  if t.recording then Fom_util.Int_buffer.push t.issue_record t.issued_this_cycle;
  t.occupancy_window_sum <- t.occupancy_window_sum + t.win_count;
  t.occupancy_rob_sum <- t.occupancy_rob_sum + t.rob_count;
  t.cycle <- t.cycle + 1

let run ?cycle_limit t ~n =
  (* The budget is relative to the current cycle so that a machine can
     be resumed with successive [run] calls. *)
  let limit = t.cycle + Option.value cycle_limit ~default:((250 * n) + 100_000) in
  let target = t.retired + n in
  let c0 = t.cycle and r0 = t.retired and e0 = t.wake_events in
  Fom_obs.Span.with_ s_run (fun () ->
      while t.retired < target do
        if t.cycle > limit then raise Cycle_limit_exceeded;
        step t
      done);
  Fom_obs.Metrics.incr m_runs;
  Fom_obs.Metrics.add m_cycles (t.cycle - c0);
  Fom_obs.Metrics.add m_instructions (t.retired - r0);
  Fom_obs.Metrics.add m_events (t.wake_events - e0);
  let mean sum = float_of_int sum /. float_of_int (Stdlib.max 1 t.cycle) in
  let cache_stats = Hierarchy.stats t.hierarchy in
  {
    Stats.instructions = t.retired;
    cycles = t.cycle;
    branch_mispredictions = t.mispredictions;
    l1i_misses = cache_stats.Hierarchy.l1i_misses - cache_stats.Hierarchy.l2i_misses;
    l2i_misses = cache_stats.Hierarchy.l2i_misses;
    short_data_misses = t.short_load_misses;
    long_data_misses = t.long_load_misses;
    dtlb_misses = t.dtlb_misses;
    mispredictions_under_long_miss = t.mispred_under_long;
    imisses_under_long_miss = t.imiss_under_long;
    window_at_branch_issue = Fom_util.Stats.Acc.mean t.window_at_branch_issue;
    rob_ahead_of_long_miss = Fom_util.Stats.Acc.mean t.rob_ahead_of_long_miss;
    mean_window_occupancy = mean t.occupancy_window_sum;
    mean_rob_occupancy = mean t.occupancy_rob_sum;
  }

let run_recorded ?cycle_limit t ~n =
  t.recording <- true;
  Fom_util.Int_buffer.clear t.issue_record;
  Fom_util.Int_buffer.clear t.resolve_record;
  let stats = run ?cycle_limit t ~n in
  t.recording <- false;
  ( stats,
    Fom_util.Int_buffer.contents t.issue_record,
    Fom_util.Int_buffer.contents t.resolve_record )
