(** Extensible flat buffer of ints.

    An amortized-O(1) [push] onto a doubling [int array] — the
    allocation-free replacement for accumulating a reversed [int list]
    in recording loops (one machine word per element, no per-element
    boxing, no final [List.rev]). *)

type t

val create : ?capacity:int -> unit -> t
(** Empty buffer; [capacity] (default 64, must be positive) sizes the
    initial backing array. *)

val length : t -> int

val push : t -> int -> unit
(** Append, growing the backing array by doubling when full. *)

val get : t -> int -> int
(** [get t i] is element [i] (0-based); raises
    {!Fom_check.Checker.Invalid} ([FOM-U003]) out of bounds. *)

val clear : t -> unit
(** Forget the contents, keeping the backing array. *)

val contents : t -> int array
(** The elements in push order, as a fresh exactly-sized array. *)
