(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the repository flows through this module so
    that every trace, workload and experiment is reproducible from a seed.
    The generator is SplitMix64 (Steele, Lea, Flood; JDK 8), which has a
    64-bit state, passes BigCrush, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each static instruction / address generator its own
    stream so that adding instructions does not perturb unrelated draws. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators from [t] in one
    step, advancing [t] by [n] draws. The split is performed *before*
    any parallel work begins, so handing stream [i] to task [i] gives
    every task the same draws no matter which domain runs it or in
    what order — the seed-discipline that keeps {!Fom_exec.Pool} runs
    bit-identical to sequential ones. Requires [n >= 0]. *)

val split_seeds : t -> int -> int array
(** [split_seeds t n] is {!split_n} flattened to plain non-negative
    integer seeds, for APIs that take a seed rather than a generator
    (workload configs, [Fom_trace.Source.of_program ~seed]). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n-1]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] draws the number of failures before the first success
    of a Bernoulli([p]) process; support starts at 0. Requires
    [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val categorical : t -> float array -> int
(** [categorical t weights] draws an index with probability proportional
    to its (non-negative) weight. Requires a positive total weight. *)
