type line = { slope : float; intercept : float; r2 : float }

let ensure = Fom_check.Checker.ensure ~code:"FOM-U001"

let line points =
  let n = Array.length points in
  ensure ~path:"fit.line" (n >= 2) "a line fit needs at least two points";
  let xs = Array.map fst points and ys = Array.map snd points in
  let mx = Stats.mean xs and my = Stats.mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sxy := !sxy +. ((x -. mx) *. (y -. my));
      sxx := !sxx +. ((x -. mx) *. (x -. mx));
      syy := !syy +. ((y -. my) *. (y -. my)))
    points;
  ensure ~path:"fit.line" (!sxx > 0.0) "x values must not all coincide";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

type power_law = { alpha : float; beta : float; r2 : float }

let log2 x = Float.log x /. Float.log 2.0

let power_law points =
  Array.iter
    (fun (x, y) ->
      ensure ~path:"fit.power_law" (x > 0.0 && y > 0.0)
        "points must be strictly positive to fit in log space")
    points;
  let logged = Array.map (fun (x, y) -> (log2 x, log2 y)) points in
  let l = line logged in
  { alpha = Float.pow 2.0 l.intercept; beta = l.slope; r2 = l.r2 }

let eval_line l x = (l.slope *. x) +. l.intercept
let eval_power_law p x = p.alpha *. Float.pow x p.beta
