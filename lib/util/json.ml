type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    (* Shortest representation that still round-trips common timing
       and ratio values; %.12g strips trailing zeros. *)
    let s = Printf.sprintf "%.12g" x in
    (* "1e+06" and "3." are valid OCaml floats but JSON wants a digit
       after the point; %g never emits "3.", so only ensure the string
       parses as a JSON number by adding ".0" to bare integers. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ')
    end
  in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            emit (level + 1) item)
          items;
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf "\": ";
            emit (level + 1) value)
          fields;
        pad level;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
