type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    (* Shortest representation that still round-trips common timing
       and ratio values; %.12g strips trailing zeros. *)
    let s = Printf.sprintf "%.12g" x in
    (* "1e+06" and "3." are valid OCaml floats but JSON wants a digit
       after the point; %g never emits "3.", so only ensure the string
       parses as a JSON number by adding ".0" to bare integers. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ')
    end
  in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            emit (level + 1) item)
          items;
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf "\": ";
            emit (level + 1) value)
          fields;
        pad level;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* --- parsing --- *)

let fail_at pos msg =
  raise
    (Fom_check.Checker.Invalid
       [
         Fom_check.Diagnostic.make ~code:"FOM-U004"
           ~path:(Printf.sprintf "json.char[%d]" pos)
           msg;
       ])

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail_at !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail_at !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail_at !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents buf
        | '\\' ->
            incr pos;
            if !pos >= n then fail_at !pos "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail_at !pos "truncated \\u escape";
                (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                (* Only emission's own escapes need to round-trip; those
                   are all ASCII control characters. *)
                | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
                | Some _ -> Buffer.add_char buf '?'
                | None -> fail_at !pos "bad \\u escape");
                pos := !pos + 4
            | c -> fail_at !pos (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail_at start "malformed number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some x -> Float x
          | None -> fail_at start "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail_at !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((key, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((key, v) :: acc))
            | Some _ | None -> fail_at !pos "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | Some _ | None -> fail_at !pos "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail_at !pos (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail_at !pos "trailing content after the JSON value";
  v

let of_file ~path =
  of_string (In_channel.with_open_bin path In_channel.input_all)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let number = function Int i -> Some (float_of_int i) | Float x -> Some x | _ -> None

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
