(** Minimal JSON emission (no parsing, no dependencies).

    Just enough to write machine-readable artifacts — the bench
    harness's timing baseline ([BENCH_baseline.json], CI's
    [bench.json]) — with stable, diff-friendly output: object fields
    print in the order given, arrays in order, and numbers through
    one fixed format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with the given indent width (default 2; [0] means one
    line). Strings are escaped per RFC 8259; non-finite floats render
    as [null] (JSON has no representation for them). *)

val write_file : path:string -> t -> unit
(** [write_file ~path v] writes [to_string v] and a trailing newline
    atomically enough for CI artifacts (plain create-truncate). *)
