(** Minimal JSON emission and parsing (no dependencies).

    Just enough to write machine-readable artifacts — the bench
    harness's timing baseline ([BENCH_baseline.json], CI's
    [bench.json]) — with stable, diff-friendly output (object fields
    print in the order given, arrays in order, numbers through one
    fixed format), and to read those same artifacts back for
    regression gating. The parser accepts standard RFC 8259 documents
    with one lossy corner: [\u] escapes beyond ASCII decode to [?]
    (emission never produces them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with the given indent width (default 2; [0] means one
    line). Strings are escaped per RFC 8259; non-finite floats render
    as [null] (JSON has no representation for them). *)

val write_file : path:string -> t -> unit
(** [write_file ~path v] writes [to_string v] and a trailing newline
    atomically enough for CI artifacts (plain create-truncate). *)

val of_string : string -> t
(** Parse one JSON document.
    @raise Fom_check.Checker.Invalid with a [FOM-U004] diagnostic
    (whose path carries the byte offset) on malformed input. *)

val of_file : path:string -> t
(** {!of_string} over a whole file. *)

val member : string -> t -> t option
(** [member key v] is the field [key] of an [Obj] ([None] for a
    missing field or a non-object). *)

val number : t -> float option
(** The numeric value of an [Int] or [Float] node. *)
