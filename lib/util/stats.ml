let sum a = Array.fold_left ( +. ) 0.0 a

let mean a = if Array.length a = 0 then 0.0 else sum a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int n

let stddev a = sqrt (variance a)

let ensure = Fom_check.Checker.ensure ~code:"FOM-U001"

let min a =
  ensure ~path:"stats.min" (Array.length a > 0) "empty sample";
  Array.fold_left Stdlib.min a.(0) a

let max a =
  ensure ~path:"stats.max" (Array.length a > 0) "empty sample";
  Array.fold_left Stdlib.max a.(0) a

let percentile a p =
  ensure ~path:"stats.percentile" (Array.length a > 0) "empty sample";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let weighted_mean pairs =
  let wsum = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if wsum = 0.0 then 0.0
  else
    let vsum = Array.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0.0 pairs in
    vsum /. wsum

let geometric_mean a =
  if Array.length a = 0 then 0.0
  else
    let logsum = Array.fold_left (fun acc x -> acc +. Float.log x) 0.0 a in
    Float.exp (logsum /. float_of_int (Array.length a))

let relative_errors reference candidate =
  ensure ~path:"stats.relative_errors"
    (Array.length reference = Array.length candidate)
    "reference and candidate must have the same length";
  let errs = ref [] in
  Array.iteri
    (fun i r ->
      if r <> 0.0 then errs := (Float.abs (candidate.(i) -. r) /. Float.abs r) :: !errs)
    reference;
  Array.of_list !errs

let mean_abs_error reference candidate = mean (relative_errors reference candidate)

let max_abs_error reference candidate =
  let errs = relative_errors reference candidate in
  if Array.length errs = 0 then 0.0 else max errs

module Acc = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
  let min t = t.min
  let max t = t.max
end
