type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 64) () =
  Fom_check.Checker.ensure ~code:"FOM-U002" ~path:"int_buffer.capacity" (capacity >= 1)
    "initial capacity must be positive";
  { data = Array.make capacity 0; len = 0 }

let length t = t.len

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let grown = Array.make (2 * cap) 0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  Fom_check.Checker.ensure ~code:"FOM-U003" ~path:"int_buffer.get" (i >= 0 && i < t.len)
    "index out of bounds";
  t.data.(i)

let clear t = t.len <- 0
let contents t = Array.sub t.data 0 t.len
