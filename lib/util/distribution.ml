type t = { counts : (int, int) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 16; total = 0 }

let add_many t k n =
  Fom_check.Checker.ensure ~code:"FOM-U001" ~path:"distribution.add" (k >= 0 && n >= 0)
    "outcomes and counts must be non-negative";
  if n > 0 then begin
    let cur = Option.value (Hashtbl.find_opt t.counts k) ~default:0 in
    Hashtbl.replace t.counts k (cur + n);
    t.total <- t.total + n
  end

let add t k = add_many t k 1
let total t = t.total
let count t k = Option.value (Hashtbl.find_opt t.counts k) ~default:0

let probability t k =
  if t.total = 0 then 0.0 else float_of_int (count t k) /. float_of_int t.total

let support t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.counts [] |> List.sort compare

let expect t f =
  if t.total = 0 then 0.0
  else
    Hashtbl.fold
      (fun k n acc -> acc +. (float_of_int n *. f k))
      t.counts 0.0
    /. float_of_int t.total

let mean t = expect t float_of_int

let of_list pairs =
  let t = create () in
  List.iter (fun (k, n) -> add_many t k n) pairs;
  t

let to_list t = List.map (fun k -> (k, count t k)) (support t)
