type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let copy t = { state = t.state }

let split_n t n =
  Fom_check.Checker.ensure ~code:"FOM-U001" ~path:"rng.split_n" (n >= 0)
    "stream count must be non-negative";
  Array.init n (fun _ -> split t)

let split_seeds t n =
  Fom_check.Checker.ensure ~code:"FOM-U001" ~path:"rng.split_seeds" (n >= 0)
    "seed count must be non-negative";
  Array.init n (fun _ -> Int64.to_int (Int64.shift_right_logical (bits64 t) 2))

let ensure = Fom_check.Checker.ensure ~code:"FOM-U001"

let int t n =
  ensure ~path:"rng.int" (n > 0) "bound must be positive";
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  bits mod n

let float t x =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let geometric t p =
  ensure ~path:"rng.geometric" (p > 0.0 && p <= 1.0) "success probability must be within (0, 1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then 1e-18 else u in
    int_of_float (Float.log u /. Float.log (1.0 -. p))

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-18 else u in
  -.mean *. Float.log u

let pick t a =
  ensure ~path:"rng.pick" (Array.length a > 0) "cannot pick from an empty array";
  a.(int t (Array.length a))

let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  ensure ~path:"rng.categorical" (total > 0.0) "weights must have a positive sum";
  let u = float t total in
  let rec loop i acc =
    if i >= Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else loop (i + 1) acc
  in
  loop 0 0.0
