(** Conditional-branch direction predictors.

    The paper's machine uses an 8K-entry gShare predictor; ideal and
    simpler predictors are provided for the idealized simulation
    configurations and for baselines. Only conditional branches are
    predicted — unconditional control is direct in the synthetic ISA
    and never mispredicts, matching the paper's focus.

    A predictor is consulted and trained through {!observe}, which
    returns whether the prediction was correct; the detailed simulator
    and the functional profiler therefore see identical predictor
    state evolution for the same trace. *)

type spec =
  | Ideal  (** always correct *)
  | Always_taken
  | Bimodal of int  (** log2 of the two-bit counter table size *)
  | Gshare of int  (** log2 of table size; history length matches *)
  | Local of int
      (** two-level local (PAg): per-branch history registers indexing
          a shared two-bit counter table of 2^n entries *)
  | Tournament of int
      (** McFarling-style hybrid: bimodal and gShare components of
          2^n entries with a two-bit chooser table *)

val default_spec : spec
(** The paper's 8K-entry gShare: [Gshare 13]. *)

val diagnostics : spec -> Fom_check.Diagnostic.t list
(** [FOM-M014] diagnostics for out-of-range table sizes. *)

type t

val create : spec -> t
val spec : t -> spec

val predict : t -> pc:int -> taken:bool -> bool
(** Predicted direction. [taken] is the resolved direction, needed
    only by [Ideal]; real predictors ignore it. No state change. *)

val train : t -> pc:int -> taken:bool -> unit
(** Update tables and history with the resolved direction. *)

val observe : t -> pc:int -> taken:bool -> bool
(** [predict] then [train]; returns [true] when the prediction was
    correct. *)

type stats = { branches : int; mispredictions : int }

val stats : t -> stats
val misprediction_rate : t -> float
(** Mispredictions per conditional branch; 0 before any branch. *)

val reset_stats : t -> unit
