type spec =
  | Ideal
  | Always_taken
  | Bimodal of int
  | Gshare of int
  | Local of int
  | Tournament of int

let default_spec = Gshare 13

type stats = { branches : int; mispredictions : int }

(* Two-bit saturating counters, one per byte, initialized weakly
   taken. *)
let fresh_counters bits = Bytes.make (1 lsl bits) '\002'
let counter_taken table i = Char.code (Bytes.get table i) >= 2

let counter_train table i taken =
  let c = Char.code (Bytes.get table i) in
  let c = if taken then Stdlib.min 3 (c + 1) else Stdlib.max 0 (c - 1) in
  Bytes.set table i (Char.chr c)

type impl =
  | I_ideal
  | I_always_taken
  | I_bimodal of { table : Bytes.t; mask : int }
  | I_gshare of { table : Bytes.t; mask : int; mutable history : int }
  | I_local of { histories : int array; table : Bytes.t; mask : int }
  | I_tournament of {
      bimodal : Bytes.t;
      gshare : Bytes.t;
      chooser : Bytes.t;
      mask : int;
      mutable history : int;
    }

type t = { spec : spec; impl : impl; mutable s : stats }

let diagnostics spec =
  let module C = Fom_check.Checker in
  match spec with
  | Ideal | Always_taken -> C.ok
  | Bimodal bits | Gshare bits | Local bits | Tournament bits ->
      C.check ~code:"FOM-M014" ~path:"predictor.bits"
        (bits >= 1 && bits <= 28)
        (Printf.sprintf "table size log2 must be within [1, 28], got %d" bits)

let check_bits bits =
  Fom_check.Checker.ensure ~code:"FOM-M014" ~path:"predictor.bits"
    (bits >= 1 && bits <= 28)
    "table size log2 must be within [1, 28]"

let create spec =
  let impl =
    match spec with
    | Ideal -> I_ideal
    | Always_taken -> I_always_taken
    | Bimodal bits ->
        check_bits bits;
        I_bimodal { table = fresh_counters bits; mask = (1 lsl bits) - 1 }
    | Gshare bits ->
        check_bits bits;
        I_gshare { table = fresh_counters bits; mask = (1 lsl bits) - 1; history = 0 }
    | Local bits ->
        check_bits bits;
        I_local
          {
            histories = Array.make (1 lsl bits) 0;
            table = fresh_counters bits;
            mask = (1 lsl bits) - 1;
          }
    | Tournament bits ->
        check_bits bits;
        I_tournament
          {
            bimodal = fresh_counters bits;
            gshare = fresh_counters bits;
            chooser = fresh_counters bits;
            mask = (1 lsl bits) - 1;
            history = 0;
          }
  in
  { spec; impl; s = { branches = 0; mispredictions = 0 } }

let spec t = t.spec

let predict t ~pc ~taken =
  match t.impl with
  | I_ideal -> taken
  | I_always_taken -> true
  | I_bimodal b -> counter_taken b.table (pc lsr 2 land b.mask)
  | I_gshare g -> counter_taken g.table ((pc lsr 2) lxor g.history land g.mask)
  | I_local l ->
      let history = l.histories.(pc lsr 2 land l.mask) in
      counter_taken l.table (history land l.mask)
  | I_tournament tn ->
      let slot = pc lsr 2 land tn.mask in
      if counter_taken tn.chooser slot then
        counter_taken tn.gshare ((pc lsr 2) lxor tn.history land tn.mask)
      else counter_taken tn.bimodal slot

let train t ~pc ~taken =
  match t.impl with
  | I_ideal | I_always_taken -> ()
  | I_bimodal b -> counter_train b.table (pc lsr 2 land b.mask) taken
  | I_gshare g ->
      counter_train g.table ((pc lsr 2) lxor g.history land g.mask) taken;
      g.history <- ((g.history lsl 1) lor (if taken then 1 else 0)) land g.mask
  | I_local l ->
      let hslot = pc lsr 2 land l.mask in
      let history = l.histories.(hslot) in
      counter_train l.table (history land l.mask) taken;
      l.histories.(hslot) <- ((history lsl 1) lor (if taken then 1 else 0)) land l.mask
  | I_tournament tn ->
      let slot = pc lsr 2 land tn.mask in
      let gslot = (pc lsr 2) lxor tn.history land tn.mask in
      let bimodal_right = counter_taken tn.bimodal slot = taken in
      let gshare_right = counter_taken tn.gshare gslot = taken in
      (* The chooser moves toward the component that was right when
         they disagree. *)
      if bimodal_right <> gshare_right then counter_train tn.chooser slot gshare_right;
      counter_train tn.bimodal slot taken;
      counter_train tn.gshare gslot taken;
      tn.history <- ((tn.history lsl 1) lor (if taken then 1 else 0)) land tn.mask

let observe t ~pc ~taken =
  let correct = predict t ~pc ~taken = taken in
  train t ~pc ~taken;
  t.s <-
    {
      branches = t.s.branches + 1;
      mispredictions = (t.s.mispredictions + if correct then 0 else 1);
    };
  correct

let stats t = t.s

let misprediction_rate t =
  if t.s.branches = 0 then 0.0
  else float_of_int t.s.mispredictions /. float_of_int t.s.branches

let reset_stats t = t.s <- { branches = 0; mispredictions = 0 }
